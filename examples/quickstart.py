#!/usr/bin/env python3
"""Quickstart: simulate one workload under the paper's six configurations.

Runs the mcf model (the paper's most TLB-hostile workload) through every
TLB organization and prints the headline metrics: dynamic address-
translation energy per access, L1/L2 MPKI, and TLB-miss cycles.

Run time: ~20 seconds.
"""

from repro import (
    CONFIG_NAMES,
    ExperimentSettings,
    get_workload,
    render_table,
    run_workload_config,
)


def main() -> None:
    workload = get_workload("mcf")
    print(f"workload: {workload.name} ({workload.footprint_mb:.0f} MB, "
          f"{workload.description})\n")

    settings = ExperimentSettings(trace_accesses=200_000)
    rows = []
    baseline_energy = None
    for config in CONFIG_NAMES:
        result = run_workload_config(workload, config, settings)
        if baseline_energy is None:
            baseline_energy = result.total_energy_pj
        rows.append(
            [
                config,
                result.energy_per_access_pj,
                result.total_energy_pj / baseline_energy,
                result.l1_mpki,
                result.l2_mpki,
                result.miss_cycles,
            ]
        )
    print(
        render_table(
            ["config", "pJ/access", "energy vs 4KB", "L1 MPKI", "L2 MPKI", "miss cycles"],
            rows,
            title="mcf under the six paper configurations",
        )
    )
    print(
        "\nExpected shape (paper Fig. 10): THP slashes miss cycles; "
        "TLB_Lite recovers energy; RMM kills the walks; RMM_Lite wins both."
    )


if __name__ == "__main__":
    main()
