#!/usr/bin/env python3
"""Watch Lite adapt: way counts and MPKI over a phased workload.

Runs the astar model (whose search/expand phases need different L1-4KB
sizes — the paper's Figure 4 motivation) under TLB_Lite with decision
history recording enabled, then prints a timeline of Lite's choices:
interval MPKI, the action taken, and the active way counts.

Run time: ~10 seconds.
"""

from repro import ExperimentSettings, get_workload
from repro.analysis.experiments import run_workload_config
from repro.core.params import LiteParams


def main() -> None:
    workload = get_workload("astar")
    settings = ExperimentSettings(trace_accesses=240_000)
    lite_params = LiteParams(
        interval_instructions=settings.scaled_lite_interval(),
        threshold_mode="relative",
        epsilon_relative=0.125,
        reactivate_probability=1 / 64,
    )
    result = run_workload_config(
        workload,
        "TLB_Lite",
        settings,
        lite_params=lite_params,
        record_history=True,
    )

    print(f"{workload.name}: {result.lite_intervals} Lite intervals measured\n")
    print("timeline (one line per sampled window):")
    print(f"{'instr':>10s} {'L1 MPKI':>8s} {'4KB ways':>9s} {'2MB ways':>9s}")
    for sample in result.timeline[::4]:
        ways = sample.active_ways or {}
        print(
            f"{sample.instructions:>10,d} {sample.l1_mpki:8.2f} "
            f"{ways.get('L1-4KB', '-'):>9} {ways.get('L1-2MB', '-'):>9}"
        )

    shares = result.way_lookup_shares("L1-4KB")
    print("\nL1-4KB lookup shares by active ways (Table 5 style):")
    for ways, share in shares.items():
        print(f"  {ways} way(s): {share * 100:5.1f}%")
    print(f"\nenergy: {result.energy_per_access_pj:.2f} pJ/access "
          f"(THP baseline pays the full 10.7 pJ of both L1 TLBs)")


if __name__ == "__main__":
    main()
