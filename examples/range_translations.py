#!/usr/bin/env python3
"""RMM under the hood: eager paging, the range table, and range TLBs.

Builds a process with eager paging, inspects the redundant mappings the
OS substrate creates (page tables *and* range translations), then drives
a pointer-chasing stream through RMM and RMM_Lite to show where the
translations get served.

Run time: ~15 seconds.
"""

from repro import EagerPaging, ExperimentSettings, PhysicalMemory, Process, get_workload
from repro.analysis.experiments import run_workload_config


def inspect_substrate() -> None:
    print("== OS substrate: eager paging creates redundant mappings ==")
    process = Process(PhysicalMemory(4 << 30, seed=1), EagerPaging("thp"))
    heap = process.mmap_bytes(300 << 20, name="heap")
    stack = process.mmap_bytes(8 << 20, name="stack", thp_eligible=False)
    print(process.describe())
    for vma in (heap, stack):
        rng = process.range_table.lookup(vma.start_vpn)
        print(
            f"  {vma.name}: VMA [{vma.start_vpn:#x}, {vma.end_vpn:#x}) -> "
            f"range offset {rng.offset:+#x} covering {rng.num_pages} pages"
        )
    histogram = process.page_size_histogram()
    print(f"  redundant page tables: {histogram}")
    # The range and the page table always agree -- that is RMM's
    # "redundant" invariant.
    probe = heap.start_vpn + 12_345
    assert process.translate(probe) == process.range_table.lookup(probe).translate(probe)
    print(f"  page-table and range translation agree at vpn {probe:#x}\n")


def compare_configs() -> None:
    print("== mcf: where do translations get served? ==")
    workload = get_workload("mcf")
    settings = ExperimentSettings(trace_accesses=150_000)
    for config in ("THP", "RMM", "RMM_Lite"):
        result = run_workload_config(workload, config, settings)
        walks = result.page_walks
        range_walks = result.range_walk_refs
        shares = ", ".join(
            f"{name}: {share * 100:.0f}%"
            for name, share in result.hit_shares().items()
            if share > 0.005
        )
        print(
            f"  {config:>8s}: L1 MPKI {result.l1_mpki:6.2f} | walks {walks:6d} | "
            f"range-walk refs {range_walks:5d} | L1 hits: {shares}"
        )
    print(
        "\nRMM eliminates the page walks (L2-range hits); RMM_Lite's 4-entry\n"
        "L1-range TLB then absorbs the L1 misses as well (paper Section 4.3)."
    )


if __name__ == "__main__":
    inspect_substrate()
    compare_configs()
