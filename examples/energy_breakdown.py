#!/usr/bin/env python3
"""Where does address-translation energy go?  (Paper Section 3.)

Reproduces the Figure 2a analysis on two contrasting workloads:
omnetpp (L1-lookup bound) and mcf (page-walk bound), printing the
per-component dynamic-energy breakdown under 4KB, THP, and RMM, plus the
Figure 3 walk-locality sensitivity.

Run time: ~20 seconds.
"""

from repro import ExperimentSettings, get_workload, render_table
from repro.analysis.experiments import run_workload_config
from repro.core.params import SimulationParams
from repro.energy.model import COMPONENTS


def breakdown_table(workload_name: str) -> None:
    workload = get_workload(workload_name)
    settings = ExperimentSettings(trace_accesses=150_000)
    rows = []
    for config in ("4KB", "THP", "RMM"):
        result = run_workload_config(workload, config, settings)
        total = result.total_energy_pj
        rows.append(
            [config, result.energy_per_access_pj]
            + [result.energy.by_component[component] / total for component in COMPONENTS]
        )
    print(
        render_table(
            ["config", "pJ/acc"] + [c.replace("_", " ") for c in COMPONENTS],
            rows,
            title=f"{workload_name} — dynamic energy breakdown (fractions of total)",
        )
    )
    print()


def walk_locality(workload_name: str) -> None:
    workload = get_workload(workload_name)
    rows = []
    base = None
    for ratio in (1.0, 0.5, 0.0):
        settings = ExperimentSettings(
            trace_accesses=150_000,
            sim_params=SimulationParams(walk_l1_hit_ratio=ratio),
        )
        result = run_workload_config(workload, "4KB", settings)
        base = base or result.total_energy_pj
        rows.append([f"{int(ratio * 100)}%", result.total_energy_pj / base])
    print(
        render_table(
            ["walk L1 hit ratio", "energy vs 100%"],
            rows,
            title=f"{workload_name} — Figure 3 walk-locality sensitivity",
        )
    )
    print()


def main() -> None:
    for name in ("omnetpp", "mcf"):
        breakdown_table(name)
    walk_locality("mcf")
    print(
        "omnetpp's energy is L1-TLB lookups; mcf's is page walks — the two\n"
        "sources the paper identifies, attacked by Lite and RMM respectively."
    )


if __name__ == "__main__":
    main()
