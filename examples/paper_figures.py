#!/usr/bin/env python3
"""Mini Figure 10: the paper's headline table, side by side with the paper.

Runs a scaled-down version of the main experiment (two representative
workloads instead of eight, short traces) and prints the measured
normalised energies next to the paper's averages.  The full-size version
is `pytest benchmarks/bench_fig10_main.py --benchmark-only`.

Run time: ~60 seconds.
"""

from repro import (
    CONFIG_NAMES,
    ExperimentSettings,
    get_workload,
    render_table,
    run_matrix,
)
from repro.analysis import average_ratio, normalized_energy, normalized_miss_cycles

#: The paper's Figure 10 averages over the eight TLB-intensive workloads.
PAPER_ENERGY_VS_4KB = {
    "4KB": 1.00,
    "THP": 1.04,
    "TLB_Lite": 0.80,
    "RMM": 0.96,
    "TLB_PP": 0.59,
    "RMM_Lite": 0.30,
}
PAPER_CYCLES_VS_4KB = {
    "4KB": 1.00,
    "THP": 0.17,
    "TLB_Lite": 0.172,
    "RMM": 0.04,
    "TLB_PP": 0.33,
    "RMM_Lite": 0.01,
}


def main() -> None:
    workloads = [get_workload("cactusADM"), get_workload("omnetpp")]
    names = [w.name for w in workloads]
    print("mini Figure 10 over:", ", ".join(names), "\n")

    settings = ExperimentSettings(trace_accesses=150_000)
    results = run_matrix(workloads, CONFIG_NAMES, settings)

    rows = []
    for config in CONFIG_NAMES:
        energy = average_ratio([normalized_energy(results, n, config) for n in names])
        cycles = average_ratio(
            [normalized_miss_cycles(results, n, config) for n in names]
        )
        rows.append(
            [
                config,
                energy,
                PAPER_ENERGY_VS_4KB[config],
                cycles,
                PAPER_CYCLES_VS_4KB[config],
            ]
        )
    print(
        render_table(
            [
                "config",
                "energy (measured)",
                "energy (paper avg)",
                "cycles (measured)",
                "cycles (paper avg)",
            ],
            rows,
            title="normalised to the 4KB configuration",
        )
    )
    print(
        "\nAbsolute values differ (synthetic workloads, two of eight here);\n"
        "the ordering and directions are the reproduced result — see\n"
        "EXPERIMENTS.md for the full-size side-by-side."
    )


if __name__ == "__main__":
    main()
