#!/usr/bin/env python3
"""Analyze a reference trace before simulating it.

Exports a workload's trace to the on-disk format, reloads it, computes
the reuse-distance statistics that determine TLB behaviour (Mattson's
stack property gives hit ratios for every capacity from one pass), and
replays the trace through a configuration.  This is the adoption path
for users with their own traces.

Run time: ~15 seconds.
"""

import tempfile
from pathlib import Path

from repro import get_workload, render_table
from repro.analysis import (
    footprint_curve,
    hit_ratio_curve,
    reuse_distance_histogram,
    summarize_trace,
)
from repro.core.organizations import build_organization, paging_policy_for
from repro.core.simulator import Simulator
from repro.mem.physical import PhysicalMemory
from repro.workloads import export_workload_trace, load_trace, workload_from_metadata


def main() -> None:
    workload = get_workload("omnetpp")
    with tempfile.TemporaryDirectory() as tmp:
        stem = Path(tmp) / "omnetpp"
        print(f"exporting {workload.name} trace to {stem}.npy/.json ...")
        export_workload_trace(workload, 120_000, stem, seed=9)
        trace, metadata = load_trace(stem)

        print("\n== trace statistics ==")
        summary = summarize_trace(trace)
        print(summary.render())

        histogram = reuse_distance_histogram(trace)
        curve = hit_ratio_curve(histogram, [16, 32, 64, 128, 512, 2048])
        print(
            render_table(
                ["LRU entries", "predicted hit ratio"],
                [[entries, ratio] for entries, ratio in curve.items()],
                title="fully-associative LRU hit-ratio curve (Mattson)",
            )
        )
        print("footprint per 10th of the trace (distinct pages):")
        print(" ", footprint_curve(trace, windows=10))

        print("\n== replaying the saved trace under THP ==")
        loaded = workload_from_metadata(metadata)
        process = loaded.build_process(
            paging_policy_for("THP"), PhysicalMemory(8 << 30, seed=1)
        )
        organization = build_organization("THP", process)
        simulator = Simulator(
            organization, workload_name=metadata.workload,
            instructions_per_access=metadata.instructions_per_access,
        )
        result = simulator.run(trace)
        print(result.summary_line())
        print(
            f"\nnote: the 64-entry prediction ({curve[64]:.3f}) is for a fully-"
            "associative LRU cache;\nthe simulated 4-way L1-4KB TLB plus the "
            "L1-2MB TLB land in the same regime."
        )


if __name__ == "__main__":
    main()
