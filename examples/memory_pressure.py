#!/usr/bin/env python3
"""Memory pressure: the OS breaks huge pages and Lite reacts.

Paper Section 4.2.2 motivates Lite's degradation response with exactly
this: "Lite activates all ways in the L1 TLBs when their performance
degrades, e.g., ... the operating system breaks huge pages to 4 KB pages
to respond to memory pressure."

This scenario runs a THP-backed workload under TLB_Lite, demotes 90 % of
its huge pages mid-run (with the TLB shootdowns), and shows the MPKI
spike plus Lite's reaction in the interval history.

Run time: ~10 seconds.
"""

import numpy as np

from repro import PhysicalMemory, Process, TransparentHugePaging
from repro.core.organizations import build_tlb_lite
from repro.core.params import LiteParams
from repro.core.simulator import Simulator
from repro.mmu.translation import PAGES_PER_2MB, PageSize


def main() -> None:
    process = Process(PhysicalMemory(2 << 30, seed=1), TransparentHugePaging())
    heap = process.mmap(PAGES_PER_2MB * 24, name="heap")

    rng = np.random.default_rng(4)
    pages = heap.start_vpn + rng.integers(heap.num_pages, size=40_000)
    trace = np.repeat(pages, 3)[:120_000].astype(np.int64)

    org = build_tlb_lite(
        process,
        lite_params=LiteParams(interval_instructions=9_000, reactivate_probability=0.0),
        record_history=True,
    )

    def memory_pressure(_organization):
        broken = process.break_huge_pages(0.9, seed=7)
        for chunk in range(24):
            base = heap.start_vpn + chunk * PAGES_PER_2MB
            if process.leaf_for(base).page_size is PageSize.SIZE_4KB:
                org.hierarchy.shootdown_huge_page(base)
        print(f"  !! memory pressure: kernel demoted {broken} huge pages "
              "(TLB shootdowns sent)")

    sim = Simulator(org, instructions_per_access=3.0)
    print("running with huge-page breakdown at access 66,000 ...")
    result = sim.run(trace, fast_forward_accesses=12_000, events=[(66_000, memory_pressure)])

    print("\nwindowed L1 MPKI (breakdown hits mid-run):")
    for index, sample in enumerate(result.timeline[::5]):
        bar = "#" * min(int(sample.l1_mpki * 2), 60)
        ways = sample.active_ways["L1-4KB"]
        print(f"  {sample.instructions:>8,d} | {sample.l1_mpki:6.2f} {bar:<60s} 4KB-ways={ways}")

    actions = [record.action for record in org.lite.history]
    print(f"\nLite actions: {actions.count('decide')} decide, "
          f"{actions.count('degradation-reactivate')} degradation-reactivate")
    print("After the spike Lite re-enables all ways, then re-settles once the "
          "4 KB working set stabilises.")


if __name__ == "__main__":
    main()
