#!/usr/bin/env python3
"""Audit the energy model by hand: rebuild a result's total from parts.

Transparency check for the Table 3 accounting: take one simulation,
pull the raw per-structure access histograms, price every access with
the Table 2 parameters, add the walk references — and match the
simulator's reported total to the picojoule.

Run time: ~10 seconds.
"""

from repro import ExperimentSettings, get_workload, render_table
from repro.analysis import run_workload_config_with_org
from repro.energy.model import EnergyModel


def main() -> None:
    workload = get_workload("cactusADM")
    settings = ExperimentSettings(trace_accesses=100_000)
    result, organization = run_workload_config_with_org(workload, "TLB_Lite", settings)

    print(f"{workload.name} under TLB_Lite: auditing "
          f"{result.total_energy_pj / 1e6:.3f} µJ of dynamic energy\n")

    rows = []
    hand_total = 0.0
    for binding in organization.bindings:
        stats = result.structure_stats[binding.name]
        energy = 0.0
        detail = []
        for ways, count in sorted(stats.lookups_by_ways.items(), reverse=True):
            params = binding.params_for_ways(ways)
            energy += count * params.read_pj
            detail.append(f"{count}r@{ways}w×{params.read_pj}")
        for ways, count in sorted(stats.fills_by_ways.items(), reverse=True):
            params = binding.params_for_ways(ways)
            energy += count * params.write_pj
            detail.append(f"{count}w@{ways}w×{params.write_pj}")
        hand_total += energy
        rows.append([binding.name, energy / 1e6, "; ".join(detail[:3])])
    model = EnergyModel()
    walk_energy = result.page_walk_refs * model.walk_ref_pj
    range_energy = result.range_walk_refs * model.walk_ref_pj
    hand_total += walk_energy + range_energy
    rows.append(["page walks", walk_energy / 1e6, f"{result.page_walk_refs} refs × {model.walk_ref_pj:.1f} pJ"])
    rows.append(["range walks", range_energy / 1e6, f"{result.range_walk_refs} refs"])

    print(render_table(["component", "µJ", "accounting (A·E_read + M·E_write)"], rows))
    print(f"\nhand-computed total: {hand_total / 1e6:.6f} µJ")
    print(f"simulator reported : {result.total_energy_pj / 1e6:.6f} µJ")
    difference = abs(hand_total - result.total_energy_pj)
    print(f"difference         : {difference:.6f} pJ")
    assert difference < 1e-6, "energy accounting mismatch!"
    print("\n✓ every picojoule accounted for by Table 2 × the access histograms")


if __name__ == "__main__":
    main()
