#!/usr/bin/env python3
"""Build your own workload model and sweep it across configurations.

Shows the workload API end to end: declare VMAs, compose an access
pattern from the primitives, and run the configuration sweep.  The toy
program below is a hash-join: a build-side hash table probed randomly,
a streamed probe-side relation, and a hot stack.

Run time: ~15 seconds.
"""

from repro import CONFIG_NAMES, ExperimentSettings, render_table
from repro.analysis.experiments import run_workload_config
from repro.workloads import (
    Mixture,
    SequentialScan,
    StridedSet,
    UniformRandom,
    VMASpec,
    Workload,
    Zipf,
)


def hash_join_pattern(regions):
    hash_table = regions["hash_table"]
    probe_relation = regions["probe_relation"]
    stack = regions["stack"]
    return Mixture(
        [
            # Hot: join loop state on the stack.
            (Zipf(stack.subregion(0, 24), alpha=1.1, burst=4), 0.45),
            # Warm: bucket headers -- small at 4 KB grain, spread over
            # many huge pages (defeats the L1-2MB TLB, not the L2).
            (StridedSet(hash_table, num_pages=256, stride_pages=93, burst=3), 0.10),
            # Cold-ish: random bucket probes over the whole table.
            (UniformRandom(hash_table, burst=2), 0.15),
            # Streaming: the probe-side relation.
            (SequentialScan(probe_relation, stride_pages=1, burst=16), 0.30),
        ]
    )


def main() -> None:
    workload = Workload(
        name="hashjoin",
        suite="custom",
        vma_specs=[
            VMASpec("hash_table", 400),  # MB
            VMASpec("probe_relation", 220),
            VMASpec("stack", 4, thp_eligible=False),
        ],
        pattern_factory=hash_join_pattern,
        instructions_per_access=2.6,
        description="hash join: random build-side probes + streamed probe side",
    )
    print(f"{workload.name}: {workload.footprint_mb:.0f} MB across "
          f"{len(workload.vma_specs)} VMAs\n")

    settings = ExperimentSettings(trace_accesses=150_000)
    rows = []
    base = None
    for config in CONFIG_NAMES:
        result = run_workload_config(workload, config, settings)
        base = base or result.total_energy_pj
        rows.append(
            [
                config,
                result.energy_per_access_pj,
                result.total_energy_pj / base,
                result.l1_mpki,
                result.l2_mpki,
            ]
        )
    print(
        render_table(
            ["config", "pJ/access", "vs 4KB", "L1 MPKI", "L2 MPKI"],
            rows,
            title="hash join across the paper's configurations",
        )
    )


if __name__ == "__main__":
    main()
