#!/usr/bin/env python3
"""Two processes time-sharing one core's TLBs.

Sweeps the scheduling quantum with untagged TLBs (flush on every switch)
and with PCID-tagged entries, under THP and RMM_Lite.  Shows the
extension result: range translations make context switches cheap — one
range walk refills a whole VMA, where paging re-walks every hot page.

Run time: ~30 seconds.
"""

from repro import get_workload, render_table
from repro.core.multiprocess import TimeSharingConfig, run_time_shared


def main() -> None:
    workloads = [get_workload("astar"), get_workload("mummer")]
    print("co-scheduling:", " + ".join(w.name for w in workloads), "\n")

    rows = []
    for config in ("THP", "RMM_Lite"):
        for quantum in (50_000, 10_000, 2_000):
            for pcid in (True, False):
                sharing = TimeSharingConfig(
                    quantum_accesses=quantum,
                    accesses_per_process=60_000,
                    pcid=pcid,
                )
                result = run_time_shared(workloads, config, sharing)
                rows.append(
                    [
                        config,
                        f"{quantum // 1000}k",
                        "PCID" if pcid else "flush",
                        result.l2_mpki,
                        result.miss_cycles,
                        result.energy_per_access_pj,
                    ]
                )
    print(
        render_table(
            ["config", "quantum", "switch", "L2 MPKI", "miss cycles", "pJ/access"],
            rows,
            title="context-switch cost vs scheduling quantum",
        )
    )
    print(
        "\nFlushing hurts THP badly at small quanta (every hot page re-walks);\n"
        "RMM_Lite refills each address space with a couple of range walks, so\n"
        "its advantage grows with the switch rate."
    )


if __name__ == "__main__":
    main()
