#!/usr/bin/env python3
"""Calibration harness for the synthetic workload models.

Prints, per workload and configuration, the statistics the paper's
figures depend on (L1/L2 MPKI, dynamic energy per access, energy and
miss-cycle ratios vs 4KB, Lite way shares, hit attribution) so workload
parameters can be tuned against the paper's reported behaviour.

Usage::

    python scripts/calibrate_workloads.py [workload ...] [--accesses N]
        [--configs 4KB,THP,...]
"""

from __future__ import annotations

import argparse
import time

from repro import (
    CONFIG_NAMES,
    ExperimentSettings,
    get_workload,
    run_workload_config,
    tlb_intensive_workloads,
)
from repro.analysis.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*", help="workload names (default: TLB-intensive set)")
    parser.add_argument("--accesses", type=int, default=300_000)
    parser.add_argument("--configs", default=",".join(CONFIG_NAMES))
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    workloads = (
        [get_workload(name) for name in args.workloads]
        if args.workloads
        else tlb_intensive_workloads()
    )
    configs = args.configs.split(",")
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)

    for workload in workloads:
        rows = []
        baseline = None
        start = time.time()
        details = []
        for config in configs:
            result = run_workload_config(workload, config, settings)
            if config == "4KB":
                baseline = result
            energy_ratio = (
                result.total_energy_pj / baseline.total_energy_pj if baseline else float("nan")
            )
            cycle_ratio = (
                result.miss_cycles / baseline.miss_cycles
                if baseline and baseline.miss_cycles
                else float("nan")
            )
            walk_frac = result.energy.fraction("page_walk")
            l1_frac = (
                result.energy.by_component["l1_page_tlbs"]
                + result.energy.by_component["l1_range_tlb"]
            ) / result.total_energy_pj
            rows.append(
                [
                    config,
                    result.l1_mpki,
                    result.l2_mpki,
                    result.energy_per_access_pj,
                    energy_ratio,
                    cycle_ratio,
                    l1_frac,
                    walk_frac,
                ]
            )
            if config in ("TLB_Lite", "RMM_Lite"):
                shares_4k = result.way_lookup_shares("L1-4KB")
                shares_2m = result.way_lookup_shares("L1-2MB") if config == "TLB_Lite" else {}
                hits = result.hit_shares()
                details.append(
                    f"  {config}: 4KB ways {fmt_shares(shares_4k)}"
                    + (f" | 2MB ways {fmt_shares(shares_2m)}" if shares_2m else "")
                    + f" | hit shares {fmt_hits(hits)}"
                )
        print(
            render_table(
                ["config", "L1 MPKI", "L2 MPKI", "pJ/acc", "E/4KB", "cyc/4KB", "L1 frac", "walk frac"],
                rows,
                title=f"== {workload.name} ({workload.footprint_mb:.0f} MB) "
                f"[{time.time() - start:.1f}s]",
            )
        )
        for line in details:
            print(line)
        print()


def fmt_shares(shares: dict[int, float]) -> str:
    return "/".join(f"{ways}w:{share * 100:.0f}%" for ways, share in shares.items())


def fmt_hits(hits: dict[str, float]) -> str:
    return " ".join(f"{name}:{share * 100:.0f}%" for name, share in hits.items() if share > 0.0005)


if __name__ == "__main__":
    main()
