#!/usr/bin/env python3
"""CI perf-smoke gate for the streak-coalescing fast engine.

Three checks, all required:

1. **Differential equivalence** — every TLB organization runs four ways
   (reference/fast engine, each bare and with a live observability hub)
   with per-component state digests recorded at every interval boundary;
   any result mismatch or digest divergence (localized via
   :mod:`repro.resilience.bisect`) fails the gate.  This is the
   telemetry *inertness* proof riding the same harness as the engine
   equivalence proof.
2. **Throughput floor** — a reduced run over the long-streak ``stream``
   bench trace; the fast engine must stay at least ``--min-speedup``
   (default 1.5x, far below the ~5-8x a quiet machine measures, so CI
   jitter does not flake) above the reference engine on 4KB and THP.
3. **Telemetry-disabled floor** — the fast engine with a *disabled*
   observability hub attached must hold ``--max-telemetry-cost``
   (default 2%) of the bare fast engine's rate on the same gated
   configs: disabled telemetry must be free, not merely cheap.

Exit 0 when all hold, 1 otherwise.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py
        [--accesses N] [--bench-accesses N] [--min-speedup R]
        [--max-telemetry-cost F]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_throughput import stream_workload  # noqa: E402

from repro.analysis.experiments import ExperimentSettings  # noqa: E402
from repro.core.organizations import (  # noqa: E402
    EXTENDED_CONFIG_NAMES,
    build_organization,
    paging_policy_for,
)
from repro.core.simulator import Simulator  # noqa: E402
from repro.mem.physical import PhysicalMemory  # noqa: E402
from repro.observability import Observability  # noqa: E402
from repro.resilience.bisect import (  # noqa: E402
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
)
from repro.workloads.base import VMASpec, Workload  # noqa: E402
from repro.workloads.patterns import Zipf  # noqa: E402

GATED_CONFIGS = ("4KB", "THP")


def smoke_workload() -> Workload:
    return Workload(
        "perf-smoke",
        "TEST",
        [VMASpec("heap", 6), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 24), alpha=1.1, burst=3),
        instructions_per_access=3.0,
    )


def check_equivalence(accesses: int) -> bool:
    """All configurations, four ways: identical results + digests.

    Baseline is the bare reference run; the bare fast run proves engine
    equivalence, and the two hub-carrying runs prove telemetry inertness
    under either engine.
    """
    settings = ExperimentSettings(
        trace_accesses=accesses, seed=5, physical_bytes=1 << 28
    )
    workload = smoke_workload()
    ok = True
    variants = (
        ("fast", "reference"),
        ("reference+obs", "reference"),
        ("fast+obs", "fast"),
    )
    for config in EXTENDED_CONFIG_NAMES:
        baseline = record_digest_trail(workload, config, settings)
        failed = False
        for label, engine in variants:
            observability = Observability() if label.endswith("+obs") else None
            run = record_digest_trail(
                workload, config, settings, engine=engine, observability=observability
            )
            divergence = bisect_divergence(baseline.trail, run.trail)
            if divergence is not None:
                print(f"FAIL {config} [{label}]: {describe_divergence(divergence)}")
                failed = True
            elif run.result != baseline.result:
                print(
                    f"FAIL {config} [{label}]: results differ with identical digests"
                )
                failed = True
        if failed:
            ok = False
        else:
            print(
                f"ok   {config}: {baseline.boundaries} boundaries byte-identical "
                f"across {len(variants) + 1} runs"
            )
    return ok


def throughput(
    workload, trace, config: str, engine: str, accesses: int, observability=None
) -> float:
    settings = ExperimentSettings(trace_accesses=accesses)
    process = workload.build_process(
        paging_policy_for(config), PhysicalMemory(settings.physical_bytes, seed=1)
    )
    organization = build_organization(config, process)
    simulator = Simulator(
        organization,
        instructions_per_access=workload.instructions_per_access,
        engine=engine,
        observability=observability,
    )
    start = time.perf_counter()
    simulator.run(trace, fast_forward_accesses=0)
    return accesses / (time.perf_counter() - start)


def check_speedup(accesses: int, min_speedup: float) -> bool:
    """Fast engine must beat reference by ``min_speedup`` on 4KB/THP."""
    workload = stream_workload()
    trace = workload.trace(accesses, seed=1)
    ok = True
    for config in GATED_CONFIGS:
        # Best of two rounds per engine smooths one-off scheduler stalls.
        reference = max(
            throughput(workload, trace, config, "reference", accesses) for _ in range(2)
        )
        fast = max(
            throughput(workload, trace, config, "fast", accesses) for _ in range(2)
        )
        ratio = fast / reference
        verdict = "ok  " if ratio >= min_speedup else "FAIL"
        if ratio < min_speedup:
            ok = False
        print(
            f"{verdict} {config}: fast {fast:,.0f} acc/s vs reference "
            f"{reference:,.0f} acc/s ({ratio:.2f}x, floor {min_speedup}x)"
        )
    return ok


def check_telemetry_cost(accesses: int, max_cost: float) -> bool:
    """A disabled hub may cost at most ``max_cost`` of the bare rate.

    ``Observability.resolve`` collapses ``enabled=False`` to ``None``
    before the drain loop starts, so this should measure pure noise; the
    tolerance exists only to absorb timer jitter on loaded CI runners.
    """
    workload = stream_workload()
    trace = workload.trace(accesses, seed=1)
    disabled = Observability(enabled=False)
    ok = True
    for config in GATED_CONFIGS:
        bare = max(
            throughput(workload, trace, config, "fast", accesses) for _ in range(2)
        )
        with_hub = max(
            throughput(workload, trace, config, "fast", accesses, disabled)
            for _ in range(2)
        )
        cost = 1.0 - with_hub / bare
        verdict = "ok  " if cost <= max_cost else "FAIL"
        if cost > max_cost:
            ok = False
        print(
            f"{verdict} {config}: disabled hub {with_hub:,.0f} acc/s vs bare "
            f"{bare:,.0f} acc/s ({cost:+.1%} cost, ceiling {max_cost:.0%})"
        )
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=6_000)
    parser.add_argument("--bench-accesses", type=int, default=60_000)
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--max-telemetry-cost", type=float, default=0.02)
    args = parser.parse_args()

    print(f"[1/3] differential equivalence ({len(EXTENDED_CONFIG_NAMES)} configs, "
          f"{args.accesses} accesses, digests at every boundary, engines x "
          f"telemetry)")
    equivalent = check_equivalence(args.accesses)
    print(f"[2/3] throughput gate (stream trace, {args.bench_accesses} accesses)")
    fast_enough = check_speedup(args.bench_accesses, args.min_speedup)
    print(f"[3/3] telemetry-disabled gate (ceiling "
          f"{args.max_telemetry_cost:.0%} of bare fast-engine rate)")
    telemetry_free = check_telemetry_cost(args.bench_accesses, args.max_telemetry_cost)
    if equivalent and fast_enough and telemetry_free:
        print("perf-smoke: ok")
        return 0
    print("perf-smoke: FAILED")
    return 1


if __name__ == "__main__":
    sys.exit(main())
