#!/usr/bin/env python3
"""CI perf-smoke gate for the streak-coalescing fast engine.

Two checks, both required:

1. **Differential equivalence** — every TLB organization runs under both
   engines with per-component state digests recorded at every interval
   boundary; any result mismatch or digest divergence (localized via
   :mod:`repro.resilience.bisect`) fails the gate.
2. **Throughput floor** — a reduced run over the long-streak ``stream``
   bench trace; the fast engine must stay at least ``--min-speedup``
   (default 1.5x, far below the ~5-8x a quiet machine measures, so CI
   jitter does not flake) above the reference engine on 4KB and THP.

Exit 0 when both hold, 1 otherwise.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py
        [--accesses N] [--bench-accesses N] [--min-speedup R]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_throughput import stream_workload  # noqa: E402

from repro.analysis.experiments import ExperimentSettings  # noqa: E402
from repro.core.organizations import (  # noqa: E402
    EXTENDED_CONFIG_NAMES,
    build_organization,
    paging_policy_for,
)
from repro.core.simulator import Simulator  # noqa: E402
from repro.mem.physical import PhysicalMemory  # noqa: E402
from repro.resilience.bisect import (  # noqa: E402
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
)
from repro.workloads.base import VMASpec, Workload  # noqa: E402
from repro.workloads.patterns import Zipf  # noqa: E402

GATED_CONFIGS = ("4KB", "THP")


def smoke_workload() -> Workload:
    return Workload(
        "perf-smoke",
        "TEST",
        [VMASpec("heap", 6), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 24), alpha=1.1, burst=3),
        instructions_per_access=3.0,
    )


def check_equivalence(accesses: int) -> bool:
    """All configurations: identical results + per-boundary digests."""
    settings = ExperimentSettings(
        trace_accesses=accesses, seed=5, physical_bytes=1 << 28
    )
    workload = smoke_workload()
    ok = True
    for config in EXTENDED_CONFIG_NAMES:
        reference = record_digest_trail(workload, config, settings)
        fast = record_digest_trail(workload, config, settings, engine="fast")
        divergence = bisect_divergence(reference.trail, fast.trail)
        if divergence is not None:
            print(f"FAIL {config}: {describe_divergence(divergence)}")
            ok = False
        elif fast.result != reference.result:
            print(f"FAIL {config}: results differ with identical digests")
            ok = False
        else:
            print(f"ok   {config}: {reference.boundaries} boundaries byte-identical")
    return ok


def throughput(workload, trace, config: str, engine: str, accesses: int) -> float:
    settings = ExperimentSettings(trace_accesses=accesses)
    process = workload.build_process(
        paging_policy_for(config), PhysicalMemory(settings.physical_bytes, seed=1)
    )
    organization = build_organization(config, process)
    simulator = Simulator(
        organization,
        instructions_per_access=workload.instructions_per_access,
        engine=engine,
    )
    start = time.perf_counter()
    simulator.run(trace, fast_forward_accesses=0)
    return accesses / (time.perf_counter() - start)


def check_speedup(accesses: int, min_speedup: float) -> bool:
    """Fast engine must beat reference by ``min_speedup`` on 4KB/THP."""
    workload = stream_workload()
    trace = workload.trace(accesses, seed=1)
    ok = True
    for config in GATED_CONFIGS:
        # Best of two rounds per engine smooths one-off scheduler stalls.
        reference = max(
            throughput(workload, trace, config, "reference", accesses) for _ in range(2)
        )
        fast = max(
            throughput(workload, trace, config, "fast", accesses) for _ in range(2)
        )
        ratio = fast / reference
        verdict = "ok  " if ratio >= min_speedup else "FAIL"
        if ratio < min_speedup:
            ok = False
        print(
            f"{verdict} {config}: fast {fast:,.0f} acc/s vs reference "
            f"{reference:,.0f} acc/s ({ratio:.2f}x, floor {min_speedup}x)"
        )
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=6_000)
    parser.add_argument("--bench-accesses", type=int, default=60_000)
    parser.add_argument("--min-speedup", type=float, default=1.5)
    args = parser.parse_args()

    print(f"[1/2] differential equivalence ({len(EXTENDED_CONFIG_NAMES)} configs, "
          f"{args.accesses} accesses, digests at every boundary)")
    equivalent = check_equivalence(args.accesses)
    print(f"[2/2] throughput gate (stream trace, {args.bench_accesses} accesses)")
    fast_enough = check_speedup(args.bench_accesses, args.min_speedup)
    if equivalent and fast_enough:
        print("perf-smoke: ok")
        return 0
    print("perf-smoke: FAILED")
    return 1


if __name__ == "__main__":
    sys.exit(main())
