#!/usr/bin/env python3
"""Chaos drill for the process-isolated sweep supervisor.

Runs the same small (workload × configuration) matrix three times:

1. an unfaulted serial reference run (``workers=1``);
2. a chaos run under ``--workers 2`` where every cell's first attempt
   is SIGKILLed at a random drain-loop boundary, interrupted further by
   stopping after the crash-retry storm settles;
3. a ``--resume`` of the chaos journal.

It then asserts the resumed chaos journal's order-independent digest
matches the reference run's — i.e. random worker kills plus a resume
cycle change *nothing* about the science.  Exit 0 on success, 1 on any
mismatch.  CI runs this as the ``chaos`` job.

With ``--metrics-out PATH`` the chaos and resume runs also collect
worker telemetry (``metrics=True``), which doubles as an inertness
check — the digests are compared against a metrics-free reference run —
and the merged metrics sidecar is copied to ``PATH`` as a CI artifact.

Usage::

    PYTHONPATH=src python scripts/chaos_drill.py [--accesses N]
        [--workers N] [--kill-prob P] [--seed S] [--metrics-out PATH]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro import ExperimentSettings, get_workload
from repro.resilience import ChaosPolicy, SweepJournal, run_resilient_sweep

CONFIGS = ("4KB", "THP", "TLB_Lite", "RMM_Lite")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="povray")
    parser.add_argument("--accesses", type=int, default=20_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-prob", type=float, default=0.35)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--metrics-out", type=Path, default=None)
    args = parser.parse_args()
    metrics = args.metrics_out is not None

    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses)
    chaos = ChaosPolicy(kill_probability=args.kill_prob, seed=args.seed)

    with tempfile.TemporaryDirectory(prefix="chaos-drill-") as tmp:
        reference = Path(tmp) / "reference.jsonl"
        chaotic = Path(tmp) / "chaotic.jsonl"

        print(f"[1/3] reference serial sweep ({args.workload}, "
              f"{len(CONFIGS)} configs, {args.accesses} accesses)")
        ref_report = run_resilient_sweep(
            [workload], CONFIGS, settings,
            journal_path=reference, workers=1,
        )
        print(f"      {ref_report.summary()}")

        print(f"[2/3] chaos sweep: --workers {args.workers}, first attempts "
              f"SIGKILLed with p={args.kill_prob}")
        chaos_report = run_resilient_sweep(
            [workload], CONFIGS, settings,
            journal_path=chaotic, workers=args.workers,
            chaos=chaos, backoff_s=0.0, metrics=metrics,
        )
        crashes = sum(cell.attempts - 1 for cell in chaos_report.cells)
        print(f"      {chaos_report.summary()} ({crashes} worker crash(es))")

        print("[3/3] resume of the chaos journal")
        resumed = run_resilient_sweep(
            [workload], CONFIGS, settings,
            journal_path=chaotic, workers=args.workers, resume=True,
            metrics=metrics,
        )
        print(f"      {resumed.summary()}")

        ref_digest = SweepJournal(reference).digest()
        chaos_digest = SweepJournal(chaotic).digest()
        print(f"reference digest: {ref_digest}")
        print(f"chaos digest:     {chaos_digest}")
        if chaos_digest != ref_digest:
            print("FAIL: chaos journal diverged from the reference run",
                  file=sys.stderr)
            return 1
        if resumed.completed_count != len(CONFIGS):
            print("FAIL: resume did not replay every cell", file=sys.stderr)
            return 1
        if metrics:
            from repro.observability import metrics_sidecar_path

            sidecar = metrics_sidecar_path(chaotic)
            if not sidecar.exists():
                print("FAIL: metrics sidecar was not written", file=sys.stderr)
                return 1
            args.metrics_out.write_text(sidecar.read_text())
            print(f"metrics sidecar copied to {args.metrics_out}")
        print("OK: worker kills + resume are invisible in the results")
        return 0


if __name__ == "__main__":
    sys.exit(main())
