#!/usr/bin/env python3
"""Coverage ratchet: fail CI when line coverage drops below the floor.

Reads the JSON report written by ``pytest --cov=repro
--cov-report=json:coverage.json`` and compares its total line-coverage
percentage against the committed floor in ``.coverage-baseline.json``.
The gate is a *ratchet*: ``--update-baseline`` raises the floor to the
measured value when coverage improved, and never lowers it — coverage
can only go up over time, and a PR that deletes tests (or adds a large
untested subsystem) fails loudly.

A small tolerance (default 0.25 percentage points) absorbs line-count
drift from unrelated edits; anything larger than that is a real drop.

Exit 0 when the floor holds, 1 when coverage regressed, 2 on a missing
or malformed report.

Usage::

    python scripts/coverage_gate.py [--coverage coverage.json]
        [--baseline .coverage-baseline.json] [--update-baseline]
        [--tolerance PCT_POINTS]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / ".coverage-baseline.json"
DEFAULT_TOLERANCE = 0.25


def read_percent(path) -> float:
    """Total line-coverage percentage from a coverage.py JSON report."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no coverage report at {path}")
    try:
        report = json.loads(path.read_text())
        return float(report["totals"]["percent_covered"])
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed coverage report {path}: {exc}") from exc


def read_floor(path) -> float:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no coverage baseline at {path}")
    try:
        baseline = json.loads(path.read_text())
        return float(baseline["floor_percent"])
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed coverage baseline {path}: {exc}") from exc


def write_floor(path, percent: float) -> None:
    payload = {"floor_percent": round(percent, 2)}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--coverage", type=Path, default=Path("coverage.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="ratchet the floor up to the measured value (never down)",
    )
    args = parser.parse_args(argv)

    try:
        measured = read_percent(args.coverage)
        floor = read_floor(args.baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"coverage-gate: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline and measured > floor:
        write_floor(args.baseline, measured)
        print(f"coverage-gate: floor ratcheted {floor:.2f}% -> {measured:.2f}%")
        floor = measured

    if measured + args.tolerance < floor:
        print(
            f"coverage-gate: FAIL — {measured:.2f}% covered, floor "
            f"{floor:.2f}% (tolerance {args.tolerance} points)"
        )
        return 1
    print(f"coverage-gate: ok — {measured:.2f}% covered (floor {floor:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
