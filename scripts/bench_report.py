#!/usr/bin/env python3
"""Measure simulator throughput and write ``BENCH_throughput.json``.

Runs the same (trace × configuration × engine) matrix as
``benchmarks/bench_throughput.py`` — without the pytest-benchmark
harness, so it can run anywhere — and records per-cell accesses/second
plus the fast/reference speedup per (trace, configuration).  The JSON
artifact is the before/after evidence behind ``docs/performance.md``.

Usage::

    PYTHONPATH=src python scripts/bench_report.py
        [--accesses N] [--rounds K] [--output BENCH_throughput.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_throughput import CONFIGS, TRACES, bench_workload  # noqa: E402

from repro.analysis.experiments import ExperimentSettings  # noqa: E402
from repro.core.fastpath import ENGINES  # noqa: E402
from repro.core.organizations import (  # noqa: E402
    build_organization,
    paging_policy_for,
)
from repro.core.simulator import Simulator  # noqa: E402
from repro.mem.physical import PhysicalMemory  # noqa: E402


def current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(workload, trace, config: str, engine: str, accesses: int, rounds: int) -> float:
    """Best-of-``rounds`` accesses/second for one cell (fresh build each)."""
    settings = ExperimentSettings(trace_accesses=accesses)
    best = 0.0
    for _ in range(rounds):
        process = workload.build_process(
            paging_policy_for(config), PhysicalMemory(settings.physical_bytes, seed=1)
        )
        organization = build_organization(config, process)
        simulator = Simulator(
            organization,
            instructions_per_access=workload.instructions_per_access,
            engine=engine,
        )
        start = time.perf_counter()
        result = simulator.run(trace, fast_forward_accesses=0)
        elapsed = time.perf_counter() - start
        assert result.accesses == accesses
        best = max(best, accesses / elapsed)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=60_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_throughput.json"
    )
    args = parser.parse_args()

    rows = []
    speedups: dict[str, dict[str, float]] = {}
    for trace_name in TRACES:
        workload = bench_workload(trace_name)
        trace = workload.trace(args.accesses, seed=1)
        rates: dict[str, dict[str, float]] = {}
        for config in CONFIGS:
            rates[config] = {}
            for engine in ENGINES:
                rate = measure(
                    workload, trace, config, engine, args.accesses, args.rounds
                )
                rates[config][engine] = rate
                rows.append(
                    {
                        "trace": trace_name,
                        "config": config,
                        "engine": engine,
                        "accesses_per_second": round(rate),
                    }
                )
                print(f"{trace_name:8s} {config:9s} {engine:9s} {rate:>12,.0f} acc/s")
        speedups[trace_name] = {
            config: round(rates[config]["fast"] / rates[config]["reference"], 2)
            for config in CONFIGS
        }
        for config in CONFIGS:
            print(f"{trace_name:8s} {config:9s} speedup   {speedups[trace_name][config]:>11.2f}x")

    payload = {
        "commit": current_commit(),
        "accesses": args.accesses,
        "rounds": args.rounds,
        "generated_by": "scripts/bench_report.py",
        "rows": rows,
        "speedups": speedups,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
