"""Setup shim for environments without the `wheel` package.

The environment's setuptools (65.x) needs `wheel` for PEP 660 editable
installs; this shim lets pip fall back to the legacy `setup.py develop`
path (`pip install -e . --no-use-pep517 --no-build-isolation`), which is
also configured as the default in the repo's pip configuration.
"""

from setuptools import setup

setup()
