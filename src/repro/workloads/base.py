"""Workload model: address-space layout + reference-stream generator.

A :class:`Workload` owns (i) the VMAs the benchmark maps (sizes from the
paper's Table 4, split into the program's dominant data structures) and
(ii) a pattern factory that builds the reference stream over those VMAs.

The same workload must be comparable across configurations, so VMA
placement is deterministic: building the process for any paging policy
yields the same virtual layout, and traces are generated against that
layout independently of the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import WorkloadError
from ..mem.paging import PagingPolicy
from ..mem.physical import PhysicalMemory
from ..mem.process import Process
from ..mem.vma import AddressSpace
from .patterns import AccessPattern, Region

#: 4 KB pages per MiB.
PAGES_PER_MB = 256


@dataclass(frozen=True, slots=True)
class VMASpec:
    """One region the workload maps: name, size, THP eligibility."""

    name: str
    mb: float
    thp_eligible: bool = True

    @property
    def pages(self) -> int:
        return max(1, round(self.mb * PAGES_PER_MB))


class Workload:
    """A synthetic stand-in for one benchmark.

    Parameters
    ----------
    name / suite:
        Benchmark identity ("mcf", "SPEC 2006"). ``suite`` groups
        workloads for the Figure 12 sweeps.
    vma_specs:
        Regions to map, in placement order.
    pattern_factory:
        Called with ``{vma name: Region}``; returns the trace pattern.
    instructions_per_access:
        Ratio of instructions to memory operations; converts access
        counts to instruction counts (MPKI denominators, Lite intervals).
    tlb_intensive:
        True for the paper's main evaluation set (> 5 L1 MPKI at 4 KB).
    """

    def __init__(
        self,
        name: str,
        suite: str,
        vma_specs: list[VMASpec],
        pattern_factory: Callable[[dict[str, Region]], AccessPattern],
        instructions_per_access: float = 3.0,
        tlb_intensive: bool = False,
        description: str = "",
    ) -> None:
        if not vma_specs:
            raise WorkloadError("workload needs at least one VMA")
        self.name = name
        self.suite = suite
        self.vma_specs = list(vma_specs)
        self.pattern_factory = pattern_factory
        self.instructions_per_access = instructions_per_access
        self.tlb_intensive = tlb_intensive
        self.description = description

    # ------------------------------------------------------------------
    @property
    def footprint_mb(self) -> float:
        """Total mapped memory in MiB (paper Table 4's column)."""
        return sum(spec.mb for spec in self.vma_specs)

    def regions(self) -> dict[str, Region]:
        """Deterministic placement of every VMA (no process needed)."""
        space = AddressSpace()
        placed: dict[str, Region] = {}
        for spec in self.vma_specs:
            vma = space.mmap(spec.pages, name=spec.name, thp_eligible=spec.thp_eligible)
            placed[spec.name] = Region(vma.start_vpn, vma.num_pages)
        return placed

    def build_process(
        self, policy: PagingPolicy, physical: PhysicalMemory | None = None
    ) -> Process:
        """Create and populate a process under the given paging policy.

        The virtual layout matches :meth:`regions` exactly (placement is
        policy-independent), so traces remain valid for every
        configuration.
        """
        process = Process(physical=physical, policy=policy)
        for spec in self.vma_specs:
            process.mmap(spec.pages, name=spec.name, thp_eligible=spec.thp_eligible)
        return process

    def trace(self, num_accesses: int, seed: int = 0) -> np.ndarray:
        """Generate the reference stream (int64 vpn array)."""
        if num_accesses <= 0:
            raise WorkloadError("num_accesses must be positive")
        rng = np.random.default_rng(seed)
        pattern = self.pattern_factory(self.regions())
        trace = pattern.generate(rng, num_accesses)
        if len(trace) != num_accesses:
            raise AssertionError(
                f"pattern produced {len(trace)} accesses, wanted {num_accesses}"
            )
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name} ({self.suite}, {self.footprint_mb:.0f} MB)>"
