"""Synthetic workload models standing in for the paper's Pin traces."""

from .base import PAGES_PER_MB, VMASpec, Workload
from .patterns import (
    AccessPattern,
    Mixture,
    Phased,
    Region,
    RepeatingPhases,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
    Zipf,
)
from .registry import (
    all_workloads,
    get_workload,
    other_workloads,
    tlb_intensive_workloads,
)
from .secondary import LightProfile, build_light_workload
from .tracefile import (
    TraceMetadata,
    export_workload_trace,
    load_trace,
    save_trace,
    workload_from_metadata,
)

__all__ = [
    "Workload",
    "VMASpec",
    "PAGES_PER_MB",
    "Region",
    "AccessPattern",
    "SequentialScan",
    "ShuffledScan",
    "StridedSet",
    "UniformRandom",
    "Zipf",
    "Mixture",
    "Phased",
    "RepeatingPhases",
    "all_workloads",
    "get_workload",
    "tlb_intensive_workloads",
    "other_workloads",
    "LightProfile",
    "build_light_workload",
    "TraceMetadata",
    "save_trace",
    "load_trace",
    "export_workload_trace",
    "workload_from_metadata",
]
