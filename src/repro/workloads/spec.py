"""Compatibility shim: the TLB-intensive models moved to
:mod:`repro.workloads.benchmarks` (one module per benchmark, with the
calibration notes).  Import from there for new code."""

from .benchmarks import (
    TLB_INTENSIVE_BUILDERS,
    astar,
    cactusadm,
    canneal,
    gemsfdtd,
    mcf,
    mummer,
    omnetpp,
    zeusmp,
)

__all__ = [
    "TLB_INTENSIVE_BUILDERS",
    "astar",
    "cactusadm",
    "gemsfdtd",
    "mcf",
    "omnetpp",
    "zeusmp",
    "mummer",
    "canneal",
]
