"""Shared locality-tier builders for the benchmark models.

The per-benchmark modules (:mod:`repro.workloads.benchmarks`) compose
their reference streams from three tiers; see ``docs/workloads.md`` for
the full calibration methodology.

* :func:`hot` — skewed reuse inside a small window (tens of pages).
  Almost always hits the L1 TLBs; its size/skew shape the LRU-rank
  utility driving Lite's way decisions.
* :func:`wide` — near-uniform reuse over slightly more pages than the
  L1 reach, placed past the hot window.  Produces L1 misses that hit
  the L2 and keeps deep LRU ranks useful (pins Lite at 4 ways).
* :func:`warm` — uniform reuse over a window between the 256 KB L1-4KB
  reach and the 2 MB L2 reach: the dominant miss class at 4 KB pages,
  absorbed by the L1-2MB TLB under THP.
"""

from __future__ import annotations

from .patterns import AccessPattern, Region, UniformRandom, Zipf


def hot(region: Region, window: int, alpha: float, burst: int = 4) -> AccessPattern:
    """Hot tier: skewed reuse inside a small window of a region."""
    return Zipf(
        region.subregion(0, min(window, region.num_pages)), alpha=alpha, burst=burst
    )


def wide(region: Region, window: int, burst: int = 3, offset: int = 256) -> AccessPattern:
    """Wide flat tier: near-uniform reuse over more pages than L1 reach.

    Placed past the hot window of the same region so the two do not
    overlap.  Produces L1 misses that hit the L2 and gives the L1 TLB
    utility at every LRU rank (keeps Lite at 4 ways).
    """
    offset = min(offset, max(region.num_pages - window, 0))
    window = min(window, region.num_pages - offset)
    return Zipf(region.subregion(offset, window), alpha=0.3, burst=burst)


def warm(region: Region, window: int = 304, burst: int = 3, offset: int = 0) -> AccessPattern:
    """Warm tier: uniform reuse over a window within L2 (not L1) reach."""
    window = min(window, region.num_pages - offset)
    return UniformRandom(region.subregion(offset, window), burst=burst)
