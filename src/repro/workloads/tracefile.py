"""Trace file I/O: persist and reload reference streams.

A saved trace is two files: ``<stem>.npy`` holding the int64 page-number
array and ``<stem>.json`` holding the metadata the simulator needs to
interpret it (instructions-per-access ratio, provenance, and the VMA
layout required to rebuild a matching process).  This is the adoption
path for users with real traces: convert a page-reference stream to this
format and simulate it under any configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceMetadata:
    """Sidecar metadata for a saved trace."""

    workload: str
    instructions_per_access: float
    seed: int | None = None
    description: str = ""
    vmas: list[dict] = field(default_factory=list)  # name/start_vpn/num_pages/thp

    def to_json(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "workload": self.workload,
            "instructions_per_access": self.instructions_per_access,
            "seed": self.seed,
            "description": self.description,
            "vmas": self.vmas,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TraceMetadata":
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version!r}")
        return cls(
            workload=payload["workload"],
            instructions_per_access=payload["instructions_per_access"],
            seed=payload.get("seed"),
            description=payload.get("description", ""),
            vmas=payload.get("vmas", []),
        )


def save_trace(stem, trace, metadata: TraceMetadata) -> tuple[Path, Path]:
    """Write ``<stem>.npy`` + ``<stem>.json``; returns both paths."""
    stem = Path(stem)
    pages = np.asarray(trace, dtype=np.int64)
    if pages.ndim != 1 or len(pages) == 0:
        raise ValueError("trace must be a non-empty 1-D sequence")
    if pages.min() < 0:
        raise ValueError("page numbers must be non-negative")
    npy_path = stem.with_suffix(".npy")
    json_path = stem.with_suffix(".json")
    np.save(npy_path, pages)
    json_path.write_text(json.dumps(metadata.to_json(), indent=2) + "\n")
    return npy_path, json_path


def load_trace(stem) -> tuple[np.ndarray, TraceMetadata]:
    """Load a trace saved by :func:`save_trace`."""
    stem = Path(stem)
    npy_path = stem.with_suffix(".npy")
    json_path = stem.with_suffix(".json")
    if not npy_path.exists() or not json_path.exists():
        raise FileNotFoundError(f"missing {npy_path} or {json_path}")
    pages = np.load(npy_path)
    metadata = TraceMetadata.from_json(json.loads(json_path.read_text()))
    return pages, metadata


def export_workload_trace(workload, num_accesses: int, stem, seed: int = 0):
    """Generate a workload's trace and persist it with full metadata."""
    trace = workload.trace(num_accesses, seed=seed)
    regions = workload.regions()
    metadata = TraceMetadata(
        workload=workload.name,
        instructions_per_access=workload.instructions_per_access,
        seed=seed,
        description=workload.description,
        vmas=[
            {
                "name": spec.name,
                "start_vpn": regions[spec.name].start_vpn,
                "num_pages": regions[spec.name].num_pages,
                "thp_eligible": spec.thp_eligible,
            }
            for spec in workload.vma_specs
        ],
    )
    return save_trace(stem, trace, metadata)


def workload_from_metadata(metadata: TraceMetadata):
    """Rebuild a :class:`repro.workloads.base.Workload`-compatible shell.

    The returned object supports ``build_process`` (recreating the VMA
    layout at the recorded addresses) so a loaded trace can be simulated
    under any configuration; it cannot regenerate reference streams.
    """
    from ..workloads.base import Workload

    if not metadata.vmas:
        raise ValueError("metadata carries no VMA layout")

    class _LoadedWorkload(Workload):
        def __init__(self) -> None:
            # Bypass the pattern-based constructor: layout is explicit.
            self.name = metadata.workload
            self.suite = "trace-file"
            self.vma_specs = []
            self.pattern_factory = None
            self.instructions_per_access = metadata.instructions_per_access
            self.tlb_intensive = False
            self.description = metadata.description
            self._layout = metadata.vmas

        def regions(self):
            from ..workloads.patterns import Region

            return {
                vma["name"]: Region(vma["start_vpn"], vma["num_pages"])
                for vma in self._layout
            }

        def build_process(self, policy, physical=None):
            from ..mem.process import Process

            process = Process(physical=physical, policy=policy)
            for vma in self._layout:
                process.mmap(
                    vma["num_pages"],
                    name=vma["name"],
                    at_vpn=vma["start_vpn"],
                    thp_eligible=vma.get("thp_eligible", True),
                )
            return process

        def trace(self, num_accesses, seed=0):
            raise TypeError(
                "trace-file workloads replay saved traces; use load_trace()"
            )

    return _LoadedWorkload()
