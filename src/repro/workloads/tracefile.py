"""Trace file I/O: persist and reload reference streams.

A saved trace is two files: ``<stem>.npy`` holding the int64 page-number
array and ``<stem>.json`` holding the metadata the simulator needs to
interpret it (instructions-per-access ratio, provenance, and the VMA
layout required to rebuild a matching process).  This is the adoption
path for users with real traces: convert a page-reference stream to this
format and simulate it under any configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import TraceError, TraceIOError, UsageError

FORMAT_VERSION = 1


def as_vpn_array(trace) -> np.ndarray:
    """Canonical ``int64`` page-number array for any trace input.

    Accepts a numpy integer array (returned as-is when already
    ``int64``, so no copy is made on the common path) or any 1-D
    sequence of page numbers.  Both simulator engines preprocess traces
    through this instead of eagerly materializing Python lists.
    """
    pages = np.asarray(trace, dtype=np.int64)
    if pages.ndim != 1:
        raise TraceError(f"trace must be 1-D, got shape {pages.shape}")
    return pages


@dataclass(frozen=True)
class TraceMetadata:
    """Sidecar metadata for a saved trace."""

    workload: str
    instructions_per_access: float
    seed: int | None = None
    description: str = ""
    vmas: list[dict] = field(default_factory=list)  # name/start_vpn/num_pages/thp

    def to_json(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "workload": self.workload,
            "instructions_per_access": self.instructions_per_access,
            "seed": self.seed,
            "description": self.description,
            "vmas": self.vmas,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TraceMetadata":
        if not isinstance(payload, dict):
            raise TraceError(f"trace metadata must be a JSON object, got {type(payload).__name__}")
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise TraceError(f"unsupported trace format version {version!r}")
        missing = [key for key in ("workload", "instructions_per_access") if key not in payload]
        if missing:
            raise TraceError(f"trace metadata is missing required keys: {missing}")
        ipa = payload["instructions_per_access"]
        if not isinstance(ipa, (int, float)) or isinstance(ipa, bool) or not ipa > 0:
            raise TraceError(
                f"instructions_per_access must be a positive number, got {ipa!r}"
            )
        vmas = payload.get("vmas", [])
        if not isinstance(vmas, list) or not all(isinstance(vma, dict) for vma in vmas):
            raise TraceError("trace metadata 'vmas' must be a list of objects")
        return cls(
            workload=payload["workload"],
            instructions_per_access=float(ipa),
            seed=payload.get("seed"),
            description=payload.get("description", ""),
            vmas=vmas,
        )


def save_trace(stem, trace, metadata: TraceMetadata) -> tuple[Path, Path]:
    """Write ``<stem>.npy`` + ``<stem>.json``; returns both paths."""
    stem = Path(stem)
    pages = np.asarray(trace, dtype=np.int64)
    if pages.ndim != 1 or len(pages) == 0:
        raise TraceError("trace must be a non-empty 1-D sequence")
    if pages.min() < 0:
        raise TraceError("page numbers must be non-negative")
    if metadata.instructions_per_access <= 0:
        raise TraceError(
            "metadata instructions_per_access must be positive, got "
            f"{metadata.instructions_per_access!r}"
        )
    npy_path = stem.with_suffix(".npy")
    json_path = stem.with_suffix(".json")
    np.save(npy_path, pages)
    json_path.write_text(json.dumps(metadata.to_json(), indent=2) + "\n")
    return npy_path, json_path


def load_trace(stem) -> tuple[np.ndarray, TraceMetadata]:
    """Load and validate a trace saved by :func:`save_trace`.

    Every way the sidecar pair can be broken maps to a structured
    :class:`repro.errors.TraceError`: a missing half of the pair, an
    unparsable ``.npy`` or ``.json``, a wrong dtype or shape, empty or
    negative page numbers, and bad metadata values.
    """
    stem = Path(stem)
    npy_path = stem.with_suffix(".npy")
    json_path = stem.with_suffix(".json")
    missing = [str(path) for path in (npy_path, json_path) if not path.exists()]
    if missing:
        raise TraceIOError(
            f"incomplete trace {stem}: missing sidecar file(s) {', '.join(missing)}"
        )
    try:
        pages = np.load(npy_path)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot read trace array {npy_path}: {exc}") from exc
    if not isinstance(pages, np.ndarray) or pages.ndim != 1:
        raise TraceError(f"{npy_path} must hold a 1-D array")
    if not np.issubdtype(pages.dtype, np.integer):
        raise TraceError(
            f"{npy_path} must hold integer page numbers, got dtype {pages.dtype}"
        )
    if len(pages) == 0:
        raise TraceError(f"{npy_path} holds an empty trace")
    if int(pages.min()) < 0:
        raise TraceError(f"{npy_path} holds negative page numbers")
    try:
        payload = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"cannot parse trace metadata {json_path}: {exc}") from exc
    metadata = TraceMetadata.from_json(payload)
    return pages, metadata


def export_workload_trace(workload, num_accesses: int, stem, seed: int = 0):
    """Generate a workload's trace and persist it with full metadata."""
    trace = workload.trace(num_accesses, seed=seed)
    regions = workload.regions()
    metadata = TraceMetadata(
        workload=workload.name,
        instructions_per_access=workload.instructions_per_access,
        seed=seed,
        description=workload.description,
        vmas=[
            {
                "name": spec.name,
                "start_vpn": regions[spec.name].start_vpn,
                "num_pages": regions[spec.name].num_pages,
                "thp_eligible": spec.thp_eligible,
            }
            for spec in workload.vma_specs
        ],
    )
    return save_trace(stem, trace, metadata)


def workload_from_metadata(metadata: TraceMetadata):
    """Rebuild a :class:`repro.workloads.base.Workload`-compatible shell.

    The returned object supports ``build_process`` (recreating the VMA
    layout at the recorded addresses) so a loaded trace can be simulated
    under any configuration; it cannot regenerate reference streams.
    """
    from ..workloads.base import Workload

    if not metadata.vmas:
        raise TraceError("metadata carries no VMA layout")

    class _LoadedWorkload(Workload):
        def __init__(self) -> None:
            # Bypass the pattern-based constructor: layout is explicit.
            self.name = metadata.workload
            self.suite = "trace-file"
            self.vma_specs = []
            self.pattern_factory = None
            self.instructions_per_access = metadata.instructions_per_access
            self.tlb_intensive = False
            self.description = metadata.description
            self._layout = metadata.vmas

        def regions(self):
            from ..workloads.patterns import Region

            return {
                vma["name"]: Region(vma["start_vpn"], vma["num_pages"])
                for vma in self._layout
            }

        def build_process(self, policy, physical=None):
            from ..mem.process import Process

            process = Process(physical=physical, policy=policy)
            for vma in self._layout:
                process.mmap(
                    vma["num_pages"],
                    name=vma["name"],
                    at_vpn=vma["start_vpn"],
                    thp_eligible=vma.get("thp_eligible", True),
                )
            return process

        def trace(self, num_accesses, seed=0):
            raise UsageError(
                "trace-file workloads replay saved traces; use load_trace()"
            )

    return _LoadedWorkload()
