"""Workload registry: lookup by name, grouping by suite/intensity."""

from __future__ import annotations

from ..errors import UnknownWorkloadError, WorkloadError
from .base import Workload
from .secondary import parsec_other_workloads, spec_other_workloads
from .benchmarks import TLB_INTENSIVE_BUILDERS


def _build_all() -> dict[str, Workload]:
    workloads: dict[str, Workload] = {}
    for builder in TLB_INTENSIVE_BUILDERS:
        workload = builder()
        workloads[workload.name] = workload
    for workload in spec_other_workloads() + parsec_other_workloads():
        if workload.name in workloads:
            raise WorkloadError(f"duplicate workload name {workload.name!r}")
        workloads[workload.name] = workload
    return workloads


_REGISTRY: dict[str, Workload] | None = None


def all_workloads() -> dict[str, Workload]:
    """Every registered workload by name (built lazily, cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_all()
    return _REGISTRY


def get_workload(name: str) -> Workload:
    """Look one workload up by name.

    Raises :class:`repro.errors.UnknownWorkloadError` (a ``KeyError``)
    carrying did-you-mean suggestions and the full known-name list.
    """
    workloads = all_workloads()
    if name not in workloads:
        raise UnknownWorkloadError(name, workloads)
    return workloads[name]


def tlb_intensive_workloads() -> list[Workload]:
    """The paper's main evaluation set, in paper order."""
    return [w for w in all_workloads().values() if w.tlb_intensive]

def other_workloads(suite: str | None = None) -> list[Workload]:
    """The Figure 12 set, optionally filtered by suite."""
    return [
        w
        for w in all_workloads().values()
        if not w.tlb_intensive and (suite is None or w.suite == suite)
    ]
