"""Model of BioBench `mummer` (suffix-tree genome alignment), Table 4:
470 MB.

Paper anchors:

* Alternating *match* phases (suffix-tree descent against the streamed
  reference) and *query* phases (streaming reads probing the second
  tree half) — at most four VMAs live at a time.
* **Table 5** — the paper has mummer at 32.8 % 4-way / 67.2 % 2-way on
  the 4 KB side under TLB_Lite; the 16-page α≈1.2-1.3 hot tiers land
  the model in the same 2-way regime.
* **RMM_Lite** — 94.2 % range hit share in the paper; phase rotation
  keeps the 4-entry L1-range TLB covering here too.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def mummer() -> Workload:
    """Genome alignment: random suffix-tree descent + streaming queries.

    Tree descents rotate between hot subtrees (phases); the reference and
    query sequences stream with high spatial locality.
    """

    def pattern(regions: dict[str, Region]):
        tree_a, tree_b = regions["tree_a"], regions["tree_b"]
        reference = regions["reference"]
        query = regions["query"]
        stack = regions["stack"]
        hot = Mixture(
            [
                (_hot(stack, 16, alpha=1.3, burst=4), 0.6),
                (_hot(tree_a, 16, alpha=1.2, burst=3), 0.4),
            ]
        )
        wide = _wide(stack, 112, burst=3, offset=128)

        def match_phase(offset: int):
            # Suffix-tree descent against the reference stream: at most
            # four VMAs hot (stack, tree_a, reference + wide stack tier).
            return Mixture(
                [
                    (hot, 0.685),
                    (wide, 0.01),
                    (_warm(tree_a, 224, burst=3, offset=offset + 1_000), 0.075),
                    (StridedSet(tree_a, num_pages=256, stride_pages=93, burst=3), 0.035),
                    (SequentialScan(reference, stride_pages=1, burst=32), 0.195),
                ]
            )

        def query_phase(offset: int):
            # Streaming query reads probing the second tree half.
            return Mixture(
                [
                    (hot, 0.685),
                    (wide, 0.01),
                    (UniformRandom(tree_b.subregion(offset, 9_000), burst=4), 0.05),
                    (ShuffledScan(tree_b, burst=3), 0.015),
                    (SequentialScan(query, stride_pages=1, burst=32), 0.24),
                ]
            )

        return Phased(
            [
                (match_phase(0), 0.25),
                (query_phase(0), 0.2),
                (match_phase(12_000), 0.2),
                (query_phase(12_000), 0.15),
                (match_phase(24_000), 0.2),
            ]
        )

    return Workload(
        "mummer",
        "BioBench",
        [
            VMASpec("tree_a", 180),
            VMASpec("tree_b", 150),
            VMASpec("reference", 90),
            VMASpec("query", 44),
            VMASpec("stack", 6, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=2.8,
        tlb_intensive=True,
        description="suffix-tree genome sequence alignment",
    )
