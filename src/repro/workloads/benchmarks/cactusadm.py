"""Model of SPEC 2006 `cactusADM` (numerical relativity), Table 4: 690 MB.

Paper anchors:

* **Figure 2a** — cactusADM is one of the two workloads whose 4 KB
  energy is *page-walk dominated*: the large odd strides (37- and
  129-page) touch a fresh 4 KB page almost every access while the grids
  dwarf the L2 TLB reach.  THP therefore *reduces* its dynamic energy.
* **Table 5** — the tiny, steep stack hot set (18 pages at α = 1.4) is
  why Lite can run the L1-4KB TLB below 4 ways most of the time
  (paper: 53.2 % 1-way), and stencil sweeps give the 2 MB side strong
  MRU locality (paper: 73.5 % 1-way on the 2 MB TLB).
* **Hit shares** — 90.8 % of the paper's TLB_Lite hits come from the
  4 KB TLB: the dominant hot tier lives in the THP-ineligible stack.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def cactusadm() -> Workload:
    """Einstein-equation stencil: strided sweeps with poor 4 KB locality.

    Large odd strides touch a fresh 4 KB page almost every access — page
    walks dominate the 4 KB energy (the paper singles cactusADM out for
    this) — while reusing each 2 MB page many times, so THP converts the
    walks into L1-2MB hits.  The tiny, steep stack hot set is why Lite
    can run the L1-4KB TLB 1-way more than half the time (Table 5).
    """

    def pattern(regions: dict[str, Region]):
        grids = [regions[name] for name in ("grid_a", "grid_b", "grid_c")]
        stack = regions["stack"]
        hot = _hot(stack, 18, alpha=1.4, burst=6)
        sweep = Mixture(
            [
                (hot, 0.813),
                (_warm(grids[0], 256, burst=3, offset=40_000), 0.05),
                (SequentialScan(grids[0], stride_pages=1, burst=8), 0.10),
                (SequentialScan(grids[1], stride_pages=37, burst=2), 0.025),
                (SequentialScan(grids[2], stride_pages=129, burst=1), 0.012),
            ]
        )
        return RepeatingPhases([(sweep, 1.0)], repeats=4)

    return Workload(
        "cactusADM",
        "SPEC 2006",
        [
            VMASpec("grid_a", 228),
            VMASpec("grid_b", 228),
            VMASpec("grid_c", 228),
            VMASpec("stack", 4, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=2.8,
        tlb_intensive=True,
        description="numerical relativity stencil over 3D grids",
    )
