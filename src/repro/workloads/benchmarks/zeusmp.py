"""Model of SPEC 2006 `zeusmp` (astrophysical CFD), Table 4: 530 MB.

Paper anchors:

* Directional stencil sweeps (x: unit stride, y: 129-page stride)
  process one grid at a time — moderate 4 KB MPKI, strong 2 MB-page
  locality, near-complete THP fix.
* **Table 5** — the paper splits zeusmp's 4 KB ways 45.5/43.5/11.1;
  the 20-page α = 1.2 stack tier puts the model at the 4w/2w boundary.
* **RMM_Lite** — one grid live at a time: 100 % range hit share in the
  paper, ~0 L1 misses here.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def zeusmp() -> Workload:
    """Astrophysical CFD: directional sweeps over three 3D grids."""

    def pattern(regions: dict[str, Region]):
        grids = [regions[name] for name in ("grid_u", "grid_v", "grid_w")]
        scratch = regions["scratch"]
        stack = regions["stack"]
        hot = _hot(stack, 20, alpha=1.2, burst=5)
        wide = _wide(stack, 120, burst=3, offset=128)
        warm = _warm(scratch, 288, burst=4)

        def sweep(grid, stride, burst):
            # Directional sweeps process one grid at a time, so at most
            # four VMAs are hot concurrently (Table 5: zeusmp hits the
            # L1-range TLB 100% of the time under RMM_Lite).
            sparse = StridedSet(grid, num_pages=256, stride_pages=93, burst=3)
            return Mixture(
                [
                    (hot, 0.7225),
                    (wide, 0.0075),
                    (warm, 0.045),
                    (sparse, 0.025),
                    (SequentialScan(grid, stride_pages=stride, burst=burst), 0.20),
                ]
            )

        phases = [(sweep(grid, 1, 32), 0.2) for grid in grids]
        phases += [(sweep(grid, 129, 12), 0.134) for grid in grids]
        return RepeatingPhases(phases, repeats=3)

    return Workload(
        "zeusmp",
        "SPEC 2006",
        [
            VMASpec("grid_u", 172),
            VMASpec("grid_v", 172),
            VMASpec("grid_w", 172),
            VMASpec("scratch", 8),
            VMASpec("stack", 6, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=3.0,
        tlb_intensive=True,
        description="computational fluid dynamics on a 3D grid",
    )
