"""Model of SPEC 2006 `astar` (A* path-finding), paper Table 4: 350 MB.

Paper anchors reproduced by this model:

* **Figure 4** — astar needs different L1-4KB sizes across execution:
  the model alternates a tight *search* phase with a broader
  *region-expansion* phase (trace fractions 0.45 / 0.30 / 0.25), each
  working a different graph VMA.
* **Table 5 (TLB_Lite)** — the paper has astar mixed between 4 and
  2 active ways (39.6 % / 57.2 %); the steep, tiny stack/globals hot
  tier (12/6/8-page windows at α = 1.4) puts the model in the same
  marginal regime.
* **Table 5 (RMM_Lite)** — astar has the paper's lowest range-TLB hit
  share (67.6 %): five VMAs are live per phase, more than the 4-entry
  L1-range TLB holds, so a visible share of hits falls back to the
  (range-synthesised) L1-4KB entries.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def astar() -> Workload:
    """A* pathfinding: skewed graph accesses with phase changes.

    Figure 4 shows astar needs different L1-4KB sizes across execution;
    the model alternates a tight search phase with a broader
    region-expansion phase, rotating the warm/cold windows between graph
    VMAs.
    """

    def pattern(regions: dict[str, Region]):
        graph_a, graph_b = regions["graph_a"], regions["graph_b"]
        open_list = regions["open_list"]
        stack, globals_ = regions["stack"], regions["globals"]
        hot = Mixture(
            [
                (_hot(stack, 12, alpha=1.4, burst=4), 0.60),
                (_hot(globals_, 6, alpha=1.4, burst=4), 0.20),
                (_hot(open_list, 8, alpha=1.4, burst=4), 0.20),
            ]
        )
        search = Mixture(
            [
                (hot, 0.719),
                (_wide(stack, 128, burst=3, offset=128), 0.006),
                (_warm(graph_a, 224, burst=3), 0.11),
                (_warm(graph_b, 32, burst=3), 0.05),
                (StridedSet(graph_a, num_pages=256, stride_pages=93, burst=3), 0.04),
                (UniformRandom(graph_a.subregion(0, 9_000), burst=6), 0.035),
            ]
        )
        expand = Mixture(
            [
                (hot, 0.719),
                (_wide(stack, 128, burst=3, offset=128), 0.006),
                (_warm(graph_b, 176, burst=4), 0.15),
                (StridedSet(graph_b, num_pages=256, stride_pages=93, burst=3), 0.04),
                (UniformRandom(graph_b.subregion(8_000, 11_000), burst=6), 0.045),
            ]
        )
        return Phased([(search, 0.45), (expand, 0.30), (search, 0.25)])

    return Workload(
        "astar",
        "SPEC 2006",
        [
            VMASpec("graph_a", 170),
            VMASpec("graph_b", 130),
            VMASpec("open_list", 40),
            VMASpec("globals", 4, thp_eligible=False),
            VMASpec("stack", 6, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=3.2,
        tlb_intensive=True,
        description="A* path-finding over a large map graph",
    )
