"""Per-benchmark models of the paper's TLB-intensive workloads.

One module per benchmark (Table 4), each documenting the paper anchors
its parameters were calibrated against.  The registry consumes
:data:`TLB_INTENSIVE_BUILDERS`; see ``docs/workloads.md`` for the shared
methodology and ``repro.workloads.tiers`` for the tier builders.
"""

from .astar import astar
from .cactusadm import cactusadm
from .canneal import canneal
from .gemsfdtd import gemsfdtd
from .mcf import mcf
from .mummer import mummer
from .omnetpp import omnetpp
from .zeusmp import zeusmp

#: Builders for the paper's TLB-intensive evaluation set, in paper order.
TLB_INTENSIVE_BUILDERS = (
    astar,
    cactusadm,
    gemsfdtd,
    mcf,
    omnetpp,
    zeusmp,
    mummer,
    canneal,
)

__all__ = [
    "astar",
    "cactusadm",
    "gemsfdtd",
    "mcf",
    "omnetpp",
    "zeusmp",
    "mummer",
    "canneal",
    "TLB_INTENSIVE_BUILDERS",
]
