"""Model of SPEC 2006 `mcf` (network simplex), Table 4: 1.7 GB — the
paper's worst case.

Paper anchors:

* **Figure 2/3** — page walks dominate mcf's 4 KB energy (the pointer
  chase over ~1.5 GB of arcs has reuse distance ≈ footprint), and
  Figure 3's walk-locality sweep hurts mcf the most (+91 % in the
  paper).  THP *reduces* its dynamic energy.
* **Phases** — pricing phases chase the arc arrays hard; pivot phases
  sit in the hot tier (intensity alternates 1.45× / 0.55× around the
  mean), giving the Figure 4 phase swings.
* **Table 5** — mcf runs the L1-4KB TLB mostly below 4 ways under
  TLB_Lite (paper: 47.5 % 1-way) thanks to the tiny steep stack tier,
  and 1-way almost always under RMM_Lite.
* A slice of the chase concentrates in a 40 MB window per phase — the
  THP-fixable part; the rest defeats even 2 MB pages, so walks persist
  under THP exactly as the paper reports.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def mcf() -> Workload:
    """Network simplex: pointer chasing across a 1.7 GB arc array.

    The paper's worst case: the cold tier (arc pointer chase) has reuse
    distance ≈ footprint, so every hierarchy level misses and page walks
    dominate both cycles and energy at 4 KB pages.  Phases rotate the
    chase across arc VMAs; a fraction of the chase concentrates in a hot
    arc window, which is the part THP's 64 MB reach can fix.
    """

    def pattern(regions: dict[str, Region]):
        arcs = [regions[name] for name in ("arcs_a", "arcs_b", "arcs_c", "arcs_d")]
        nodes = regions["nodes"]
        stack = regions["stack"]
        hot = _hot(stack, 16, alpha=1.3, burst=4)
        warm = _warm(nodes, 288, burst=3)

        def phase(arc_region, other_region, intensity):
            # Pricing phases chase arcs hard; pivot phases sit in the hot
            # tier — the Figure 4 phase behaviour.  ``intensity`` scales
            # the cold tiers around their mean (preserved across phases).
            chase_window = 0.072 * intensity
            chase_self = 0.052 * intensity
            chase_other = 0.024 * intensity
            cold_total = chase_window + chase_self + chase_other
            return Mixture(
                [
                    (hot, 0.903 - 0.05 - cold_total),
                    (warm, 0.05),
                    (StridedSet(nodes, num_pages=256, stride_pages=93, burst=3), 0.03),
                    (UniformRandom(arc_region.subregion(0, 10_000), burst=2), chase_window),
                    (ShuffledScan(arc_region, burst=2), chase_self),
                    (ShuffledScan(other_region, burst=2), chase_other),
                ]
            )

        intensities = (1.45, 0.55, 1.45, 0.55)
        return Phased(
            [
                (phase(arcs[i], arcs[(i + 1) % 4], intensities[i]), 0.25)
                for i in range(4)
            ]
        )

    return Workload(
        "mcf",
        "SPEC 2006",
        [
            VMASpec("arcs_a", 370),
            VMASpec("arcs_b", 370),
            VMASpec("arcs_c", 370),
            VMASpec("arcs_d", 370),
            VMASpec("nodes", 250),
            VMASpec("stack", 6, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=2.5,
        tlb_intensive=True,
        description="single-depot vehicle scheduling (network simplex)",
    )
