"""Model of SPEC 2006 `omnetpp` (discrete-event network simulation),
Table 4: 165 MB.

Paper anchors:

* **Table 5** — omnetpp keeps **all 4 ways active 100 % of the time**
  under TLB_Lite: the wide, flat stack tier (176 pages at α = 0.3)
  spans far more 4 KB pages than the L1 TLB holds with real utility at
  every LRU rank, so any way-disabling would cost misses.
* **Section 6.1** — omnetpp is one of the two workloads where TLB_PP
  beats RMM_Lite on energy because "the L1-4KB TLB has high
  utilization"; the heavy 4 KB-side traffic reproduces that.
* **RMM_Lite** — the paper's lowest range hit share (49 %) comes from
  five live VMAs; the model splits its heap into three arenas plus the
  event set and stack for the same pressure.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def omnetpp() -> Workload:
    """Discrete-event simulation: skewed heap with a hot set > L1 reach.

    The hot event objects span far more 4 KB pages than the L1-4KB TLB
    holds but carry real utility at every LRU rank — omnetpp is the
    workload where Lite keeps all 4 ways active 100 % of the time
    (Table 5), and where the 4 KB TLB's high utilization limits TLB_PP.
    """

    def pattern(regions: dict[str, Region]):
        heap_a, heap_b, heap_c = regions["heap_a"], regions["heap_b"], regions["heap_c"]
        fes = regions["fes"]
        stack = regions["stack"]
        return Mixture(
            [
                (_hot(stack, 24, alpha=1.0, burst=4), 0.27),
                (_hot(fes, 40, alpha=0.7, burst=3), 0.31),
                (_wide(stack, 128, burst=3, offset=96), 0.21),
                (_warm(heap_a, 128, burst=4), 0.07),
                # Event objects scattered across the heap: a small 4 KB
                # set spanning ~28 huge pages, so the L1-2MB TLB keeps
                # utility at every rank under THP (Table 5: omnetpp holds
                # all 4 ways on both L1-page TLBs).
                (StridedSet(heap_a, num_pages=96, stride_pages=150, burst=4), 0.04),
                (_warm(heap_c, 32, burst=3), 0.08),
                (UniformRandom(heap_b, burst=6), 0.03),
            ]
        )

    return Workload(
        "omnetpp",
        "SPEC 2006",
        [
            VMASpec("heap_a", 60),
            VMASpec("heap_b", 58),
            VMASpec("heap_c", 30),
            VMASpec("fes", 10),
            VMASpec("stack", 7, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=3.5,
        tlb_intensive=True,
        description="ethernet network discrete-event simulation",
    )
