"""Model of PARSEC `canneal` (simulated-annealing chip routing),
Table 4: 780 MB — THP's worst case.

Paper anchors:

* **Figure 2a** — THP *raises* canneal's dynamic energy the most
  (+43 % in the paper): **Table 5 shows 91 % of its TLB_Lite hits are
  4 KB pages**, i.e. its element-by-element allocation defeated THP in
  the paper's measurements.  The model marks the netlist VMAs
  THP-ineligible accordingly, so the L1-2MB TLB burns energy on every
  access while serving almost nothing.
* **Table 5** — canneal pins all 4 ways (100 %) under TLB_Lite: the
  wide flat stack/element tiers give utility at every LRU rank.
* Random element churn over the whole netlist keeps walks alive under
  THP (the 4 KB-page random set exceeds every TLB's reach), so
  canneal also resists THP on the cycle side.
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def canneal() -> Workload:
    """Simulated annealing: uniform random netlist churn.

    Near-zero page locality over the netlist — the workload where THP
    *raises* dynamic energy the most (+43 % in the paper) because both
    L1 TLBs burn energy on every access while the random element stream
    defeats even 2 MB pages; the flat, wide hot tier keeps all 4 ways
    busy (Table 5: 100 % 4-way).
    """

    def pattern(regions: dict[str, Region]):
        netlists = [regions[name] for name in ("netlist_a", "netlist_b", "netlist_c")]
        elements = regions["elements"]
        stack = regions["stack"]
        def anneal_step(region):
            # Each annealing phase churns one netlist partition, keeping
            # four VMAs hot: stack, elements, and the partition (warm and
            # cold tiers share it) — Table 5: canneal's high range share.
            return Mixture(
                [
                    (_hot(stack, 24, alpha=1.0, burst=4), 0.28),
                    (_wide(stack, 72, burst=3, offset=96), 0.13),
                    (_wide(elements, 56, burst=3, offset=64), 0.13),
                    (_hot(elements, 32, alpha=0.8, burst=3), 0.275),
                    (_warm(region, 96, burst=3), 0.14),
                    (UniformRandom(region, burst=4), 0.045),
                ]
            )

        return Phased([(anneal_step(region), 1.0 / 3) for region in netlists])

    return Workload(
        "canneal",
        "PARSEC",
        [
            # canneal's element-by-element allocation defeats THP in the
            # paper's measurements (Table 5: 91 % of its TLB_Lite hits are
            # 4 KB) — the netlist arenas never assemble into huge pages.
            VMASpec("netlist_a", 260, thp_eligible=False),
            VMASpec("netlist_b", 250, thp_eligible=False),
            VMASpec("netlist_c", 250, thp_eligible=False),
            VMASpec("elements", 12),
            VMASpec("stack", 8, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=3.0,
        tlb_intensive=True,
        description="simulated annealing for chip routing",
    )
