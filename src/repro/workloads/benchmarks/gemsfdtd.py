"""Model of SPEC 2006 `GemsFDTD` (finite-difference time-domain EM
solver), Table 4: 860 MB.

Paper anchors:

* **Figure 4** — periodic phase behaviour: each time step sweeps one
  field array at a time (Ex, Ey, Ez, Hx, Hy, Hz), with low-traffic
  boundary-condition updates between sweeps producing the oscillating
  MPKI the figure shows.
* **Table 5** — Gems downsizes both L1-page TLBs substantially in the
  paper (4 KB: 42.9/44.9/12.2 across 4/2/1 ways) and shows the
  largest TLB_Lite energy cut of the suite (−37 %); the 16-page α=1.3
  stack hot tier and the one-array-at-a-time sweeps reproduce that
  downsizing headroom.
* **RMM_Lite** — one field array live at a time keeps the 4-entry
  L1-range TLB nearly perfect (paper: 99.9 % range hit share).
"""

from __future__ import annotations

from ..base import VMASpec, Workload
from ..patterns import (
    Mixture,
    Phased,
    RepeatingPhases,
    Region,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
)
from ..tiers import hot as _hot
from ..tiers import warm as _warm
from ..tiers import wide as _wide


def gemsfdtd() -> Workload:
    """FDTD electromagnetics: alternating E-field / H-field sweeps.

    Each time step streams different array triples, giving the periodic
    phase behaviour Figure 4 shows for GemsFDTD; boundary-condition
    tables form the warm tier.
    """

    def pattern(regions: dict[str, Region]):
        e_fields = [regions[name] for name in ("field_ex", "field_ey", "field_ez")]
        h_fields = [regions[name] for name in ("field_hx", "field_hy", "field_hz")]
        boundary = regions["boundary"]
        stack = regions["stack"]
        hot = _hot(stack, 16, alpha=1.3, burst=5)
        wide = _wide(stack, 128, burst=3, offset=128)
        warm = _warm(boundary, 288, burst=3)

        def step(field):
            # One field array streams at a time (real FDTD updates sweep
            # arrays in sequence), keeping the set of concurrently hot
            # VMAs small — which is what lets the 4-entry L1-range TLB
            # reach its near-perfect hit ratio (Table 5: 99.9% for Gems).
            sparse = StridedSet(field, num_pages=256, stride_pages=93, burst=3)
            return Mixture(
                [
                    (hot, 0.64),
                    (wide, 0.005),
                    (warm, 0.13),
                    (sparse, 0.03),
                    (SequentialScan(field, stride_pages=1, burst=32), 0.195),
                ]
            )

        def boundary_step():
            # Between sweeps the solver updates boundary conditions: the
            # streaming stops and the TLB load collapses — the low-MPKI
            # half of GemsFDTD's Figure 4 oscillation.
            return Mixture([(hot, 0.77), (wide, 0.01), (warm, 0.22)])

        fields = e_fields + h_fields
        phases = []
        for field in fields:
            phases.append((step(field), 0.125))
            phases.append((boundary_step(), 0.0417))
        return RepeatingPhases(phases, repeats=3)

    return Workload(
        "GemsFDTD",
        "SPEC 2006",
        [
            VMASpec("field_ex", 140),
            VMASpec("field_ey", 140),
            VMASpec("field_ez", 140),
            VMASpec("field_hx", 140),
            VMASpec("field_hy", 140),
            VMASpec("field_hz", 140),
            VMASpec("boundary", 14),
            VMASpec("stack", 6, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=3.0,
        tlb_intensive=True,
        description="finite-difference time-domain field solver",
    )
