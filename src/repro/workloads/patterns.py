"""Reference-stream pattern primitives.

The paper's traces come from Pin-instrumented SPEC / PARSEC / BioBench
runs; what the TLB hierarchy observes is only the sequence of virtual page
numbers.  These primitives compose into per-benchmark models
(:mod:`repro.workloads.spec`) that reproduce the statistics that matter to
a TLB — footprint, page-level reuse distances, burstiness (spatial
locality within a page), phase changes — without the applications
themselves.

All generators are vectorised over numpy and deterministic given the
generator's seed.  A ``burst`` parameter models spatial locality: each
sampled page is accessed ``burst`` times in a row, which is the page-level
image of word-granularity streaming through cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True, slots=True)
class Region:
    """A contiguous virtual region in 4 KB pages (usually one VMA)."""

    start_vpn: int
    num_pages: int

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise WorkloadError("region must cover at least one page")

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.num_pages

    def subregion(self, offset_pages: int, num_pages: int) -> "Region":
        """A window inside this region (for hot subsets and phases)."""
        if offset_pages < 0 or offset_pages + num_pages > self.num_pages:
            raise WorkloadError("subregion outside parent region")
        return Region(self.start_vpn + offset_pages, num_pages)


def _apply_burst(pages: np.ndarray, burst: int, n: int) -> np.ndarray:
    """Repeat each sampled page ``burst`` times and trim to ``n``."""
    if burst <= 1:
        return pages[:n]
    return np.repeat(pages, burst)[:n]


def _samples_needed(n: int, burst: int) -> int:
    return -(-n // burst) if burst > 1 else n


class AccessPattern:
    """Base class: generates ``n`` page references from an RNG."""

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Return ``n`` virtual page numbers as an int64 array."""
        raise NotImplementedError


class SequentialScan(AccessPattern):
    """Streaming walk through a region, wrapping around.

    ``stride_pages`` > 1 models plane/column sweeps of stencil codes: the
    walk touches every stride-th page, wrapping modulo the region (use an
    odd stride to cover the whole region across wraps).  ``burst`` is the
    number of consecutive accesses per touched page.
    """

    def __init__(self, region: Region, stride_pages: int = 1, burst: int = 8) -> None:
        if stride_pages < 1 or burst < 1:
            raise WorkloadError("stride_pages and burst must be >= 1")
        self.region = region
        self.stride_pages = stride_pages
        self.burst = burst

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        samples = _samples_needed(n, self.burst)
        start = int(rng.integers(self.region.num_pages))
        linear = start + np.arange(samples, dtype=np.int64) * self.stride_pages
        pages = self.region.start_vpn + linear % self.region.num_pages
        return _apply_burst(pages, self.burst, n)


class ShuffledScan(AccessPattern):
    """Pointer-chase image: the region's pages visited in a fixed random
    order, repeated.

    Every access lands on a "new" page until the whole footprint has been
    visited (reuse distance = footprint), which is what linked-data
    traversals like mcf's network simplex look like to a TLB.
    """

    def __init__(self, region: Region, burst: int = 2) -> None:
        if burst < 1:
            raise WorkloadError("burst must be >= 1")
        self.region = region
        self.burst = burst

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        samples = _samples_needed(n, self.burst)
        order = rng.permutation(self.region.num_pages)
        reps = -(-samples // self.region.num_pages)
        pages = self.region.start_vpn + np.tile(order, reps)[:samples]
        return _apply_burst(pages.astype(np.int64), self.burst, n)


class UniformRandom(AccessPattern):
    """Uniformly random pages over the region (annealing-style churn)."""

    def __init__(self, region: Region, burst: int = 1) -> None:
        if burst < 1:
            raise WorkloadError("burst must be >= 1")
        self.region = region
        self.burst = burst

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        samples = _samples_needed(n, self.burst)
        pages = self.region.start_vpn + rng.integers(
            self.region.num_pages, size=samples, dtype=np.int64
        )
        return _apply_burst(pages, self.burst, n)


class Zipf(AccessPattern):
    """Zipf-distributed page popularity with randomised placement.

    Rank r has probability ∝ 1/r^alpha; ranks are scattered over the
    region by a fixed permutation so the hot set does not collapse into a
    few TLB sets.  Larger ``alpha`` means a tighter hot set.
    """

    def __init__(self, region: Region, alpha: float = 1.0, burst: int = 2) -> None:
        if alpha < 0:
            raise WorkloadError("alpha must be non-negative")
        if burst < 1:
            raise WorkloadError("burst must be >= 1")
        self.region = region
        self.alpha = alpha
        self.burst = burst
        self._cdf: np.ndarray | None = None

    def _cumulative(self) -> np.ndarray:
        if self._cdf is None:
            ranks = np.arange(1, self.region.num_pages + 1, dtype=np.float64)
            weights = ranks**-self.alpha
            self._cdf = np.cumsum(weights) / weights.sum()
        return self._cdf

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        samples = _samples_needed(n, self.burst)
        ranks = np.searchsorted(self._cumulative(), rng.random(samples))
        placement = rng.permutation(self.region.num_pages)
        pages = self.region.start_vpn + placement[ranks].astype(np.int64)
        return _apply_burst(pages, self.burst, n)


class StridedSet(AccessPattern):
    """Uniform reuse over ``num_pages`` pages spaced ``stride_pages`` apart.

    The page-granularity image of a data structure whose hot records are
    scattered across a large allocation (hash buckets, graph adjacency
    headers): *small* at 4 KB granularity — the set fits the L2 TLB — but
    *spanning* ``num_pages * stride_pages`` pages, i.e. dozens of 2 MB
    pages.  Under THP this working set exceeds the 32-entry L1-2MB TLB
    and keeps producing page walks, which is exactly the residual
    overhead RMM's range translations eliminate (the paper's RMM cuts
    TLB-miss cycles ~80 % below THP).
    """

    def __init__(
        self, region: Region, num_pages: int = 256, stride_pages: int = 93, burst: int = 3
    ) -> None:
        if num_pages < 1 or stride_pages < 1 or burst < 1:
            raise WorkloadError("num_pages, stride_pages, and burst must be >= 1")
        span = (num_pages - 1) * stride_pages + 1
        if span > region.num_pages:
            raise WorkloadError(
                f"strided set spans {span} pages but region has {region.num_pages}"
            )
        self.region = region
        self.num_pages = num_pages
        self.stride_pages = stride_pages
        self.burst = burst

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        samples = _samples_needed(n, self.burst)
        indices = rng.integers(self.num_pages, size=samples, dtype=np.int64)
        pages = self.region.start_vpn + indices * self.stride_pages
        return _apply_burst(pages, self.burst, n)


class Mixture(AccessPattern):
    """Per-access interleaving of component patterns by probability.

    Models a program alternating between data structures (heap graph,
    stack frames, globals) at instruction granularity.
    """

    def __init__(self, components: list[tuple[AccessPattern, float]]) -> None:
        if not components:
            raise WorkloadError("mixture needs at least one component")
        total = sum(weight for _, weight in components)
        if total <= 0:
            raise WorkloadError("mixture weights must sum to a positive value")
        self.patterns = [pattern for pattern, _ in components]
        self.weights = np.array([weight / total for _, weight in components])

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        streams = [pattern.generate(rng, n) for pattern in self.patterns]
        choice = rng.choice(len(streams), size=n, p=self.weights)
        out = np.empty(n, dtype=np.int64)
        for index, stream in enumerate(streams):
            positions = np.nonzero(choice == index)[0]
            # Each component's stream is consumed *sequentially* at the
            # positions assigned to it, so burst runs survive the
            # interleaving (they appear with other components' accesses
            # in between, exactly like real interleaved data structures).
            out[positions] = stream[: len(positions)]
        return out


class Phased(AccessPattern):
    """Sequential phases, each a pattern covering a fraction of the trace.

    Reproduces the phase changes Figure 4 relies on (astar, GemsFDTD, mcf
    need different TLB configurations in different execution phases).
    """

    def __init__(self, phases: list[tuple[AccessPattern, float]]) -> None:
        if not phases:
            raise WorkloadError("need at least one phase")
        total = sum(fraction for _, fraction in phases)
        if total <= 0:
            raise WorkloadError("phase fractions must sum to a positive value")
        self.phases = [(pattern, fraction / total) for pattern, fraction in phases]

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        parts = []
        produced = 0
        for index, (pattern, fraction) in enumerate(self.phases):
            length = (
                n - produced
                if index == len(self.phases) - 1
                else min(n - produced, round(n * fraction))
            )
            if length > 0:
                parts.append(pattern.generate(rng, length))
                produced += length
        return np.concatenate(parts) if len(parts) > 1 else parts[0]


class RepeatingPhases(AccessPattern):
    """A phase schedule repeated ``repeats`` times across the trace.

    Useful for periodic phase behaviour (time-step loops in GemsFDTD or
    zeusmp) at a period independent of trace length.
    """

    def __init__(self, phases: list[tuple[AccessPattern, float]], repeats: int) -> None:
        if repeats < 1:
            raise WorkloadError("repeats must be >= 1")
        self._schedule = Phased(phases)
        self.repeats = repeats

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        chunk = -(-n // self.repeats)
        parts = [self._schedule.generate(rng, chunk) for _ in range(self.repeats)]
        return np.concatenate(parts)[:n]
