"""Models of the remaining SPEC 2006 and PARSEC workloads (Figure 12).

These stress the TLB hierarchy far less than the Table 4 set (the paper
defines TLB-intensive as > 5 L1 MPKI at 4 KB pages); the paper reports
similar energy savings for them: TLB_Lite −26 % (SPEC) / −20 % (PARSEC),
RMM_Lite −72 % / −66 % versus THP.

Each is built from the same template — a dominant skewed working set, an
optional streaming component, and a hot stack — parameterised per
benchmark by footprint, working-set tightness, and stream share.  The
template's parameters are what a TLB observes of these programs; per-
benchmark fidelity beyond that is neither available nor needed for
Figure 12's average-level claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import VMASpec, Workload
from .patterns import Mixture, Region, SequentialScan, UniformRandom, Zipf


@dataclass(frozen=True, slots=True)
class LightProfile:
    """Template parameters for a non-TLB-intensive benchmark."""

    name: str
    suite: str
    footprint_mb: float
    alpha: float = 1.2  # skew of the dominant working set (higher = tighter)
    stream_share: float = 0.15  # fraction of accesses that stream sequentially
    random_share: float = 0.0  # fraction of accesses that are uniform random
    burst: int = 4
    instructions_per_access: float = 3.5


def build_light_workload(profile: LightProfile) -> Workload:
    """Instantiate the shared low-MPKI template for one profile."""

    def pattern(regions: dict[str, Region]):
        heap = regions["heap"]
        stack = regions["stack"]
        # These are the workloads the paper classifies as *not* TLB
        # intensive (< 5 L1 MPKI at 4 KB pages), whatever their total
        # footprint: the dominant working sets are windows of the heap.
        #
        # The skew knob also decides how much way-utility survives on the
        # 4 KB side under THP: flat profiles (low alpha) keep a wide
        # THP-ineligible stack tier busy at every LRU rank, so Lite holds
        # 4 ways; tight profiles let Lite halve or quarter the L1-4KB TLB
        # — spreading the per-workload TLB_Lite savings around the
        # paper's −26 % (SPEC) / −20 % (PARSEC) averages.
        if profile.alpha <= 1.05:
            wide_share = 0.07
        elif profile.alpha <= 1.25:
            wide_share = 0.03
        else:
            wide_share = 0.01
        stream_share = profile.stream_share * 0.5
        hot_share = (
            1.0 - 0.24 - wide_share - 0.035 - stream_share - profile.random_share
        )
        components = [
            (Zipf(stack.subregion(0, min(24, stack.num_pages)), alpha=1.2, burst=6), 0.24),
            (
                Zipf(
                    stack.subregion(
                        min(128, stack.num_pages - 112),
                        min(112, stack.num_pages),
                    ),
                    alpha=0.3,
                    burst=3,
                ),
                wide_share,
            ),
            (
                UniformRandom(heap.subregion(0, min(384, heap.num_pages)), burst=4),
                0.035,
            ),
            (
                Zipf(
                    heap.subregion(0, min(1_024, heap.num_pages)),
                    alpha=max(profile.alpha, 1.1),
                    burst=profile.burst,
                ),
                hot_share,
            ),
        ]
        if stream_share > 0:
            components.append(
                (SequentialScan(heap, stride_pages=1, burst=24), stream_share)
            )
        if profile.random_share > 0:
            cold_window = min(8_192, heap.num_pages)
            components.append(
                (UniformRandom(heap.subregion(0, cold_window), burst=3), profile.random_share)
            )
        return Mixture(components)

    return Workload(
        profile.name,
        profile.suite,
        [
            VMASpec("heap", max(profile.footprint_mb - 4, 4)),
            VMASpec("stack", 4, thp_eligible=False),
        ],
        pattern,
        instructions_per_access=profile.instructions_per_access,
        tlb_intensive=False,
        description=f"light template ({profile.suite})",
    )


#: Remaining SPEC 2006 workloads (paper Figure 12, top and middle).
SPEC_OTHER_PROFILES = (
    LightProfile("perlbench", "SPEC 2006", 260, alpha=1.1, stream_share=0.1),
    LightProfile("bzip2", "SPEC 2006", 190, alpha=1.0, stream_share=0.35, burst=8),
    LightProfile("gcc", "SPEC 2006", 230, alpha=0.95, stream_share=0.15),
    LightProfile("bwaves", "SPEC 2006", 430, alpha=1.3, stream_share=0.5, burst=10),
    LightProfile("gamess", "SPEC 2006", 60, alpha=1.4, stream_share=0.1),
    LightProfile("milc", "SPEC 2006", 360, alpha=1.0, stream_share=0.4, burst=6),
    LightProfile("gromacs", "SPEC 2006", 50, alpha=1.3, stream_share=0.2),
    LightProfile("leslie3d", "SPEC 2006", 130, alpha=1.2, stream_share=0.5, burst=8),
    LightProfile("namd", "SPEC 2006", 50, alpha=1.3, stream_share=0.2),
    LightProfile("gobmk", "SPEC 2006", 30, alpha=1.3, stream_share=0.05),
    LightProfile("dealII", "SPEC 2006", 110, alpha=1.15, stream_share=0.2),
    LightProfile("soplex", "SPEC 2006", 250, alpha=1.0, stream_share=0.3, burst=3),
    LightProfile("povray", "SPEC 2006", 10, alpha=1.5, stream_share=0.05),
    LightProfile("calculix", "SPEC 2006", 70, alpha=1.2, stream_share=0.3),
    LightProfile("hmmer", "SPEC 2006", 40, alpha=1.4, stream_share=0.3, burst=12),
    LightProfile("sjeng", "SPEC 2006", 180, alpha=1.1, random_share=0.1),
    LightProfile("libquantum", "SPEC 2006", 100, alpha=1.2, stream_share=0.6, burst=16),
    LightProfile("h264ref", "SPEC 2006", 65, alpha=1.3, stream_share=0.3, burst=10),
    LightProfile("lbm", "SPEC 2006", 410, alpha=1.1, stream_share=0.6, burst=10),
    LightProfile("sphinx3", "SPEC 2006", 45, alpha=1.2, stream_share=0.3),
    LightProfile("xalancbmk", "SPEC 2006", 380, alpha=1.0, random_share=0.08, burst=3),
)

#: Remaining PARSEC workloads (paper Figure 12, bottom).
PARSEC_OTHER_PROFILES = (
    LightProfile("blackscholes", "PARSEC", 615, alpha=1.2, stream_share=0.5, burst=10),
    LightProfile("bodytrack", "PARSEC", 35, alpha=1.3, stream_share=0.2),
    LightProfile("facesim", "PARSEC", 310, alpha=1.1, stream_share=0.35, burst=6),
    LightProfile("ferret", "PARSEC", 65, alpha=1.2, stream_share=0.2),
    LightProfile("fluidanimate", "PARSEC", 210, alpha=1.15, stream_share=0.3, burst=6),
    LightProfile("freqmine", "PARSEC", 990, alpha=1.05, random_share=0.05, burst=3),
    LightProfile("streamcluster", "PARSEC", 110, alpha=1.1, stream_share=0.55, burst=8),
    LightProfile("swaptions", "PARSEC", 6, alpha=1.5, stream_share=0.1),
    LightProfile("vips", "PARSEC", 45, alpha=1.2, stream_share=0.4, burst=10),
    LightProfile("x264", "PARSEC", 160, alpha=1.15, stream_share=0.35, burst=8),
)


def spec_other_workloads() -> list[Workload]:
    """The remaining SPEC 2006 models (Figure 12 top/middle)."""
    return [build_light_workload(profile) for profile in SPEC_OTHER_PROFILES]


def parsec_other_workloads() -> list[Workload]:
    """The remaining PARSEC models (Figure 12 bottom)."""
    return [build_light_workload(profile) for profile in PARSEC_OTHER_PROFILES]
