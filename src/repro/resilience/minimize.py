"""Delta-debugging minimization of failing fuzz cases.

A raw fuzzer failure is a thousands-of-accesses trace under an arbitrary
configuration — useless for triage.  This module shrinks it on two axes
while the *same oracle keeps failing* (same ``(oracle, kind)`` bucket
shape, per :meth:`repro.resilience.fuzz.FuzzFailure.same_bucket_shape`):

* **trace reduction** — the trace is first materialized into literal VPN
  entries (so the shrunk case no longer depends on the generator), then
  shrunk by classic ddmin chunk removal (drop halves, quarters, …) and by
  streak collapsing (run-length encode, collapse repeat-runs to a single
  access, halve run lengths) — the latter is what defeats traces whose
  failure needs a *streak structure* rather than specific entries;
* **config reduction** — field-by-field movement toward defaults: drop
  the OS-event schedule and trace faults, reset hierarchy geometry /
  Lite knobs / sim params to their dataclass defaults, simplify the
  access pattern to a sequential scan, drop extra memory regions.  Each
  step keeps the change only if the failure survives.

Guarantees (documented in docs/robustness.md): the minimized case fails
with the same ``(oracle, kind)`` bucket as the input; every trace entry
left is load-bearing at chunk granularity (1-minimality was attempted
until the evaluation budget ran out); and the final fingerprint is
recomputed from the minimized case's own failure, so the corpus bucket
matches what replay will observe.

The evaluation budget (``max_evaluations``) bounds oracle re-runs, not
wall-clock directly; each evaluation is one full oracle-stack pass over
the candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import FuzzError
from .fuzz import CaseOutcome, FuzzCase, FuzzFailure, build_case, run_case

#: Hierarchy defaults the config-reduction phase moves toward
#: (mirrors :class:`repro.core.params.HierarchyParams`).
_DEFAULT_HIERARCHY = {
    "l1_4kb": [64, 4],
    "l1_2mb": [32, 4],
    "l1_1gb_entries": 4,
    "l2_page": [512, 4],
    "l1_range_entries": 4,
    "l2_range_entries": 32,
}

_DEFAULT_SIM = {
    "fast_forward_fraction": 0.1,
    "timeline_windows": 5,
    "walk_l1_hit_ratio": 1.0,
}


@dataclass(slots=True)
class MinimizationResult:
    """What the minimizer produced for one failing case."""

    case: FuzzCase
    failure: FuzzFailure
    evaluations: int
    original_entries: int
    entries: int


class _Budget:
    """Counts oracle evaluations; exhaustion stops further shrinking."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def charge(self) -> None:
        self.spent += 1


def _still_fails(
    candidate: FuzzCase,
    reference: FuzzFailure,
    budget: _Budget,
    run,
) -> FuzzFailure | None:
    """Run the candidate; return its failure if it stays in the bucket."""
    if budget.exhausted:
        return None
    budget.charge()
    try:
        outcome: CaseOutcome = run(candidate)
    except Exception:  # noqa: BLE001 — a broken candidate is just "no"
        return None
    if outcome.ok:
        return None
    if not outcome.failure.same_bucket_shape(reference):
        return None
    return outcome.failure


# ----------------------------------------------------------------------
# Trace reduction
# ----------------------------------------------------------------------
def _materialize_trace(case: FuzzCase) -> FuzzCase:
    """Pin the generated trace to literal entries (generator-independent)."""
    if case.trace["kind"] == "literal":
        return case
    built = build_case(case)
    return case.with_literal_trace(built.trace)


def _ddmin_chunks(vpns: list[int], attempt, budget: _Budget) -> list[int]:
    """Classic ddmin: remove complement chunks at growing granularity."""
    granularity = 2
    while len(vpns) >= 2 and not budget.exhausted:
        chunk = max(1, len(vpns) // granularity)
        reduced = False
        start = 0
        while start < len(vpns) and not budget.exhausted:
            candidate = vpns[:start] + vpns[start + chunk :]
            if candidate and attempt(candidate):
                vpns = candidate
                reduced = True
                # Same start now addresses the next chunk.
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(vpns), granularity * 2)
    return vpns


def _collapse_streaks(vpns: list[int], attempt, budget: _Budget) -> list[int]:
    """Shrink repeat-runs: collapse to singletons, else halve lengths."""
    def runs(entries: list[int]) -> list[tuple[int, int]]:
        encoded: list[tuple[int, int]] = []
        for vpn in entries:
            if encoded and encoded[-1][0] == vpn:
                encoded[-1] = (vpn, encoded[-1][1] + 1)
            else:
                encoded.append((vpn, 1))
        return encoded

    changed = True
    while changed and not budget.exhausted:
        changed = False
        encoded = runs(vpns)
        # All runs to singletons at once (cheap big win when legal).
        flat = [vpn for vpn, _ in encoded]
        if len(flat) < len(vpns) and attempt(flat):
            vpns = flat
            changed = True
            continue
        # Otherwise halve each multi-entry run individually.
        for index, (vpn, length) in enumerate(encoded):
            if length < 2 or budget.exhausted:
                continue
            shrunk = encoded[: index] + [(vpn, max(1, length // 2))] + encoded[index + 1 :]
            candidate = [v for v, n in shrunk for _ in range(n)]
            if attempt(candidate):
                vpns = candidate
                changed = True
                break
    return vpns


# ----------------------------------------------------------------------
# Config reduction
# ----------------------------------------------------------------------
def _config_reduction_steps(case: FuzzCase):
    """Candidate simplifications, cheapest/most-effective first.

    Each entry is ``(description, transform)``; a transform returns a
    simplified copy or ``None`` when it does not apply to this case.
    """
    def drop_events(c: FuzzCase):
        return replace(c, events=None) if c.events is not None else None

    def drop_faults(c: FuzzCase):
        if c.trace["kind"] == "generated" and c.trace["faults"]:
            return replace(c, trace={**c.trace, "faults": []})
        return None

    def default_hierarchy(c: FuzzCase):
        if c.hierarchy != _DEFAULT_HIERARCHY:
            return replace(c, hierarchy=dict(_DEFAULT_HIERARCHY))
        return None

    def default_sim(c: FuzzCase):
        if c.sim != _DEFAULT_SIM:
            return replace(c, sim=dict(_DEFAULT_SIM))
        return None

    def full_thp(c: FuzzCase):
        return replace(c, thp_coverage=1.0) if c.thp_coverage != 1.0 else None

    def single_region(c: FuzzCase):
        regions = c.workload["regions"]
        if len(regions) <= 1:
            return None
        first = regions[0]
        return replace(
            c,
            workload={
                **c.workload,
                "regions": [first],
                "pattern": {
                    "kind": "sequential",
                    "region": first[0],
                    "stride_pages": 1,
                    "burst": 1,
                },
            },
        )

    def plain_pattern(c: FuzzCase):
        pattern = c.workload["pattern"]
        region = c.workload["regions"][0][0]
        plain = {"kind": "sequential", "region": region, "stride_pages": 1, "burst": 1}
        if pattern != plain:
            return replace(c, workload={**c.workload, "pattern": plain})
        return None

    def coarse_digests(c: FuzzCase):
        return replace(c, digest_every=1) if c.digest_every != 1 else None

    return [
        ("drop OS events", drop_events),
        ("drop trace faults", drop_faults),
        ("default hierarchy geometry", default_hierarchy),
        ("default sim params", default_sim),
        ("full THP coverage", full_thp),
        ("single region", single_region),
        ("sequential pattern", plain_pattern),
        ("digest every boundary", coarse_digests),
    ]


def _reduce_lite(case: FuzzCase, attempt_case, budget: _Budget) -> FuzzCase:
    """Move Lite knobs one field at a time toward quiet defaults."""
    if case.lite is None:
        return case
    quiet = {
        "epsilon_relative": 0.125,
        "epsilon_absolute": 0.1,
        "reactivate_probability": 0.0,
        "min_ways": 1,
        "seed": 0,
    }
    for key, value in quiet.items():
        if budget.exhausted or case.lite.get(key) == value:
            continue
        candidate = replace(case, lite={**case.lite, key: value})
        accepted = attempt_case(candidate)
        if accepted is not None:
            case = accepted
    return case


def minimize_case(
    case: FuzzCase,
    failure: FuzzFailure,
    max_evaluations: int = 160,
    run=run_case,
) -> MinimizationResult:
    """Shrink a failing case while its ``(oracle, kind)`` bucket holds.

    ``run`` is injectable for tests (and must have :func:`run_case`'s
    contract).  The returned failure is the *minimized case's own* —
    its fingerprint is what the corpus buckets and replay checks.
    """
    if failure is None:
        raise FuzzError("minimize_case needs the failure the case produced")
    budget = _Budget(max_evaluations)
    original_entries = case.trace_entries()

    # Restrict the oracle stack to the failing oracle (taxonomy escapes
    # can surface from any run, so keep the full stack for those).
    if failure.oracle in case.oracles and failure.oracle != "taxonomy":
        focused = replace(case, oracles=(failure.oracle,))
        focused_failure = _still_fails(focused, failure, budget, run)
        if focused_failure is not None:
            case, failure = focused, focused_failure

    # Pin the trace to literal entries so shrinking operates on data.
    try:
        literal = _materialize_trace(case)
    except Exception:  # noqa: BLE001 — keep the generated form if broken
        literal = None
    if literal is not None and literal is not case:
        literal_failure = _still_fails(literal, failure, budget, run)
        if literal_failure is not None:
            case, failure = literal, literal_failure

    best = {"case": case, "failure": failure}

    def attempt_vpns(vpns: list[int]) -> bool:
        candidate = best["case"].with_literal_trace(vpns)
        candidate_failure = _still_fails(candidate, best["failure"], budget, run)
        if candidate_failure is None:
            return False
        best["case"], best["failure"] = candidate, candidate_failure
        return True

    def attempt_case(candidate: FuzzCase) -> FuzzCase | None:
        candidate_failure = _still_fails(candidate, best["failure"], budget, run)
        if candidate_failure is None:
            return None
        best["case"], best["failure"] = candidate, candidate_failure
        return candidate

    if best["case"].trace["kind"] == "literal":
        vpns = [int(v) for v in best["case"].trace["vpns"]]
        vpns = _ddmin_chunks(vpns, attempt_vpns, budget)
        vpns = _collapse_streaks(vpns, attempt_vpns, budget)

    for _description, transform in _config_reduction_steps(best["case"]):
        if budget.exhausted:
            break
        candidate = transform(best["case"])
        if candidate is not None:
            attempt_case(candidate)
    _reduce_lite(best["case"], attempt_case, budget)

    # Config simplification can unlock further trace shrinking.
    if best["case"].trace["kind"] == "literal" and not budget.exhausted:
        vpns = [int(v) for v in best["case"].trace["vpns"]]
        vpns = _ddmin_chunks(vpns, attempt_vpns, budget)
        _collapse_streaks(vpns, attempt_vpns, budget)

    return MinimizationResult(
        case=best["case"],
        failure=best["failure"],
        evaluations=budget.spent,
        original_entries=original_entries,
        entries=best["case"].trace_entries(),
    )
