"""Crash-consistent simulation snapshots and golden state hashing.

Built on the ``state_dict()`` / ``load_state_dict()`` protocol
(:mod:`repro.stateful`): every stateful component of a running simulation
serializes to pure JSON, so a *snapshot* — the combined component states
plus the simulator's own loop state — is a single JSON document.  This
module provides:

* **snapshot files** — versioned, sha256-checksummed, written atomically
  (temp file + rename, :mod:`repro.ioutils`), so a crash mid-write can
  never leave a corrupt or torn snapshot behind;
* **:class:`SimulationCheckpointer`** — a checkpoint hook for
  :meth:`repro.core.simulator.Simulator.run` that persists a snapshot
  every N interval boundaries and can simultaneously record a golden
  *digest trail* (a per-component sha256 per boundary);
* **:class:`DigestTrail`** and :func:`first_divergence` — the comparison
  side: given two trails (two seeds, or fresh vs. resumed), binary-search
  the first boundary and the first component whose digests diverge.

Because identical states encode to identical canonical JSON, two runs
agree at a boundary *iff* their digests agree — the divergence search
never needs the full states, only the trails.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CheckpointError
from ..ioutils import atomic_write_json
from ..observability import Observability
from ..stateful import require

#: Bump when the snapshot layout changes incompatibly.  Policy: loading
#: rejects any other version outright (snapshots are short-lived restart
#: aids, not archival artifacts — see docs/robustness.md).
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Canonical encoding and digests
# ----------------------------------------------------------------------
def canonical_json(state) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_digest(state) -> str:
    """sha256 hex digest of a pure-JSON state."""
    return hashlib.sha256(canonical_json(state).encode()).hexdigest()


def component_digests(state: dict) -> dict[str, str]:
    """Per-component digests of a simulation state, keyed by dotted path.

    The hierarchy's structures get one digest each (``hierarchy.structures.
    L1-4KB`` …) so a divergence points at a single TLB, not just "the
    hierarchy"; every other top-level component digests whole.
    """
    digests: dict[str, str] = {}
    for name, value in state.items():
        if name == "hierarchy" and isinstance(value, dict):
            for sub, sub_value in value.items():
                if sub == "structures":
                    for structure, structure_state in sub_value.items():
                        digests[f"hierarchy.structures.{structure}"] = state_digest(
                            structure_state
                        )
                else:
                    digests[f"hierarchy.{sub}"] = state_digest(sub_value)
        else:
            digests[name] = state_digest(value)
    return digests


# ----------------------------------------------------------------------
# Whole-simulation state
# ----------------------------------------------------------------------
def simulation_state(simulator, process, loop_state: dict) -> dict:
    """Combined pure-JSON state of one running simulation cell."""
    organization = simulator.organization
    state = {
        "hierarchy": organization.hierarchy.state_dict(),
        "process": process.state_dict(),
        "loop": loop_state,
    }
    if organization.lite is not None:
        state["lite"] = organization.lite.state_dict()
    return state


def restore_simulation(simulator, process, state: dict) -> dict:
    """Restore component state in place; returns the loop state.

    The caller passes the returned loop state as ``resume_state`` to
    :meth:`repro.core.simulator.Simulator.run` on the same (canonically
    rebuilt) simulator.
    """
    organization = simulator.organization
    require(
        ("lite" in state) == (organization.lite is not None),
        "snapshot and organization disagree about a Lite controller",
    )
    organization.hierarchy.load_state_dict(state["hierarchy"])
    process.load_state_dict(state["process"])
    if organization.lite is not None:
        organization.lite.load_state_dict(state["lite"])
    return state["loop"]


# ----------------------------------------------------------------------
# Snapshot files
# ----------------------------------------------------------------------
def write_snapshot(path, state: dict, meta: dict | None = None) -> Path:
    """Atomically write a versioned, checksummed snapshot file."""
    payload_text = canonical_json(state)
    envelope = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "meta": dict(meta or {}),
        "sha256": hashlib.sha256(payload_text.encode()).hexdigest(),
        "payload": state,
    }
    return atomic_write_json(path, envelope)


def read_snapshot(path) -> tuple[dict, dict]:
    """Read and verify a snapshot file; returns ``(state, meta)``.

    Raises :class:`repro.errors.CheckpointError` on a missing file, an
    unparseable envelope, a version mismatch, or a checksum mismatch.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise CheckpointError(f"no snapshot at {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise CheckpointError(f"{path} is not a snapshot envelope")
    version = envelope.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: snapshot version {version!r} unsupported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    state = envelope["payload"]
    digest = hashlib.sha256(canonical_json(state).encode()).hexdigest()
    if digest != envelope.get("sha256"):
        raise CheckpointError(f"{path}: checksum mismatch (corrupt snapshot)")
    return state, envelope.get("meta", {})


# ----------------------------------------------------------------------
# Digest trails and divergence bisection
# ----------------------------------------------------------------------
@dataclass(slots=True)
class DigestTrail:
    """Per-boundary component digests of one run.

    ``boundaries`` holds the boundary numbers at which digests were
    recorded (ascending); ``digests[i]`` is the component→sha256 map at
    ``boundaries[i]``.
    """

    boundaries: list[int] = field(default_factory=list)
    digests: list[dict[str, str]] = field(default_factory=list)

    def record(self, boundary: int, digest_map: dict[str, str]) -> None:
        self.boundaries.append(boundary)
        self.digests.append(digest_map)

    def to_json(self) -> dict:
        return {"boundaries": list(self.boundaries), "digests": list(self.digests)}

    @classmethod
    def from_json(cls, data: dict) -> "DigestTrail":
        return cls(boundaries=list(data["boundaries"]), digests=list(data["digests"]))


@dataclass(frozen=True, slots=True)
class Divergence:
    """First point where two digest trails disagree."""

    boundary: int
    components: tuple[str, ...]  # diverging components at that boundary
    index: int  # position within the trails


def _diverging_components(a: dict[str, str], b: dict[str, str]) -> tuple[str, ...]:
    keys = sorted(set(a) | set(b))
    return tuple(key for key in keys if a.get(key) != b.get(key))


def first_divergence(trail_a: DigestTrail, trail_b: DigestTrail) -> Divergence | None:
    """First boundary and components where two trails diverge, or ``None``.

    Uses binary search: simulation state is cumulative, so once two runs
    diverge they stay diverged with overwhelming likelihood.  Because a
    later *coincidental* re-convergence would break that monotonicity
    assumption, the result is verified and falls back to a linear scan
    when the bisection landed wrong.
    """
    require(
        trail_a.boundaries == trail_b.boundaries,
        "digest trails cover different boundaries "
        f"({len(trail_a.boundaries)} vs {len(trail_b.boundaries)} records)",
    )
    count = len(trail_a.boundaries)
    if count == 0 or trail_a.digests[-1] == trail_b.digests[-1]:
        # Identical final state: by cumulativity the runs agree throughout;
        # verify cheaply and linear-scan if a transient blip exists.
        for index in range(count):
            if trail_a.digests[index] != trail_b.digests[index]:
                return _divergence_at(trail_a, trail_b, index)
        return None
    lo, hi = 0, count - 1  # invariant: digests differ at hi
    while lo < hi:
        mid = (lo + hi) // 2
        if trail_a.digests[mid] == trail_b.digests[mid]:
            lo = mid + 1
        else:
            hi = mid
    # Verify the bisection (guards against non-monotone divergence).
    if lo > 0 and trail_a.digests[lo - 1] != trail_b.digests[lo - 1]:
        for index in range(lo):
            if trail_a.digests[index] != trail_b.digests[index]:
                return _divergence_at(trail_a, trail_b, index)
    return _divergence_at(trail_a, trail_b, lo)


def _divergence_at(trail_a: DigestTrail, trail_b: DigestTrail, index: int) -> Divergence:
    return Divergence(
        boundary=trail_a.boundaries[index],
        components=_diverging_components(trail_a.digests[index], trail_b.digests[index]),
        index=index,
    )


# ----------------------------------------------------------------------
# The checkpoint hook
# ----------------------------------------------------------------------
class AbortSimulation(Exception):
    """Raised by the ``abort_after`` test hook to simulate a kill."""


class SimulationCheckpointer:
    """Checkpoint hook: snapshot every N boundaries, optionally digest all.

    Parameters
    ----------
    simulator / process:
        The running cell's simulator and process (state sources).
    path:
        Snapshot file destination; ``None`` disables persistence (digest
        recording still works).
    checkpoint_every:
        Persist a snapshot at every Nth boundary (and the snapshot of the
        last boundary seen stays on disk — the resume point).
    digest_every:
        Record component digests into :attr:`trail` every Nth boundary
        (``0`` disables digest recording).
    meta:
        Extra identification written into the snapshot envelope.
    abort_after:
        Test hook: raise :class:`AbortSimulation` after this many
        boundaries, *after* any snapshot/digest work — simulating a run
        killed mid-cell with a checkpoint on disk.
    on_boundary:
        Optional callable invoked with the loop state at *every*
        boundary, after any snapshot/digest work.  The process
        supervisor's workers use it to pump heartbeats, honour graceful
        shutdown, and let the chaos policy strike — all without paying
        for a snapshot at boundaries that don't want one.
    observability:
        Optional telemetry hub (:class:`repro.observability.
        Observability`).  Resolved at construction — a disabled hub
        stores as ``None``, the bare path.  Enabled, the checkpointer
        counts snapshots/digests under the ``checkpoint.`` scope and
        wraps snapshot/digest work in a ``checkpoint`` span.  The
        digests and snapshots themselves are never touched.
    """

    def __init__(
        self,
        simulator,
        process,
        path=None,
        checkpoint_every: int = 1,
        digest_every: int = 0,
        meta: dict | None = None,
        abort_after: int | None = None,
        on_boundary=None,
        observability=None,
    ) -> None:
        if checkpoint_every < 1:
            raise CheckpointError("checkpoint_every must be >= 1")
        self.simulator = simulator
        self.process = process
        self.path = Path(path) if path is not None else None
        self.checkpoint_every = checkpoint_every
        self.digest_every = digest_every
        self.meta = dict(meta or {})
        self.abort_after = abort_after
        self.on_boundary = on_boundary
        self.trail = DigestTrail()
        self.boundaries_seen = 0
        self.snapshots_written = 0
        self.observability = Observability.resolve(observability)
        if self.observability is not None:
            scope = self.observability.registry.scope("checkpoint")
            self._snapshot_counter = scope.counter(
                "snapshots", "simulation snapshots persisted"
            )
            self._digest_counter = scope.counter(
                "digests", "per-component digest records taken"
            )
            self._checkpoint_seconds = scope.histogram(
                "seconds", "wall time per snapshot/digest boundary"
            )

    def __call__(self, loop_state: dict) -> None:
        self.boundaries_seen += 1
        boundary = loop_state["boundary"]
        want_snapshot = (
            self.path is not None and boundary % self.checkpoint_every == 0
        )
        want_digest = self.digest_every and boundary % self.digest_every == 0
        if want_snapshot or want_digest:
            obs = self.observability
            span = (
                obs.begin("checkpoint", boundary=boundary)
                if obs is not None
                else None
            )
            state = simulation_state(self.simulator, self.process, loop_state)
            if want_digest:
                self.trail.record(boundary, component_digests(state))
            if want_snapshot:
                write_snapshot(self.path, state, meta={**self.meta, "boundary": boundary})
                self.snapshots_written += 1
            if span is not None:
                obs.end(span)
                self._checkpoint_seconds.observe(span.duration or 0.0)
                if want_digest:
                    self._digest_counter.inc()
                if want_snapshot:
                    self._snapshot_counter.inc()
        if self.on_boundary is not None:
            self.on_boundary(loop_state)
        if self.abort_after is not None and self.boundaries_seen >= self.abort_after:
            raise AbortSimulation(
                f"aborted after {self.boundaries_seen} boundaries (test kill)"
            )

    def snapshot_now(self, loop_state: dict) -> bool:
        """Persist a snapshot at this boundary regardless of cadence.

        The graceful-shutdown path uses this so a SIGTERM'd worker leaves
        a resume point at the boundary it drained to, even when that
        boundary is off the ``checkpoint_every`` grid.  Returns whether a
        snapshot was written (``False`` when persistence is disabled).
        """
        if self.path is None:
            return False
        state = simulation_state(self.simulator, self.process, loop_state)
        write_snapshot(
            self.path, state, meta={**self.meta, "boundary": loop_state["boundary"]}
        )
        self.snapshots_written += 1
        if self.observability is not None:
            self._snapshot_counter.inc()
        return True


def claim_snapshot(path) -> dict | None:
    """Validate and load a snapshot for worker handoff, or clear it.

    The process supervisor's retry path hands a crashed cell's surviving
    snapshot to the next worker so the cell restarts mid-trace instead of
    from access 0.  A worker must never commit to a snapshot it cannot
    restore — the very crash being retried may have torn component state
    into the file's payload — so this helper front-loads the validation:

    * no file → ``None`` (start clean);
    * a readable, checksum-valid snapshot → its state dict;
    * a corrupt/incompatible snapshot → **deleted** (with a warning) and
      ``None``, so it cannot poison this or any later attempt.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        state, _meta = read_snapshot(path)
    except CheckpointError as exc:
        warnings.warn(
            f"discarding unusable snapshot {path}: {exc} "
            "(the cell restarts from access 0)",
            stacklevel=2,
        )
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return state


def resume_from_snapshot(prepared, path) -> dict:
    """Load a snapshot into a freshly prepared run; returns the loop state.

    ``prepared`` is a :class:`repro.analysis.experiments.PreparedRun`
    rebuilt through the canonical pipeline for the *same* workload,
    configuration, and settings that produced the snapshot — the traces
    and initial layout are seed-deterministic, so restoring the mutable
    state onto it reproduces the interrupted run exactly.
    """
    state, _meta = read_snapshot(path)
    return restore_simulation(prepared.simulator, prepared.process, state)
