"""Process-isolated sweep execution: workers, heartbeats, quarantine.

The in-process sweep runner (:mod:`repro.resilience.sweep`) isolates
cells from each other's *exceptions*, but it cannot isolate them from
each other's *processes*: a hung cell keeps burning its CPU after the
daemon-thread "timeout" abandons it, a native crash (OOM kill,
``sys.exit``, interpreter abort) takes the whole sweep down, and nothing
runs in parallel.  This module is the execution engine that closes those
gaps — every cell runs in its own OS process under a supervisor loop:

* **N parallel workers** (``workers``; 1 preserves the serial journal
  order and hence the byte-identity contract with in-process runs);
* **hard SIGKILL timeouts** — a cell over its wall-clock budget is
  killed, not abandoned, actually reclaiming the core;
* **heartbeats** — workers pump a heartbeat pipe at every drain-loop
  boundary (the same boundaries the checkpoint hook fires at), so a hang
  is detected as soon as the beat stops, before the timeout expires;
* **memory budgets** — ``resource.setrlimit`` address-space caps (the
  enforceable proxy for an RSS budget; Linux does not enforce
  ``RLIMIT_RSS``) turn a runaway cell into a structured ``oom`` status
  instead of a machine-wide OOM incident;
* **crash quarantine** — a cell that crashes its worker
  ``quarantine_after`` times (tallied across ``--resume`` cycles in a
  sidecar ledger) is journaled as quarantined and skipped thereafter;
* **graceful shutdown** — SIGINT/SIGTERM stops dispatch, SIGTERMs the
  in-flight workers, which drain to the next boundary, flush a mid-cell
  snapshot, and report ``interrupted``; the journal is left
  byte-identically resumable.

Crash-retried cells get a **snapshot handoff**: the next worker claims
the crashed attempt's last mid-cell snapshot (validated, and discarded
if unusable — see :func:`repro.resilience.checkpoint.claim_snapshot`)
and restarts mid-trace instead of from access 0.  Checkpoint determinism
(`tests/test_checkpoint.py`) guarantees the handed-off cell still
produces a byte-identical result row.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import signal
import time
import warnings
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path

from ..core.organizations import CONFIG_NAMES
from ..errors import (
    MemoryBudgetError,
    QuarantinedCellError,
    SweepError,
    WorkerCrashError,
)
from .faults import ChaosPolicy
from .sweep import (
    CrashLedger,
    JournalState,
    SweepCell,
    SweepJournal,
    SweepReport,
    _cell_checkpoint_path,
    _cell_key,
    _fingerprint,
    result_row,
)

#: Supervisor poll cadence — bounds how stale heartbeat/deadline checks
#: can be.  Small enough that hang detection adds negligible latency,
#: large enough that a mostly-idle supervisor costs ~nothing.
_POLL_INTERVAL_S = 0.05

#: How long a worker that already sent its result may take to exit
#: before the supervisor kills it anyway.
_EXIT_GRACE_S = 5.0


class _GracefulExit(Exception):
    """Raised inside a worker at the first boundary after SIGTERM."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerTask:
    """Everything one worker needs, as plain picklable data.

    Workloads travel by registry name and settings as a kwargs dict so
    the spec survives any multiprocessing start method (``fork`` and
    ``spawn`` alike) and can be logged verbatim when debugging a
    quarantined cell.
    """

    workload: str
    configuration: str
    attempt: int
    settings: dict
    audit: bool = False
    checkpoint_path: str | None = None
    checkpoint_every: int | None = None
    allow_snapshot_resume: bool = False
    memory_limit_mb: int | None = None
    chaos: dict | None = None
    metrics: bool = False


def _apply_memory_limit(limit_mb: int | None) -> None:
    """Cap this process's address space (the enforceable RSS proxy).

    Linux accepts but does not enforce ``RLIMIT_RSS``, so the budget is
    applied to ``RLIMIT_AS``: any allocation pushing the worker past the
    cap fails with :class:`MemoryError`, which the worker marshals into
    the structured ``oom`` status.  Best-effort on platforms without
    ``resource`` (Windows) — the supervisor still works, budgets don't.
    """
    if limit_mb is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover — POSIX-only guard
        warnings.warn(
            "resource.setrlimit is unavailable on this platform; "
            "memory_limit_mb is not enforced",
            stacklevel=2,
        )
        return
    limit = int(limit_mb) << 20
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError) as exc:  # pragma: no cover — kernel policy
        warnings.warn(f"cannot apply memory budget ({exc})", stacklevel=2)


def _worker_main(task: WorkerTask, result_conn, heartbeat_conn) -> None:
    """Entry point of one worker process: simulate one cell, report once.

    The worker owns its own signal disposition: SIGINT is ignored (a
    terminal Ctrl-C belongs to the supervisor, which orchestrates the
    drain), SIGTERM requests a graceful exit honoured at the next
    drain-loop boundary — after flushing a mid-cell snapshot when
    checkpointing is on, so the interrupted cell resumes mid-trace.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shutdown = {"requested": False}

    def _on_sigterm(_signum, _frame) -> None:
        shutdown["requested"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        row, metrics = _simulate_cell(task, heartbeat_conn, shutdown)
        message = {"status": "ok", "row": row}
        if metrics is not None:
            message["metrics"] = metrics
        result_conn.send(message)
    except _GracefulExit as exc:
        result_conn.send({"status": "interrupted", "error": str(exc)})
    except MemoryError as exc:
        # The budget breach itself, or a chaos-simulated one.  Allocation
        # headroom exists again once the failed frame unwinds, so this
        # structured report is reliable in practice.
        budget = (
            f"{task.memory_limit_mb} MB"
            if task.memory_limit_mb is not None
            else "chaos-injected"
        )
        error = MemoryBudgetError(f"memory budget exhausted ({budget}): {exc}")
        result_conn.send({"status": "oom", "error": f"{type(error).__name__}: {error}"})
    except BaseException as exc:  # noqa: BLE001 — marshalled to supervisor
        result_conn.send(
            {"status": "failed", "error": f"{type(exc).__name__}: {exc}"}
        )
    finally:
        result_conn.close()
        heartbeat_conn.close()


def _simulate_cell(task: WorkerTask, heartbeat_conn, shutdown: dict) -> tuple:
    """Run one cell inside the worker; returns (journal row, metrics|None)."""
    # Imports kept local so a spawn-start worker pays them here, not at
    # module import inside the supervisor's hot loop.
    from ..analysis.experiments import ExperimentSettings, prepare_run
    from ..workloads.registry import get_workload
    from .auditor import InvariantAuditor
    from .checkpoint import (
        SimulationCheckpointer,
        claim_snapshot,
        restore_simulation,
    )
    from ..errors import CheckpointError

    _apply_memory_limit(task.memory_limit_mb)
    workload = get_workload(task.workload)
    settings = ExperimentSettings(**task.settings)
    key = _cell_key(task.workload, task.configuration)
    chaos = ChaosPolicy.from_json(task.chaos) if task.chaos else None
    chaos_rng = chaos.rng(key, task.attempt) if chaos else None

    auditor = InvariantAuditor() if task.audit else None
    observability = None
    if task.metrics:
        from ..observability import Observability

        # Each worker owns its own hub; snapshots (plain dicts) cross the
        # heartbeat and result pipes, never the hub object itself.
        observability = Observability()
    prepared = prepare_run(
        workload,
        task.configuration,
        settings,
        auditor=auditor,
        on_fault="record",
        observability=observability,
    )
    checkpoint_path = (
        Path(task.checkpoint_path) if task.checkpoint_path is not None else None
    )
    resume_state = None
    if task.allow_snapshot_resume and checkpoint_path is not None:
        state = claim_snapshot(checkpoint_path)
        if state is not None:
            try:
                resume_state = restore_simulation(
                    prepared.simulator, prepared.process, state
                )
            except CheckpointError as exc:
                # A snapshot that reads but won't restore must not poison
                # every retry: discard it and start the cell clean.
                warnings.warn(
                    f"snapshot for {key} failed to restore ({exc}); "
                    "starting the cell from access 0",
                    stacklevel=2,
                )
                checkpoint_path.unlink(missing_ok=True)
                resume_state = None

    hook_box: list = []

    def on_boundary(loop_state: dict) -> None:
        beat = {"boundary": loop_state["boundary"], "ts": time.monotonic()}
        if observability is not None:
            # Cumulative snapshot: if the worker crashes later, the
            # supervisor keeps the last beat's metrics as best-effort.
            beat["metrics"] = observability.snapshot()
        try:
            heartbeat_conn.send(beat)
        except (BrokenPipeError, OSError):
            pass  # supervisor died; finish the cell, the result send will tell
        if chaos is not None:
            chaos.strike(chaos_rng, loop_state["boundary"], task.attempt)
        if shutdown["requested"]:
            if hook_box:
                hook_box[0].snapshot_now(loop_state)
            raise _GracefulExit(
                f"SIGTERM honoured at boundary {loop_state['boundary']}"
            )

    # The checkpointer doubles as the heartbeat pump: with no
    # checkpoint_path it writes nothing but still fires on_boundary at
    # every drain-loop boundary.
    hook = SimulationCheckpointer(
        prepared.simulator,
        prepared.process,
        path=checkpoint_path,
        checkpoint_every=task.checkpoint_every or 1,
        meta={"workload": task.workload, "configuration": task.configuration},
        on_boundary=on_boundary,
        observability=observability,
    )
    hook_box.append(hook)
    result = prepared.run(checkpoint_hook=hook, resume_state=resume_state)
    metrics = observability.snapshot() if observability is not None else None
    return result_row(result), metrics


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _PendingCell:
    """One cell waiting for a worker slot."""

    workload: str
    configuration: str
    key: str
    attempt: int = 0
    app_failures: int = 0  # in-worker exceptions (retries budget)
    not_before: float = 0.0
    backoff_s: float = 0.0
    last_error: str | None = None


@dataclass(slots=True)
class _Inflight:
    """One live worker and everything needed to supervise it."""

    process: object
    pending: _PendingCell
    result_recv: object
    heartbeat_recv: object
    started: float
    deadline: float | None
    last_heartbeat: float
    result: dict | None = None
    killed_for: str | None = None  # "timeout" | "hang" | "shutdown"
    result_seen_at: float | None = None
    last_metrics: dict | None = None  # cumulative snapshot off the heartbeat


class _ShutdownState:
    """Mutable flag set by the supervisor's SIGINT/SIGTERM handlers."""

    def __init__(self) -> None:
        self.requested = False
        self.signalled = False
        self.deadline: float | None = None
        self.signum: int | None = None

    def handler(self, signum, _frame) -> None:
        self.requested = True
        self.signum = signum


def _mp_context():
    """Fork where the platform has it (cheap, inherits imports); else default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_supervised_sweep(
    workloads,
    config_names: tuple[str, ...] = CONFIG_NAMES,
    settings=None,
    journal_path=None,
    resume: bool = False,
    retries: int = 1,
    backoff_s: float = 0.05,
    cell_timeout_s: float | None = None,
    audit: bool = False,
    max_cells: int | None = None,
    progress=None,
    checkpoint_every: int | None = None,
    workers: int = 1,
    quarantine_after: int = 3,
    heartbeat_timeout_s: float | None = None,
    memory_limit_mb: int | None = None,
    chaos: ChaosPolicy | None = None,
    graceful_timeout_s: float = 30.0,
    metrics: bool = False,
) -> SweepReport:
    """Run the matrix with every cell in its own supervised OS process.

    Accepts the :func:`repro.resilience.sweep.run_resilient_sweep`
    surface plus the supervision knobs:

    ``workers``
        Parallel worker processes.  1 (the default) dispatches cells in
        matrix order one at a time, so the journal is byte-identical to
        an in-process serial run; >1 journals rows in completion order
        (cell *content* stays deterministic — compare journals with
        :meth:`repro.resilience.sweep.SweepJournal.digest`).
    ``quarantine_after``
        A cell whose worker crashes (dies without reporting) this many
        times — tallied across ``--resume`` cycles — is journaled as
        quarantined and skipped thereafter.
    ``heartbeat_timeout_s``
        Kill a worker whose heartbeat (pumped at every drain-loop
        boundary) goes silent this long: hang detection that fires long
        before a generous ``cell_timeout_s`` would.  Must comfortably
        exceed the expected boundary spacing.
    ``memory_limit_mb``
        Per-worker address-space budget (``resource.setrlimit``); a
        breach yields the structured ``oom`` status, not a crash.
    ``chaos``
        A :class:`repro.resilience.faults.ChaosPolicy` injected into the
        workers — fault injection aimed at this supervisor itself.
    ``graceful_timeout_s``
        After SIGINT/SIGTERM, how long drained workers get to flush
        snapshots and exit before SIGKILL.
    ``metrics``
        Enable per-worker telemetry: each worker runs its cell with an
        :class:`repro.observability.Observability` hub, streams
        cumulative snapshots over the heartbeat pipe (so even a crashed
        cell leaves its last reading), and reports the final snapshot
        with the result.  Aggregates land in the
        ``<journal>.metrics.json`` sidecar and on ``report.metrics`` —
        the journal itself stays byte-identical to a metrics-off run.
    """
    from ..analysis.experiments import ExperimentSettings

    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if quarantine_after < 1:
        raise SweepError(f"quarantine_after must be >= 1, got {quarantine_after}")
    settings = settings or ExperimentSettings()
    workloads = list(workloads)
    fingerprint = _fingerprint([w.name for w in workloads], config_names, settings)
    journal = SweepJournal(journal_path) if journal_path is not None else None
    ledger = CrashLedger(journal.path if journal is not None else None)
    journal_state = JournalState()
    if journal is not None:
        if resume and journal.exists():
            journal_state = journal.load_state(fingerprint)
            ledger.load()
        else:
            journal.start(fingerprint)
            ledger.reset()
    elif resume:
        raise SweepError("--resume requires a journal path")
    if checkpoint_every is not None and journal is None:
        raise SweepError("checkpoint_every requires a journal path")

    settings_spec = _settings_spec(settings)
    chaos_spec = chaos.to_json() if chaos is not None else None
    ctx = _mp_context()

    report = SweepReport()
    cells_by_key: dict[str, SweepCell] = {}
    pending: list[_PendingCell] = []
    executed = 0
    for workload in workloads:
        for config_name in config_names:
            key = _cell_key(workload.name, config_name)
            cell = SweepCell(
                workload=workload.name, configuration=config_name, status="skipped"
            )
            report.cells.append(cell)
            cells_by_key[key] = cell
            if key in journal_state.quarantined:
                info = journal_state.quarantined[key]
                cell.status = "quarantined"
                cell.error = info.get("error")
                cell.attempts = info.get("crashes", 0)
                if progress is not None:
                    progress(cell)
                continue
            if key in journal_state.completed:
                cell.status = "resumed"
                cell.row = journal_state.completed[key]
                _unlink_snapshot(journal, key, checkpoint_every)
                if progress is not None:
                    progress(cell)
                continue
            if max_cells is not None and executed >= max_cells:
                report.interrupted = True
                continue  # stays "skipped"
            executed += 1
            pending.append(
                _PendingCell(
                    workload=workload.name,
                    configuration=config_name,
                    key=key,
                    backoff_s=backoff_s,
                )
            )
            if not resume:
                # A stale snapshot from an abandoned earlier run must not
                # hand itself to a *fresh* sweep's first attempt.
                _unlink_snapshot(journal, key, checkpoint_every)

    shutdown = _ShutdownState()
    previous_handlers = _install_handlers(shutdown)
    inflight: dict[int, _Inflight] = {}
    try:
        while pending or inflight:
            now = time.monotonic()
            if shutdown.requested and not shutdown.signalled:
                # Stop dispatching; ask live workers to drain gracefully.
                for entry in inflight.values():
                    entry.killed_for = "shutdown"
                    entry.process.terminate()  # SIGTERM → drain at boundary
                shutdown.signalled = True
                shutdown.deadline = now + graceful_timeout_s
            if not shutdown.requested:
                while len(inflight) < workers:
                    slot = _next_ready(pending, now, strict_order=workers == 1)
                    if slot is None:
                        break
                    pending.remove(slot)
                    entry = _launch(
                        ctx,
                        slot,
                        settings_spec,
                        audit=audit,
                        journal=journal,
                        checkpoint_every=checkpoint_every,
                        resume=resume,
                        memory_limit_mb=memory_limit_mb,
                        chaos_spec=chaos_spec,
                        cell_timeout_s=cell_timeout_s,
                        metrics=metrics,
                    )
                    inflight[entry.process.pid] = entry
            _poll(inflight)
            now = time.monotonic()
            for pid, entry in list(inflight.items()):
                outcome = _judge(
                    entry,
                    now,
                    heartbeat_timeout_s=heartbeat_timeout_s,
                    shutdown_deadline=shutdown.deadline,
                )
                if outcome is None:
                    continue
                del inflight[pid]
                _finalize(
                    entry,
                    outcome,
                    cells_by_key,
                    pending,
                    journal=journal,
                    ledger=ledger,
                    checkpoint_every=checkpoint_every,
                    retries=retries,
                    quarantine_after=quarantine_after,
                    progress=progress,
                    now=now,
                )
            if shutdown.requested and not inflight:
                break
    finally:
        _restore_handlers(previous_handlers)
        for entry in inflight.values():  # pragma: no cover — safety net
            entry.process.kill()
            entry.process.join()

    if shutdown.requested:
        report.interrupted = True
    if (
        journal is not None
        and not report.interrupted
        and all(cell.status != "skipped" for cell in report.cells)
    ):
        ledger.reset()  # sweep finished; no crash history to carry forward
    if metrics:
        from ..observability import aggregate_cell_metrics, write_metrics_sidecar

        fresh = {
            _cell_key(cell.workload, cell.configuration): cell.metrics
            for cell in report.cells
            if cell.metrics is not None
        }
        existing = (
            _metrics_sidecar(journal) if journal is not None and resume else None
        )
        report.metrics = aggregate_cell_metrics(fresh, existing)
        if journal is not None:
            write_metrics_sidecar(journal.path, report.metrics)
    return report


def _metrics_sidecar(journal):
    from ..observability import metrics_sidecar_path

    return metrics_sidecar_path(journal.path)


# ----------------------------------------------------------------------
# Supervisor loop helpers
# ----------------------------------------------------------------------
def _settings_spec(settings) -> dict:
    """ExperimentSettings as a kwargs dict that crosses process boundaries."""
    spec = dataclasses.asdict(settings)
    sim_params = spec.pop("sim_params", None)
    if sim_params is not None:
        from ..core.params import SimulationParams

        spec["sim_params"] = SimulationParams(**sim_params)
    return spec


def _unlink_snapshot(journal, key: str, checkpoint_every) -> None:
    if journal is None or checkpoint_every is None:
        return
    path = _cell_checkpoint_path(journal.path, key)
    if path.exists():
        path.unlink()


def _install_handlers(shutdown: _ShutdownState) -> dict:
    """SIGINT/SIGTERM → graceful drain; no-op off the main thread."""
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, shutdown.handler)
        except ValueError:  # not the main thread — caller keeps its handling
            pass
    return previous


def _restore_handlers(previous: dict) -> None:
    for signum, handler in previous.items():
        if handler is None:
            continue  # installed from C: getsignal/Python can't restore it
        signal.signal(signum, handler)


def _next_ready(
    pending: list[_PendingCell], now: float, strict_order: bool
) -> _PendingCell | None:
    """Next dispatchable cell.

    ``strict_order`` (``workers == 1``) is head-of-line blocking: a cell
    waiting out its retry backoff must not be overtaken, or the journal's
    append order — and with it byte-identity to a serial run — is lost.
    With parallel workers the journal is completion-ordered anyway, so
    the first *ready* cell wins.
    """
    for slot in pending:
        if slot.not_before <= now:
            return slot
        if strict_order:
            return None
    return None


def _launch(
    ctx,
    slot: _PendingCell,
    settings_spec: dict,
    *,
    audit: bool,
    journal,
    checkpoint_every,
    resume: bool,
    memory_limit_mb,
    chaos_spec,
    cell_timeout_s,
    metrics: bool = False,
) -> _Inflight:
    checkpoint_path = None
    if journal is not None and checkpoint_every is not None:
        checkpoint_path = str(_cell_checkpoint_path(journal.path, slot.key))
    # Snapshot handoff: a crash-retried attempt (attempt > 0) may claim
    # the previous attempt's snapshot; attempt 0 may only claim one when
    # the whole sweep is resuming.
    allow_snapshot = checkpoint_path is not None and (resume or slot.attempt > 0)
    task = WorkerTask(
        workload=slot.workload,
        configuration=slot.configuration,
        attempt=slot.attempt,
        settings=settings_spec,
        audit=audit,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        allow_snapshot_resume=allow_snapshot,
        memory_limit_mb=memory_limit_mb,
        chaos=chaos_spec,
        metrics=metrics,
    )
    result_recv, result_send = ctx.Pipe(duplex=False)
    heartbeat_recv, heartbeat_send = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_worker_main,
        args=(task, result_send, heartbeat_send),
        daemon=True,
        name=f"sweep-worker-{slot.key}-a{slot.attempt}",
    )
    process.start()
    # The parent must not hold the child's send handles: with them open,
    # recv() could never see EOF and kill detection would be lazier.
    result_send.close()
    heartbeat_send.close()
    now = time.monotonic()
    return _Inflight(
        process=process,
        pending=slot,
        result_recv=result_recv,
        heartbeat_recv=heartbeat_recv,
        started=now,
        deadline=now + cell_timeout_s if cell_timeout_s is not None else None,
        last_heartbeat=now,
    )


def _poll(inflight: dict[int, _Inflight]) -> None:
    """Block briefly for activity; drain heartbeats and result messages."""
    conns = []
    for entry in inflight.values():
        conns.append(entry.result_recv)
        conns.append(entry.heartbeat_recv)
    if not conns:
        # Nothing in flight (everything pending sits in backoff): sleep
        # the poll quantum instead of spinning until `not_before`.
        time.sleep(_POLL_INTERVAL_S)
        return
    try:
        mp_connection.wait(conns, timeout=_POLL_INTERVAL_S)
    except OSError:  # pragma: no cover — racing a closing pipe
        pass
    now = time.monotonic()
    for entry in inflight.values():
        try:
            while entry.heartbeat_recv.poll():
                beat = entry.heartbeat_recv.recv()
                entry.last_heartbeat = now
                if isinstance(beat, dict) and "metrics" in beat:
                    entry.last_metrics = beat["metrics"]
        except (EOFError, OSError):
            pass  # worker side closed; liveness is judged elsewhere
        if entry.result is None:
            try:
                if entry.result_recv.poll():
                    entry.result = entry.result_recv.recv()
                    entry.result_seen_at = now
            except (EOFError, OSError):
                pass  # died mid-send: treated as a crash by _judge


def _judge(
    entry: _Inflight,
    now: float,
    *,
    heartbeat_timeout_s,
    shutdown_deadline,
) -> str | None:
    """Decide whether an in-flight worker is finished, and how.

    Returns ``None`` (still running) or one of ``"result"``, ``"crash"``,
    ``"timeout"``, ``"hang"``, ``"shutdown-kill"``.
    """
    alive = entry.process.is_alive()
    if entry.result is not None:
        if alive and now - (entry.result_seen_at or now) < _EXIT_GRACE_S:
            return None  # result in hand; give the worker a moment to exit
        if alive:
            entry.process.kill()
        entry.process.join()
        return "result"
    if not alive:
        entry.process.join()
        # One last look: the result may have landed between polls.
        try:
            if entry.result_recv.poll():
                entry.result = entry.result_recv.recv()
                return "result"
        except (EOFError, OSError):
            pass
        if entry.killed_for == "shutdown":
            return "shutdown-kill"
        return "crash"
    if shutdown_deadline is not None and now > shutdown_deadline:
        entry.process.kill()
        entry.process.join()
        return "shutdown-kill"
    if entry.deadline is not None and now > entry.deadline:
        entry.killed_for = "timeout"
        entry.process.kill()  # SIGKILL: the core is actually reclaimed
        entry.process.join()
        return "timeout"
    if (
        heartbeat_timeout_s is not None
        and now - entry.last_heartbeat > heartbeat_timeout_s
    ):
        entry.killed_for = "hang"
        entry.process.kill()
        entry.process.join()
        return "hang"
    return None


def _finalize(
    entry: _Inflight,
    outcome: str,
    cells_by_key: dict[str, SweepCell],
    pending: list[_PendingCell],
    *,
    journal,
    ledger: CrashLedger,
    checkpoint_every,
    retries: int,
    quarantine_after: int,
    progress,
    now: float,
) -> None:
    """Translate one worker's fate into cell state, journal, and retries."""
    slot = entry.pending
    cell = cells_by_key[slot.key]
    cell.attempts = slot.attempt + 1
    cell.seconds += now - entry.started
    if entry.last_metrics is not None and cell.metrics is None:
        # Best-effort: the last heartbeat's cumulative snapshot survives
        # a crash/timeout; an "ok" result below overwrites it.
        cell.metrics = entry.last_metrics
    done = True

    if outcome == "result":
        result = entry.result
        status = result.get("status")
        if status == "ok":
            cell.status = "ok"
            cell.row = result["row"]
            cell.error = None
            cell.metrics = result.get("metrics", entry.last_metrics)
            if journal is not None:
                journal.append(slot.key, cell.row)
            _unlink_snapshot(journal, slot.key, checkpoint_every)
        elif status == "oom":
            # Fatal for the cell, structured for the sweep: the same
            # budget reproduces the same breach, so no retry.
            cell.status = "oom"
            cell.error = result.get("error")
        elif status == "interrupted":
            cell.status = "interrupted"
            cell.error = result.get("error")
        else:  # "failed" — an exception inside a healthy worker
            cell.error = result.get("error")
            if slot.app_failures < retries:
                done = False
                _requeue(
                    pending,
                    slot,
                    now,
                    app_failure=True,
                )
            else:
                cell.status = "failed"
    elif outcome in ("timeout", "hang"):
        budget = "wall-clock budget" if outcome == "timeout" else "heartbeat"
        cell.status = "timeout"
        cell.error = (
            f"worker SIGKILLed: {budget} exceeded "
            f"(attempt {slot.attempt + 1}); a hung cell would hang again, "
            "not retried"
        )
    elif outcome == "shutdown-kill":
        cell.status = "interrupted"
        cell.error = "worker did not drain before the shutdown deadline"
    else:  # "crash"
        exitcode = entry.process.exitcode
        crash = WorkerCrashError(
            f"worker for {slot.key} died without reporting a result "
            f"(exitcode {exitcode}, attempt {slot.attempt + 1})"
        )
        crashes = ledger.bump(slot.key)
        if crashes >= quarantine_after:
            error = QuarantinedCellError(
                f"cell {slot.key} quarantined after {crashes} worker "
                f"crashes (last: {crash})"
            )
            cell.status = "quarantined"
            cell.error = str(error)
            if journal is not None:
                journal.append_quarantine(slot.key, crashes, str(error))
            _unlink_snapshot(journal, slot.key, checkpoint_every)
        else:
            cell.error = str(crash)
            done = False
            _requeue(pending, slot, now, app_failure=False)

    for conn in (entry.result_recv, entry.heartbeat_recv):
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    if done and progress is not None:
        progress(cell)


def _requeue(
    pending: list[_PendingCell],
    slot: _PendingCell,
    now: float,
    *,
    app_failure: bool,
) -> None:
    """Put a cell back at the *front* of the queue for its next attempt.

    Front, not back: with ``workers=1`` this keeps journal append order
    equal to matrix order, preserving byte-identity with serial runs.
    """
    slot.attempt += 1
    if app_failure:
        slot.app_failures += 1
    slot.not_before = now + slot.backoff_s
    slot.backoff_s *= 2
    pending.insert(0, slot)
