"""Fault injection: hostile traces and adversarial OS event schedules.

Utopia and Victima evaluate translation under hostile or irregular
mapping conditions; this module brings the same adversarial mindset to
the reproduction.  Two families of faults:

* **trace perturbations** — pure functions over a VPN array that model
  corrupted or pathological reference streams: out-of-range VPNs (beyond
  any mapped VMA), negative VPNs (sign-corrupted records), truncation
  (a cut-short capture), and duplicate bursts (a stuck trace writer);
* **adversarial OS events** — schedules for the simulator's ``events``
  hook: random full TLB shootdowns (context-switch storms) and huge-page
  demotion storms (memory pressure breaking THP mappings mid-run);
* **worker chaos** — :class:`ChaosPolicy`, a fault plan the process
  supervisor (:mod:`repro.resilience.supervisor`) injects into its own
  workers: SIGKILL at random drain-loop boundaries, simulated memory
  budget breaches, and deliberate hangs.  This is fault injection *for
  the supervisor itself* — the chaos CI job proves a kill-riddled sweep
  still converges to the same journal as an unfaulted serial run.

:func:`run_fault_campaign` drives a (fault × configuration) matrix for
one workload through the canonical pipeline with the simulator in
fault-tolerant mode and reports, per cell, whether the run survived and
how degraded it is.  The acceptance bar is *no unhandled exceptions*:
every failure is either absorbed (flagged stats) or reported as a
structured error in the campaign cell.
"""

from __future__ import annotations

import os
import signal
import time
import zlib
from dataclasses import MISSING, asdict, dataclass, field, fields

import numpy as np

from ..analysis.experiments import ExperimentSettings, prepare_run
from ..errors import ConfigurationError, ReproError
from ..ioutils import atomic_write_json
from ..resilience.auditor import InvariantAuditor

#: Bump when the campaign-report JSON layout changes incompatibly.
CAMPAIGN_VERSION = 1


def dataclass_from_json(cls, data, what: str):
    """Strictly construct a dataclass from a plain dict.

    Unlike ``cls(**data)`` — which surfaces schema drift as a raw
    ``TypeError`` deep inside a worker or a replay — this validates the
    key set first and reports unknown *and* missing keys together as a
    :class:`repro.errors.ConfigurationError`, so corpus/journal files
    written by a newer build fail loudly with an actionable message.
    Fields with defaults may be omitted; extra keys never pass.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{what}: expected an object, got {type(data).__name__}"
        )
    spec = {field.name: field for field in fields(cls)}
    unknown = sorted(set(data) - set(spec))
    required = {
        name
        for name, field_spec in spec.items()
        if field_spec.default is MISSING and field_spec.default_factory is MISSING
    }
    missing = sorted(required - set(data))
    if unknown or missing:
        raise ConfigurationError(
            f"{what} does not match this build's {cls.__name__} schema"
            + (f"; unknown keys: {', '.join(unknown)}" if unknown else "")
            + (f"; missing keys: {', '.join(missing)}" if missing else "")
            + " (file written by a different version?)"
        )
    return cls(**data)

#: A VPN far beyond any mapped VMA (the 48-bit canonical ceiling).
OUT_OF_RANGE_VPN = 1 << 36


def _as_array(trace) -> np.ndarray:
    return np.asarray(trace, dtype=np.int64)


def inject_out_of_range(trace, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """Replace a random fraction of VPNs with unmapped, huge ones."""
    vpns = _as_array(trace).copy()
    rng = np.random.default_rng(seed)
    count = max(1, int(len(vpns) * fraction))
    victims = rng.choice(len(vpns), size=count, replace=False)
    vpns[victims] = OUT_OF_RANGE_VPN + rng.integers(0, 1 << 20, size=count)
    return vpns


def inject_negative_vpns(trace, fraction: float = 0.01, seed: int = 0) -> np.ndarray:
    """Sign-corrupt a random fraction of VPNs (negated, offset by one)."""
    vpns = _as_array(trace).copy()
    rng = np.random.default_rng(seed)
    count = max(1, int(len(vpns) * fraction))
    victims = rng.choice(len(vpns), size=count, replace=False)
    vpns[victims] = -(np.abs(vpns[victims]) + 1)
    return vpns


def truncate_trace(trace, keep_fraction: float = 0.25, seed: int = 0) -> np.ndarray:
    """Cut the stream short, as a capture that died mid-run would."""
    vpns = _as_array(trace)
    keep = max(1, int(len(vpns) * keep_fraction))
    return vpns[:keep].copy()


def inject_duplicate_bursts(
    trace, bursts: int = 4, burst_length: int = 512, seed: int = 0
) -> np.ndarray:
    """Overwrite random windows with a single repeated VPN (stuck writer)."""
    vpns = _as_array(trace).copy()
    rng = np.random.default_rng(seed)
    for _ in range(bursts):
        start = int(rng.integers(0, max(1, len(vpns) - burst_length)))
        vpns[start : start + burst_length] = vpns[start]
    return vpns


#: Named trace perturbations used by campaigns and the CLI.
TRACE_FAULTS = {
    "out_of_range": inject_out_of_range,
    "negative": inject_negative_vpns,
    "truncate": truncate_trace,
    "duplicate_burst": inject_duplicate_bursts,
}


# ----------------------------------------------------------------------
# Adversarial OS events
# ----------------------------------------------------------------------
def shootdown_storm_events(
    num_accesses: int, storms: int = 3, seed: int = 0
) -> list[tuple[int, object]]:
    """Random full-TLB-flush events (context-switch / shootdown storms)."""
    rng = np.random.default_rng(seed)
    positions = sorted(
        int(p) for p in rng.integers(1, max(2, num_accesses), size=storms)
    )

    def flush(organization) -> None:
        organization.hierarchy.flush_tlbs()

    return [(position, flush) for position in positions]


def demotion_storm_events(
    process,
    num_accesses: int,
    storms: int = 2,
    fraction: float = 0.5,
    seed: int = 0,
) -> list[tuple[int, object]]:
    """Huge-page demotion storms: break a fraction of live 2 MB pages.

    Each event demotes ``fraction`` of the 2 MB pages still mapped at
    fire time and sends the matching TLB shootdowns — the paper's
    Section 4.2.2 memory-pressure scenario, but repeated and randomized.
    A storm over a process with no huge pages left is a no-op.
    """
    from ..mmu.translation import PageSize

    rng = np.random.default_rng(seed)
    positions = sorted(
        int(p) for p in rng.integers(1, max(2, num_accesses), size=storms)
    )

    def storm(organization, _seed_base=seed) -> None:
        huge = [
            leaf.vpn
            for leaf in process.page_table.iter_translations()
            if leaf.page_size is PageSize.SIZE_2MB
        ]
        if not huge:
            return
        local = np.random.default_rng(_seed_base + len(huge))
        victims = local.choice(
            len(huge), size=max(1, int(len(huge) * fraction)), replace=False
        )
        for index in victims:
            vpn = huge[int(index)]
            process.break_huge_page(vpn)
            organization.hierarchy.shootdown_huge_page(vpn)

    return [(position, storm) for position in positions]


def adversarial_events(
    process,
    num_accesses: int,
    shootdowns: int = 3,
    demotion_storms: int = 2,
    demotion_fraction: float = 0.5,
    seed: int = 0,
) -> list[tuple[int, object]]:
    """Combined shootdown + demotion schedule for one simulation."""
    events = shootdown_storm_events(num_accesses, storms=shootdowns, seed=seed)
    events += demotion_storm_events(
        process,
        num_accesses,
        storms=demotion_storms,
        fraction=demotion_fraction,
        seed=seed + 1,
    )
    return sorted(events, key=lambda event: event[0])


# ----------------------------------------------------------------------
# Worker chaos (fault injection against the process supervisor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic fault plan executed *inside* supervised workers.

    The supervisor threads the policy into each worker's task spec; the
    worker consults it at every drain-loop boundary (the same boundaries
    that feed heartbeats and snapshots), so every injected fault lands at
    a point the checkpoint protocol can recover from:

    * ``kill_probability`` — with this per-boundary probability, the
      worker SIGKILLs itself: the real signal, no Python cleanup, exactly
      what a kernel OOM kill or a preempted spot instance looks like;
    * ``oom_at_boundary`` — raise :class:`MemoryError` at this boundary,
      the same exception a tripped ``setrlimit`` budget produces, driving
      the structured ``oom`` status path;
    * ``hang_at_boundary`` — sleep ``hang_seconds`` at this boundary,
      starving the heartbeat channel so the supervisor's hang detection
      (or the hard timeout) must reclaim the worker with SIGKILL.

    ``max_strikes_per_cell`` bounds how many *attempts* of one cell get
    struck: with the default of 1 only attempt 0 can be hit, so a retried
    cell is guaranteed to complete — the configuration the chaos CI job
    uses to assert kill-riddled and unfaulted sweeps converge to
    identical journals.  Draws come from an RNG seeded by
    ``(seed, cell key, attempt)``, so a chaos run is exactly
    reproducible and different cells/attempts fault independently.
    """

    kill_probability: float = 0.0
    oom_at_boundary: int | None = None
    hang_at_boundary: int | None = None
    hang_seconds: float = 3600.0
    max_strikes_per_cell: int = 1
    seed: int = 0

    def rng(self, key: str, attempt: int) -> np.random.Generator:
        """Deterministic per-(cell, attempt) RNG for strike draws."""
        return np.random.default_rng(
            [self.seed, zlib.crc32(key.encode()), attempt]
        )

    def strike(self, rng: np.random.Generator, boundary: int, attempt: int) -> None:
        """Consult the plan at one boundary; may never return."""
        if attempt >= self.max_strikes_per_cell:
            return
        if self.oom_at_boundary is not None and boundary >= self.oom_at_boundary:
            raise MemoryError(f"chaos: simulated budget breach at boundary {boundary}")
        if self.hang_at_boundary is not None and boundary >= self.hang_at_boundary:
            time.sleep(self.hang_seconds)
        if self.kill_probability > 0.0 and rng.random() < self.kill_probability:
            os.kill(os.getpid(), signal.SIGKILL)

    def to_json(self) -> dict:
        """Plain-dict form for crossing the process boundary in a task spec."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "ChaosPolicy":
        """Strict inverse of :meth:`to_json`.

        Unknown or missing keys raise
        :class:`repro.errors.ConfigurationError` (not a raw ``TypeError``)
        so a task spec produced by a newer build fails loudly at the
        supervisor boundary instead of deep inside a worker.
        """
        return dataclass_from_json(cls, data, "chaos policy")


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
@dataclass(slots=True)
class CampaignCell:
    """Outcome of one (fault, configuration) cell."""

    fault: str
    configuration: str
    ok: bool
    faulted_accesses: int = 0
    accesses: int = 0
    energy_per_access_pj: float = 0.0
    error: str | None = None
    error_type: str | None = None
    seconds: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.faulted_accesses > 0

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "CampaignCell":
        """Strict load; schema drift raises ``ConfigurationError``."""
        return dataclass_from_json(cls, data, "campaign cell")


@dataclass(slots=True)
class CampaignReport:
    """All cells of one workload's fault campaign."""

    workload: str
    cells: list[CampaignCell] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        """True when every cell either ran or failed *structurally*."""
        return all(
            cell.ok
            or (cell.error_type is not None and not cell.error_type.startswith("unhandled:"))
            for cell in self.cells
        )

    def failed_cells(self) -> list[CampaignCell]:
        return [cell for cell in self.cells if not cell.ok]

    def summary_lines(self) -> list[str]:
        lines = []
        for cell in self.cells:
            if cell.ok:
                status = (
                    f"ok, {cell.faulted_accesses} faulted accesses"
                    if cell.degraded
                    else "ok"
                )
            else:
                status = f"handled error: {cell.error_type}: {cell.error}"
            lines.append(f"{cell.fault:>16s} × {cell.configuration:<9s} {status}")
        return lines

    def to_json(self) -> dict:
        """Versioned plain-dict form for CI artifact archiving."""
        return {
            "campaign_version": CAMPAIGN_VERSION,
            "workload": self.workload,
            "survived": self.survived,
            "cells": [cell.to_json() for cell in self.cells],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignReport":
        """Strict inverse of :meth:`to_json`.

        Version or key-set mismatches raise
        :class:`repro.errors.ConfigurationError` — an archived report
        from a newer build must fail loudly, never half-load.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"campaign report: expected an object, got {type(data).__name__}"
            )
        version = data.get("campaign_version")
        if version != CAMPAIGN_VERSION:
            raise ConfigurationError(
                f"campaign report version {version!r} unsupported "
                f"(this build reads version {CAMPAIGN_VERSION})"
            )
        expected = {"campaign_version", "workload", "survived", "cells"}
        unknown = sorted(set(data) - expected)
        missing = sorted(expected - set(data))
        if unknown or missing:
            raise ConfigurationError(
                "campaign report does not match this build's schema"
                + (f"; unknown keys: {', '.join(unknown)}" if unknown else "")
                + (f"; missing keys: {', '.join(missing)}" if missing else "")
            )
        return cls(
            workload=data["workload"],
            cells=[CampaignCell.from_json(cell) for cell in data["cells"]],
        )

    def write(self, path) -> None:
        """Atomically archive the report (the CI-artifact path)."""
        atomic_write_json(path, self.to_json(), indent=2)


def run_fault_campaign(
    workload,
    config_names: tuple[str, ...] = ("THP", "TLB_Lite", "RMM_Lite"),
    settings: ExperimentSettings | None = None,
    faults: tuple[str, ...] = tuple(TRACE_FAULTS),
    os_events: bool = True,
    audit: bool = False,
    seed: int = 0,
    report_path=None,
) -> CampaignReport:
    """Run every (fault × configuration) cell in fault-tolerant mode.

    Trace faults named in ``faults`` must be keys of :data:`TRACE_FAULTS`;
    the pseudo-fault ``"os_events"`` (added when ``os_events`` is true)
    runs an unperturbed trace under a shootdown + demotion schedule.
    Every cell is isolated: an exception is captured into the cell, never
    propagated, so a campaign always returns a full report.  When
    ``report_path`` is given, the finished report is also archived there
    as versioned JSON (atomic write) — the CI-artifact path, alongside
    ``BENCH_throughput.json``.
    """
    settings = settings or ExperimentSettings(trace_accesses=50_000)
    report = CampaignReport(workload=workload.name)
    plans = [(name, TRACE_FAULTS[name]) for name in faults]
    if os_events:
        plans.append(("os_events", None))
    for fault_name, perturb in plans:
        for config_name in config_names:
            started = time.perf_counter()
            cell = CampaignCell(fault=fault_name, configuration=config_name, ok=False)
            try:
                auditor = InvariantAuditor() if audit else None
                prepared = prepare_run(
                    workload,
                    config_name,
                    settings,
                    auditor=auditor,
                    on_fault="record",
                )
                if perturb is not None:
                    prepared.trace = perturb(prepared.trace, seed=seed)
                events = None
                if fault_name == "os_events":
                    events = adversarial_events(
                        prepared.process, len(prepared.trace), seed=seed
                    )
                result = prepared.run(events=events)
                cell.ok = True
                cell.faulted_accesses = result.faulted_accesses
                cell.accesses = result.accesses
                cell.energy_per_access_pj = result.energy_per_access_pj
            except ReproError as exc:
                # Structured, expected degradation: report, don't crash.
                cell.error = str(exc)
                cell.error_type = type(exc).__name__
            except Exception as exc:  # noqa: BLE001 — campaign isolation
                cell.error = str(exc)
                cell.error_type = f"unhandled:{type(exc).__name__}"
            cell.seconds = time.perf_counter() - started
            report.cells.append(cell)
    if report_path is not None:
        report.write(report_path)
    return report
