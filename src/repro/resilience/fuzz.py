"""Differential fuzzing: generative cases through a pluggable oracle stack.

PR 8 proved the reference and fast drain engines equivalent on 13
hand-picked configurations and two trace regimes.  The space the paper's
TLB_Lite/RMM_Lite claims actually live in — arbitrary hierarchy
geometries, Lite intervals and thresholds, page-size mixes, adversarial
OS-event schedules, checkpoint boundaries — is combinatorially larger
than any hand-written test matrix.  This module earns trust at that
scale the way mature simulators do: a **seeded generative fuzzer** whose
every case is a pure-JSON description (so any failure is a self-contained
reproducer), run through an **oracle stack**:

``engines``
    Reference-vs-fast digest equality: both engines must produce
    byte-identical ``SimulationResult``s *and* identical per-component
    sha256 state digests at every recorded interval boundary
    (:func:`repro.resilience.bisect.first_divergence` localizes splits).
``resume``
    Kill-and-resume round-trip identity: the run is killed after K
    boundaries with a snapshot on disk, rebuilt from scratch, resumed,
    and its stitched digest trail plus final result must match the
    uninterrupted run's exactly.
``auditor``
    :class:`repro.resilience.auditor.InvariantAuditor` rides along on the
    reference run, checking the accounting/energy/Lite/LRU identities at
    every timeline boundary and once more on the finished result.
``observability``
    Telemetry inertness: the case re-runs with a live
    :class:`repro.observability.Observability` hub attached to the
    simulator and the checkpointer (engine and a mid-run
    Prometheus-export toggle drawn from the case's own seed), and its
    digest trail plus final result must match the bare reference run's
    exactly — the fuzzed generalization of the hand-written inertness
    matrix in ``tests/test_observability.py``.
``taxonomy``
    No non-taxonomy exception may escape: anything that is not a
    :class:`repro.errors.ReproError` is a bug by definition.

Failures are bucketed by a **stable fingerprint** (oracle + failure kind
+ exception type + diverging components) and handed to the
delta-debugging minimizer (:mod:`repro.resilience.minimize`), which
shrinks the trace and the configuration while the same oracle keeps
failing.  Minimized reproducers land in a versioned ``corpus/``
directory that ``python -m repro fuzz replay`` re-runs deterministically
— the regression corpus that keeps every future fast-path or
organization PR honest.

Randomness discipline: every random draw comes from :func:`rng_stream`,
a seeded named-stream helper (recognized by reprolint's RL001), so a
fuzz campaign is exactly reproducible from ``(seed, case index)`` alone.
"""

from __future__ import annotations

import hashlib
import time
import zlib
from dataclasses import dataclass, fields, replace
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from ..core.organizations import build_organization, paging_policy_for
from ..core.params import (
    RMM_LITE_PARAMS,
    TLB_LITE_PARAMS,
    HierarchyParams,
    LiteParams,
    SetAssocParams,
    SimulationParams,
)
from ..core.simulator import Simulator
from ..core.stats import SimulationResult
from ..errors import ConfigurationError, FuzzError, InvariantViolation, ReproError
from ..ioutils import atomic_write_json
from ..mem.physical import PhysicalMemory
from ..observability import Observability
from ..workloads.base import VMASpec, Workload
from ..workloads.patterns import (
    Mixture,
    Phased,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
    Zipf,
)
from .auditor import InvariantAuditor
from .checkpoint import (
    AbortSimulation,
    DigestTrail,
    SimulationCheckpointer,
    first_divergence,
    resume_from_snapshot,
)
from .faults import TRACE_FAULTS, adversarial_events, dataclass_from_json

#: Bump when the JSON layout of a fuzz case changes incompatibly.
FUZZ_CASE_VERSION = 1

#: Bump when the reproducer envelope layout changes incompatibly.
CORPUS_VERSION = 1

#: Oracle stack, in evaluation order.  ``taxonomy`` has no run of its
#: own: every oracle's runs are wrapped, and any non-taxonomy exception
#: escaping one of them is attributed to it.
ORACLE_NAMES = ("engines", "resume", "auditor", "observability", "taxonomy")

#: Configurations the generator samples (every registered organization).
FUZZ_CONFIG_NAMES = (
    "4KB",
    "THP",
    "TLB_Lite",
    "RMM",
    "TLB_PP",
    "RMM_Lite",
    "FA_Lite",
    "RMM_PP_Lite",
    "L0_Filter",
    "L0_Lite",
    "TLB_Pred",
    "Banked",
    "Semantic",
)

#: Configurations whose builder attaches a Lite controller.
_LITE_CONFIGS = frozenset(
    {"TLB_Lite", "RMM_Lite", "FA_Lite", "RMM_PP_Lite", "L0_Lite"}
)


# ----------------------------------------------------------------------
# Seeded RNG streams (the RL001-blessed idiom for fuzz code)
# ----------------------------------------------------------------------
def rng_stream(seed: int, *path) -> np.random.Generator:
    """Independent, deterministic RNG stream named by ``(seed, *path)``.

    Seed material is the root seed followed by a crc32 of each path
    element, so streams for different purposes (``("case", 7)`` vs
    ``("trace", 7)``) never collide and never share state.  reprolint's
    RL001 recognizes this helper as a seeded RNG constructor: calling it
    with no arguments, or with wall-clock-derived seed material, is a
    determinism finding.
    """
    material = [int(seed)] + [zlib.crc32(str(part).encode()) for part in path]
    return np.random.default_rng(material)


# ----------------------------------------------------------------------
# Pattern specs: JSON-describable trace generators
# ----------------------------------------------------------------------
def build_pattern(spec: dict, regions: dict):
    """Instantiate a :mod:`repro.workloads.patterns` tree from a spec."""
    kind = spec.get("kind")
    if kind == "sequential":
        return SequentialScan(
            regions[spec["region"]],
            stride_pages=spec["stride_pages"],
            burst=spec["burst"],
        )
    if kind == "shuffled":
        return ShuffledScan(regions[spec["region"]], burst=spec["burst"])
    if kind == "uniform":
        return UniformRandom(regions[spec["region"]], burst=spec["burst"])
    if kind == "zipf":
        return Zipf(regions[spec["region"]], alpha=spec["alpha"], burst=spec["burst"])
    if kind == "strided":
        return StridedSet(
            regions[spec["region"]],
            num_pages=spec["num_pages"],
            stride_pages=spec["stride_pages"],
            burst=spec["burst"],
        )
    if kind == "mixture":
        return Mixture(
            [(build_pattern(sub, regions), weight) for sub, weight in spec["components"]]
        )
    if kind == "phased":
        return Phased(
            [(build_pattern(sub, regions), frac) for sub, frac in spec["phases"]]
        )
    raise ConfigurationError(f"unknown pattern kind {kind!r} in fuzz case")


# ----------------------------------------------------------------------
# The case: one pure-JSON simulation scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario, fully described by JSON-serializable data.

    ``trace`` is either ``{"kind": "generated", "accesses": N, "seed": S,
    "faults": [[name, kwargs], ...]}`` (rebuilt through the workload's
    pattern plus :data:`repro.resilience.faults.TRACE_FAULTS`
    perturbations) or ``{"kind": "literal", "vpns": [...]}`` (what the
    minimizer produces).  Everything else maps one-to-one onto the
    canonical pipeline's knobs.
    """

    seed: int
    config: str
    thp_coverage: float
    physical_mb: int
    hierarchy: dict
    lite: dict | None
    sim: dict
    workload: dict
    trace: dict
    events: dict | None
    on_fault: str
    resume_frac: float
    digest_every: int
    oracles: tuple[str, ...]

    # -- JSON round trip ------------------------------------------------
    def to_json(self) -> dict:
        payload = {
            "case_version": FUZZ_CASE_VERSION,
            "seed": self.seed,
            "config": self.config,
            "thp_coverage": self.thp_coverage,
            "physical_mb": self.physical_mb,
            "hierarchy": dict(self.hierarchy),
            "lite": dict(self.lite) if self.lite is not None else None,
            "sim": dict(self.sim),
            "workload": dict(self.workload),
            "trace": dict(self.trace),
            "events": dict(self.events) if self.events is not None else None,
            "on_fault": self.on_fault,
            "resume_frac": self.resume_frac,
            "digest_every": self.digest_every,
            "oracles": list(self.oracles),
        }
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "FuzzCase":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fuzz case: expected an object, got {type(data).__name__}"
            )
        version = data.get("case_version")
        if version != FUZZ_CASE_VERSION:
            raise ConfigurationError(
                f"fuzz case version {version!r} unsupported "
                f"(this build reads version {FUZZ_CASE_VERSION})"
            )
        body = {key: value for key, value in data.items() if key != "case_version"}
        expected = {field.name for field in fields(cls)}
        unknown = sorted(set(body) - expected)
        missing = sorted(expected - set(body))
        if unknown or missing:
            raise ConfigurationError(
                "fuzz case does not match this build's schema"
                + (f"; unknown keys: {', '.join(unknown)}" if unknown else "")
                + (f"; missing keys: {', '.join(missing)}" if missing else "")
            )
        body["oracles"] = tuple(body["oracles"])
        for oracle in body["oracles"]:
            if oracle not in ORACLE_NAMES:
                raise ConfigurationError(
                    f"fuzz case names unknown oracle {oracle!r} "
                    f"(known: {', '.join(ORACLE_NAMES)})"
                )
        return cls(**body)

    # -- parameter builders ---------------------------------------------
    def hierarchy_params(self) -> HierarchyParams:
        h = self.hierarchy
        return HierarchyParams(
            l1_4kb=SetAssocParams(*h["l1_4kb"]),
            l1_2mb=SetAssocParams(*h["l1_2mb"]),
            l1_1gb_entries=h["l1_1gb_entries"],
            l2_page=SetAssocParams(*h["l2_page"]),
            l1_range_entries=h["l1_range_entries"],
            l2_range_entries=h["l2_range_entries"],
        )

    def lite_params(self) -> LiteParams | None:
        if self.lite is None:
            return None
        return dataclass_from_json(LiteParams, self.lite, "fuzz case lite params")

    def sim_params(self) -> SimulationParams:
        return dataclass_from_json(
            SimulationParams, self.sim, "fuzz case sim params"
        )

    # -- pipeline builders ----------------------------------------------
    def build_workload(self) -> Workload:
        specs = [
            VMASpec(name, mb, thp_eligible)
            for name, mb, thp_eligible in self.workload["regions"]
        ]
        pattern_spec = self.workload["pattern"]
        return Workload(
            f"fuzz-{self.seed}",
            "FUZZ",
            specs,
            lambda regions: build_pattern(pattern_spec, regions),
            instructions_per_access=self.workload["instructions_per_access"],
        )

    def build_trace(self, workload: Workload) -> np.ndarray:
        spec = self.trace
        if spec["kind"] == "literal":
            return np.asarray(spec["vpns"], dtype=np.int64)
        if spec["kind"] != "generated":
            raise ConfigurationError(
                f"unknown trace kind {spec.get('kind')!r} in fuzz case"
            )
        vpns = workload.trace(spec["accesses"], seed=spec["seed"])
        for name, kwargs in spec["faults"]:
            try:
                inject = TRACE_FAULTS[name]
            except KeyError:
                raise ConfigurationError(
                    f"unknown trace fault {name!r} in fuzz case "
                    f"(known: {', '.join(sorted(TRACE_FAULTS))})"
                ) from None
            vpns = inject(vpns, **kwargs)
        return vpns

    def build_events(self, process, num_accesses: int):
        if self.events is None:
            return None
        e = self.events
        return adversarial_events(
            process,
            num_accesses,
            shootdowns=e["shootdowns"],
            demotion_storms=e["demotion_storms"],
            demotion_fraction=e["demotion_fraction"],
            seed=e["seed"],
        )

    def trace_entries(self) -> int:
        """Number of accesses this case drives (literal length or spec)."""
        if self.trace["kind"] == "literal":
            return len(self.trace["vpns"])
        return self.trace["accesses"]

    def with_literal_trace(self, vpns) -> "FuzzCase":
        """Copy of this case with the trace pinned to explicit entries."""
        return replace(
            self, trace={"kind": "literal", "vpns": [int(v) for v in vpns]}
        )


# ----------------------------------------------------------------------
# Building and running one case
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BuiltCase:
    """A case instantiated into live pipeline objects, ready to run."""

    case: FuzzCase
    workload: Workload
    process: object
    organization: object
    trace: np.ndarray
    simulator: Simulator
    events: list | None

    def run(self, checkpoint_hook=None, resume_state=None) -> SimulationResult:
        return self.simulator.run(
            self.trace,
            events=self.events,
            checkpoint_hook=checkpoint_hook,
            resume_state=resume_state,
        )


def build_case(
    case: FuzzCase,
    engine: str = "reference",
    auditor: InvariantAuditor | None = None,
    observability: Observability | None = None,
) -> BuiltCase:
    """Instantiate the canonical pipeline for one fuzz case."""
    workload = case.build_workload()
    policy = paging_policy_for(case.config, case.thp_coverage)
    process = workload.build_process(
        policy, physical=PhysicalMemory(case.physical_mb << 20, seed=case.seed)
    )
    organization = build_organization(
        case.config,
        process,
        params=case.hierarchy_params(),
        lite_params=case.lite_params(),
    )
    trace = case.build_trace(workload)
    simulator = Simulator(
        organization,
        workload_name=workload.name,
        instructions_per_access=workload.instructions_per_access,
        sim_params=case.sim_params(),
        on_fault=case.on_fault,
        auditor=auditor,
        engine=engine,
        observability=observability,
    )
    events = case.build_events(process, len(trace))
    return BuiltCase(case, workload, process, organization, trace, simulator, events)


# ----------------------------------------------------------------------
# Failures, fingerprints, outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzFailure:
    """One oracle's verdict on one case.

    ``kind`` distinguishes failure shapes within an oracle:
    ``divergence`` (digest trails split), ``result-mismatch`` (identical
    trails, different final results), ``boundary-mismatch`` (the two
    runs disagree about the boundary schedule itself), ``invariant``
    (an auditor identity broke), ``structured-error`` (a taxonomy error
    escaped a run that should have completed), and ``escape`` (a
    non-taxonomy exception — the hard taxonomy-oracle failure).
    """

    oracle: str
    kind: str
    detail: str
    components: tuple[str, ...] = ()
    exception_type: str | None = None

    @property
    def fingerprint(self) -> str:
        """Stable bucket key: oracle + kind + exception type + components."""
        material = "|".join(
            [self.oracle, self.kind, self.exception_type or "-",
             ",".join(self.components)]
        )
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def to_json(self) -> dict:
        return {
            "oracle": self.oracle,
            "kind": self.kind,
            "detail": self.detail,
            "components": list(self.components),
            "exception_type": self.exception_type,
            "fingerprint": self.fingerprint,
        }

    def same_bucket_shape(self, other: "FuzzFailure") -> bool:
        """Loose match the minimizer preserves while shrinking."""
        return (self.oracle, self.kind) == (other.oracle, other.kind)


@dataclass(slots=True)
class CaseOutcome:
    """What running the oracle stack over one case produced."""

    failure: FuzzFailure | None
    boundaries: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


def _classify_exception(oracle: str, exc: BaseException) -> FuzzFailure:
    """Map an escaped exception onto the oracle stack's failure shapes."""
    if isinstance(exc, InvariantViolation):
        return FuzzFailure(
            "auditor", "invariant", str(exc), exception_type=type(exc).__name__
        )
    if isinstance(exc, ReproError):
        return FuzzFailure(
            oracle, "structured-error", str(exc), exception_type=type(exc).__name__
        )
    return FuzzFailure(
        "taxonomy",
        "escape",
        f"{type(exc).__name__}: {exc}",
        exception_type=type(exc).__name__,
    )


def _result_mismatch_fields(a: SimulationResult, b: SimulationResult) -> tuple[str, ...]:
    return tuple(
        field.name
        for field in fields(SimulationResult)
        if getattr(a, field.name) != getattr(b, field.name)
    )


def _compare_runs(
    oracle: str,
    trail_a: DigestTrail,
    trail_b: DigestTrail,
    result_a: SimulationResult,
    result_b: SimulationResult,
) -> FuzzFailure | None:
    """Digest-trail plus final-result equality, localized on mismatch."""
    if trail_a.boundaries != trail_b.boundaries:
        return FuzzFailure(
            oracle,
            "boundary-mismatch",
            f"{len(trail_a.boundaries)} vs {len(trail_b.boundaries)} digested "
            "boundaries (the runs disagree about the boundary schedule)",
        )
    divergence = first_divergence(trail_a, trail_b)
    if divergence is not None:
        return FuzzFailure(
            oracle,
            "divergence",
            f"first divergence at boundary {divergence.boundary}: "
            + ", ".join(divergence.components),
            components=divergence.components,
        )
    if result_a != result_b:
        mismatched = _result_mismatch_fields(result_a, result_b)
        return FuzzFailure(
            oracle,
            "result-mismatch",
            "identical digest trails but different results; fields: "
            + ", ".join(mismatched),
            components=mismatched,
        )
    return None


def run_case(case: FuzzCase) -> CaseOutcome:
    """Run one case through its oracle stack; first failure wins.

    One plain reference run supplies the golden digest trail the
    ``engines`` and ``resume`` oracles compare against.  The ``auditor``
    oracle gets a run of its own: ``audit_hierarchy`` forces a
    ``sync_stats`` at every timeline boundary, which flushes pending
    counters into stats — state-*representation* churn that is
    digest-visible even though it is semantically idempotent, so an
    audited run can never serve as a digest baseline.  Riding separately
    also lets the oracle check the repo's standing guarantee that
    enabling the auditor changes no result.  The ``observability``
    oracle likewise gets a run of its own — a live hub attached to
    simulator and checkpointer, with the engine and a mid-run
    Prometheus-export toggle coined from ``rng_stream(case.seed,
    "observability")`` — whose trail and result must match the bare
    reference run's.  A full stack costs roughly five simulations plus
    one killed prefix.
    """
    started = time.perf_counter()
    want = set(case.oracles)

    def outcome(failure: FuzzFailure | None, boundaries: int = 0) -> CaseOutcome:
        return CaseOutcome(failure, boundaries, time.perf_counter() - started)

    try:
        reference = build_case(case, engine="reference")
        ref_checkpointer = SimulationCheckpointer(
            reference.simulator, reference.process, digest_every=case.digest_every
        )
        ref_result = reference.run(checkpoint_hook=ref_checkpointer)
    except Exception as exc:  # noqa: BLE001 — the stack classifies everything
        return outcome(_classify_exception("taxonomy", exc))
    boundaries = ref_checkpointer.boundaries_seen

    if "auditor" in want:
        try:
            audited = build_case(case, engine="reference", auditor=InvariantAuditor())
            audited_result = audited.run()
        except Exception as exc:  # noqa: BLE001 — the stack classifies everything
            return outcome(_classify_exception("auditor", exc), boundaries)
        if audited_result != ref_result:
            mismatched = _result_mismatch_fields(ref_result, audited_result)
            return outcome(
                FuzzFailure(
                    "auditor",
                    "result-mismatch",
                    "enabling the auditor changed the result; fields: "
                    + ", ".join(mismatched),
                    components=mismatched,
                ),
                boundaries,
            )

    if "engines" in want:
        try:
            fast = build_case(case, engine="fast")
            fast_checkpointer = SimulationCheckpointer(
                fast.simulator, fast.process, digest_every=case.digest_every
            )
            fast_result = fast.run(checkpoint_hook=fast_checkpointer)
        except Exception as exc:  # noqa: BLE001 — the stack classifies everything
            return outcome(_classify_exception("engines", exc), boundaries)
        failure = _compare_runs(
            "engines",
            ref_checkpointer.trail,
            fast_checkpointer.trail,
            ref_result,
            fast_result,
        )
        if failure is not None:
            return outcome(failure, boundaries)

    if "resume" in want and boundaries >= 2:
        abort_after = max(1, min(boundaries - 1, round(case.resume_frac * boundaries)))
        with TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            snapshot_path = Path(tmp) / "case.ckpt"
            try:
                first = build_case(case, engine="reference")
                first_checkpointer = SimulationCheckpointer(
                    first.simulator,
                    first.process,
                    path=snapshot_path,
                    checkpoint_every=1,
                    digest_every=case.digest_every,
                    abort_after=abort_after,
                )
                aborted = False
                try:
                    first.run(checkpoint_hook=first_checkpointer)
                except AbortSimulation:
                    aborted = True
                if not aborted:
                    return outcome(
                        FuzzFailure(
                            "resume",
                            "boundary-mismatch",
                            f"killed run finished in "
                            f"{first_checkpointer.boundaries_seen} boundaries, "
                            f"before the abort point ({abort_after}) the "
                            f"uninterrupted run's {boundaries} boundaries imply",
                        ),
                        boundaries,
                    )
                resumed = build_case(case, engine="reference")
                loop_state = resume_from_snapshot(resumed, snapshot_path)
                resumed_checkpointer = SimulationCheckpointer(
                    resumed.simulator, resumed.process, digest_every=case.digest_every
                )
                resumed_result = resumed.run(
                    checkpoint_hook=resumed_checkpointer, resume_state=loop_state
                )
            except Exception as exc:  # noqa: BLE001 — the stack classifies everything
                return outcome(_classify_exception("resume", exc), boundaries)
            stitched = DigestTrail()
            resume_boundary = loop_state["boundary"]
            for rec_boundary, digest_map in zip(
                first_checkpointer.trail.boundaries, first_checkpointer.trail.digests
            ):
                if rec_boundary <= resume_boundary:
                    stitched.record(rec_boundary, digest_map)
            for rec_boundary, digest_map in zip(
                resumed_checkpointer.trail.boundaries,
                resumed_checkpointer.trail.digests,
            ):
                stitched.record(rec_boundary, digest_map)
            failure = _compare_runs(
                "resume", ref_checkpointer.trail, stitched, ref_result, resumed_result
            )
            if failure is not None:
                return outcome(failure, boundaries)

    if "observability" in want:
        # Telemetry must be inert under *either* engine, and exporting
        # metrics mid-run must not perturb the simulation — coin both
        # from the case's own seed so replays are deterministic.
        obs_rng = rng_stream(case.seed, "observability")
        obs_engine = "fast" if obs_rng.random() < 0.5 else "reference"
        export_per_boundary = bool(obs_rng.random() < 0.5)
        try:
            hub = Observability()
            observed = build_case(case, engine=obs_engine, observability=hub)
            obs_checkpointer = SimulationCheckpointer(
                observed.simulator,
                observed.process,
                digest_every=case.digest_every,
                observability=hub,
            )
            hook = obs_checkpointer
            if export_per_boundary:

                def hook(state):
                    obs_checkpointer(state)
                    hub.render_prometheus()

            obs_result = observed.run(checkpoint_hook=hook)
        except Exception as exc:  # noqa: BLE001 — the stack classifies everything
            return outcome(_classify_exception("observability", exc), boundaries)
        failure = _compare_runs(
            "observability",
            ref_checkpointer.trail,
            obs_checkpointer.trail,
            ref_result,
            obs_result,
        )
        if failure is not None:
            return outcome(failure, boundaries)

    return outcome(None, boundaries)


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
_REGION_SIZES_MB = (0.5, 1.0, 2.0, 4.0, 6.0)
_TRACE_ACCESSES = (400, 800, 1600, 3200)
_BURSTS = (1, 2, 4, 8)


def _choice(rng: np.random.Generator, options):
    return options[int(rng.integers(len(options)))]


def _sample_leaf_pattern(rng: np.random.Generator, regions: list[str], pages: dict) -> dict:
    region = _choice(rng, regions)
    kind = _choice(rng, ("sequential", "shuffled", "uniform", "zipf", "strided"))
    burst = int(_choice(rng, _BURSTS))
    if kind == "sequential":
        return {
            "kind": kind,
            "region": region,
            "stride_pages": int(_choice(rng, (1, 1, 3, 7))),
            "burst": burst,
        }
    if kind == "shuffled":
        return {"kind": kind, "region": region, "burst": burst}
    if kind == "uniform":
        return {"kind": kind, "region": region, "burst": burst}
    if kind == "zipf":
        return {
            "kind": kind,
            "region": region,
            "alpha": float(_choice(rng, (0.5, 0.8, 1.1))),
            "burst": burst,
        }
    # strided: keep the span inside the region.
    region_pages = pages[region]
    stride = int(_choice(rng, (2, 5, 9, 17)))
    num_pages = max(1, min(64, (region_pages - 1) // stride + 1))
    return {
        "kind": "strided",
        "region": region,
        "num_pages": int(num_pages),
        "stride_pages": stride,
        "burst": burst,
    }


def _sample_pattern(rng: np.random.Generator, regions: list[str], pages: dict) -> dict:
    shape = rng.random()
    if shape < 0.25:
        return {
            "kind": "mixture",
            "components": [
                [_sample_leaf_pattern(rng, regions, pages), float(_choice(rng, (1.0, 2.0)))]
                for _ in range(2)
            ],
        }
    if shape < 0.45:
        return {
            "kind": "phased",
            "phases": [
                [_sample_leaf_pattern(rng, regions, pages), float(_choice(rng, (1.0, 2.0)))]
                for _ in range(int(_choice(rng, (2, 3))))
            ],
        }
    return _sample_leaf_pattern(rng, regions, pages)


def _sample_workload(rng: np.random.Generator) -> dict:
    num_regions = int(_choice(rng, (1, 2, 2, 3)))
    regions = []
    pages = {}
    for index in range(num_regions):
        name = f"r{index}"
        mb = float(_choice(rng, _REGION_SIZES_MB))
        thp_eligible = bool(rng.random() < 0.85)
        regions.append([name, mb, thp_eligible])
        pages[name] = max(1, round(mb * 256))
    return {
        "regions": regions,
        "pattern": _sample_pattern(rng, [r[0] for r in regions], pages),
        "instructions_per_access": float(_choice(rng, (1.0, 2.0, 3.0, 4.5))),
    }


def _sample_hierarchy(rng: np.random.Generator) -> dict:
    l1_ways = int(_choice(rng, (2, 4, 8)))
    l1_sets = int(_choice(rng, (8, 16, 32, 64)))
    l1_2mb_ways = int(_choice(rng, (2, 4)))
    l1_2mb_sets = int(_choice(rng, (4, 8, 16)))
    l2_ways = int(_choice(rng, (4, 8)))
    l2_sets = int(_choice(rng, (32, 64, 128)))
    return {
        "l1_4kb": [l1_sets * l1_ways, l1_ways],
        "l1_2mb": [l1_2mb_sets * l1_2mb_ways, l1_2mb_ways],
        "l1_1gb_entries": int(_choice(rng, (2, 4, 8))),
        "l2_page": [l2_sets * l2_ways, l2_ways],
        "l1_range_entries": int(_choice(rng, (2, 4, 8, 16))),
        "l2_range_entries": int(_choice(rng, (8, 16, 32, 64))),
    }


def _sample_lite(rng: np.random.Generator, config: str, accesses: int, ipa: float) -> dict | None:
    if config not in _LITE_CONFIGS:
        return None
    base = RMM_LITE_PARAMS if config in ("RMM_Lite", "RMM_PP_Lite") else TLB_LITE_PARAMS
    intervals = int(_choice(rng, (4, 8, 12, 20)))
    interval_instructions = max(30, round(accesses * ipa / intervals))
    threshold_mode = _choice(rng, (base.threshold_mode, "relative", "absolute"))
    return {
        "interval_instructions": interval_instructions,
        "threshold_mode": threshold_mode,
        "epsilon_relative": float(_choice(rng, (0.05, 0.125, 0.25))),
        "epsilon_absolute": float(_choice(rng, (0.05, 0.1, 0.5))),
        "reactivate_probability": float(_choice(rng, (0.0, 1 / 8, 1 / 64, 1 / 128, 1.0))),
        "min_ways": int(_choice(rng, (1, 1, 2))),
        "seed": int(rng.integers(1 << 16)),
    }


def _sample_trace(rng: np.random.Generator, accesses: int) -> tuple[dict, str]:
    faults = []
    on_fault = "raise"
    if rng.random() < 0.25:
        on_fault = "record"
        name = _choice(rng, sorted(TRACE_FAULTS))
        seed = int(rng.integers(1 << 16))
        kwargs = {
            "out_of_range": {"fraction": 0.01, "seed": seed},
            "negative": {"fraction": 0.01, "seed": seed},
            "truncate": {"keep_fraction": 0.5, "seed": seed},
            "duplicate_burst": {"bursts": 2, "burst_length": 64, "seed": seed},
        }[name]
        faults.append([name, kwargs])
    spec = {
        "kind": "generated",
        "accesses": accesses,
        "seed": int(rng.integers(1 << 16)),
        "faults": faults,
    }
    return spec, on_fault


def generate_case(seed: int, index: int) -> FuzzCase:
    """Deterministically sample case ``index`` of campaign ``seed``."""
    rng = rng_stream(seed, "case", index)
    # The observability oracle toggles on a stream of its own so that
    # adding it left every pre-existing ``case`` draw — and hence the
    # committed corpus — byte-stable.
    oracle_rng = rng_stream(seed, "case-oracles", index)
    oracles = (
        ORACLE_NAMES
        if oracle_rng.random() < 0.5
        else tuple(name for name in ORACLE_NAMES if name != "observability")
    )
    config = _choice(rng, FUZZ_CONFIG_NAMES)
    workload = _sample_workload(rng)
    accesses = int(_choice(rng, _TRACE_ACCESSES))
    trace, on_fault = _sample_trace(rng, accesses)
    events = None
    if rng.random() < 0.4:
        events = {
            "shootdowns": int(_choice(rng, (1, 2, 3))),
            "demotion_storms": int(_choice(rng, (0, 1, 2))),
            "demotion_fraction": float(_choice(rng, (0.25, 0.5, 1.0))),
            "seed": int(rng.integers(1 << 16)),
        }
    return FuzzCase(
        seed=int(rng.integers(1 << 31)),
        config=config,
        thp_coverage=float(_choice(rng, (0.0, 0.25, 0.5, 0.9, 1.0))),
        physical_mb=1024,
        hierarchy=_sample_hierarchy(rng),
        lite=_sample_lite(
            rng, config, accesses, workload["instructions_per_access"]
        ),
        sim={
            "fast_forward_fraction": float(_choice(rng, (0.0, 0.1, 0.25))),
            "timeline_windows": int(_choice(rng, (3, 5, 8, 12))),
            "walk_l1_hit_ratio": 1.0,
        },
        workload=workload,
        trace=trace,
        events=events,
        on_fault=on_fault,
        resume_frac=float(_choice(rng, (0.2, 0.4, 0.6, 0.8))),
        digest_every=int(_choice(rng, (1, 2, 3))),
        oracles=oracles,
    )


# ----------------------------------------------------------------------
# Reproducers and the corpus
# ----------------------------------------------------------------------
def write_reproducer(
    path, case: FuzzCase, failure: FuzzFailure, found: dict | None = None
) -> Path:
    """Atomically write a self-contained reproducer envelope."""
    envelope = {
        "corpus_version": CORPUS_VERSION,
        "fingerprint": failure.fingerprint,
        "failure": failure.to_json(),
        "case": case.to_json(),
        "found": dict(found or {}),
    }
    return atomic_write_json(path, envelope, indent=2)


def load_reproducer(path) -> tuple[FuzzCase, dict]:
    """Read a reproducer; returns ``(case, envelope)``.

    Rejects envelopes from other corpus versions, and envelopes whose
    key set does not match this build's schema, with
    :class:`repro.errors.ConfigurationError` — corpus files written by a
    newer build must fail loudly, never half-load.
    """
    import json

    path = Path(path)
    try:
        envelope = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ConfigurationError(f"no reproducer at {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable reproducer {path}: {exc}") from exc
    if not isinstance(envelope, dict):
        raise ConfigurationError(f"{path} is not a reproducer envelope")
    version = envelope.get("corpus_version")
    if version != CORPUS_VERSION:
        raise ConfigurationError(
            f"{path}: corpus version {version!r} unsupported "
            f"(this build reads version {CORPUS_VERSION})"
        )
    expected = {"corpus_version", "fingerprint", "failure", "case", "found"}
    unknown = sorted(set(envelope) - expected)
    missing = sorted(expected - set(envelope))
    if unknown or missing:
        raise ConfigurationError(
            f"{path} does not match this build's reproducer schema"
            + (f"; unknown keys: {', '.join(unknown)}" if unknown else "")
            + (f"; missing keys: {', '.join(missing)}" if missing else "")
        )
    return FuzzCase.from_json(envelope["case"]), envelope


def corpus_paths(corpus_dir) -> list[Path]:
    """Reproducer files in a corpus directory, deterministically ordered."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return sorted(p for p in corpus_dir.glob("*.json"))


@dataclass(slots=True)
class ReplayedCase:
    """Outcome of re-running one corpus reproducer."""

    path: Path
    fingerprint: str  # the stored bucket fingerprint
    outcome: CaseOutcome

    @property
    def status(self) -> str:
        if self.outcome.ok:
            return "pass"
        if self.outcome.failure.fingerprint == self.fingerprint:
            return "fail"
        return "fail-other"


def replay_corpus(paths) -> list[ReplayedCase]:
    """Deterministically re-run reproducers; a clean corpus is all-pass."""
    replayed = []
    for path in paths:
        case, envelope = load_reproducer(path)
        replayed.append(
            ReplayedCase(Path(path), envelope["fingerprint"], run_case(case))
        )
    return replayed


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FuzzReport:
    """Summary of one ``fuzz run`` campaign."""

    seed: int
    cases_run: int = 0
    cases_requested: int = 0
    failures: list[dict] = None  # type: ignore[assignment]
    new_reproducers: list[Path] = None  # type: ignore[assignment]
    seconds: float = 0.0
    budget_exhausted: bool = False

    def __post_init__(self) -> None:
        if self.failures is None:
            self.failures = []
        if self.new_reproducers is None:
            self.new_reproducers = []

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    max_seconds: float | None = None,
    corpus_dir=None,
    minimize: bool = True,
    minimize_evaluations: int = 160,
    log=None,
) -> FuzzReport:
    """Generate-and-check ``cases`` scenarios; minimize and bucket failures.

    ``corpus_dir`` (when given) receives one minimized reproducer per new
    bucket fingerprint; fingerprints that already have a file are not
    rewritten, so an existing corpus is append-only.  ``max_seconds``
    time-boxes the campaign (the CI mode): generation stops once the
    budget is spent, and the report says so.
    """
    from .minimize import minimize_case

    report = FuzzReport(seed=seed, cases_requested=cases)
    started = time.perf_counter()
    existing = {path.stem for path in corpus_paths(corpus_dir)} if corpus_dir else set()
    for index in range(cases):
        if max_seconds is not None and time.perf_counter() - started >= max_seconds:
            report.budget_exhausted = True
            break
        case = generate_case(seed, index)
        outcome = run_case(case)
        report.cases_run += 1
        if outcome.ok:
            continue
        failure = outcome.failure
        entry = {
            "index": index,
            "config": case.config,
            "failure": failure,
            "case": case,
            "minimized": None,
        }
        if log is not None:
            log(
                f"case {index} ({case.config}): {failure.oracle}/{failure.kind} "
                f"[{failure.fingerprint}]"
            )
        if minimize:
            result = minimize_case(
                case, failure, max_evaluations=minimize_evaluations
            )
            entry["case"] = result.case
            entry["failure"] = result.failure
            entry["minimized"] = {
                "evaluations": result.evaluations,
                "original_entries": result.original_entries,
                "entries": result.entries,
            }
            failure = result.failure
            case = result.case
        if corpus_dir is not None and failure.fingerprint not in existing:
            path = Path(corpus_dir) / f"{failure.fingerprint}.json"
            write_reproducer(
                path,
                case,
                failure,
                found={
                    "campaign_seed": seed,
                    "case_index": index,
                    "minimized": entry["minimized"],
                },
            )
            existing.add(failure.fingerprint)
            report.new_reproducers.append(path)
        report.failures.append(entry)
    report.seconds = time.perf_counter() - started
    return report


def minimize_reproducer(path, out_path=None, max_evaluations: int = 160) -> Path:
    """Re-minimize an existing reproducer file in place (or to ``out_path``)."""
    from .minimize import minimize_case

    case, envelope = load_reproducer(path)
    outcome = run_case(case)
    if outcome.ok:
        raise FuzzError(
            f"{path}: the case no longer fails on this build; "
            "nothing to minimize (delete it if the bug is fixed "
            "and it is not wanted as a regression guard)"
        )
    result = minimize_case(case, outcome.failure, max_evaluations=max_evaluations)
    destination = Path(out_path) if out_path is not None else Path(path)
    return write_reproducer(
        destination,
        result.case,
        result.failure,
        found={
            **envelope.get("found", {}),
            "reminimized": {
                "evaluations": result.evaluations,
                "original_entries": result.original_entries,
                "entries": result.entries,
            },
        },
    )
