"""Resilient sweep runner: checkpointed, isolated, resumable matrices.

The paper's figures come from (workload × configuration) sweeps that can
run for hours at full scale; a crash in cell 47 of 60 must not cost the
previous 46.  This runner hardens :func:`repro.analysis.experiments.run_matrix`
with:

* **per-cell isolation** — one cell's exception never kills the sweep;
  the cell is marked failed and the matrix continues;
* **retry with backoff** — transient failures get ``retries`` further
  attempts with exponential backoff before the cell is given up;
* **per-cell wall-clock timeouts** — a hung cell is abandoned (the
  worker thread is a daemon) and marked ``timeout``;
* **a JSON checkpoint journal** — every completed cell is appended (and
  fsynced) to a JSON-lines journal keyed by a fingerprint of the matrix,
  so an interrupted sweep resumes exactly where it stopped;
* **partial-result reporting** — the report distinguishes ``ok``,
  ``resumed`` (loaded from the journal), ``failed``, ``timeout``, and
  ``skipped`` cells instead of silently dropping them.

Determinism contract: a resumed sweep produces byte-identical result rows
to an uninterrupted one, because rows for already-completed cells are
replayed verbatim from the journal and fresh cells are seeded exactly as
the original run would have seeded them.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import hashlib

from ..analysis.experiments import ExperimentSettings, prepare_run
from ..core.organizations import CONFIG_NAMES
from ..errors import SweepError, TransientSimulationError
from ..ioutils import atomic_write_json, atomic_write_text
from .auditor import InvariantAuditor
from .checkpoint import SimulationCheckpointer, resume_from_snapshot

#: Journal schema version.  v2 adds ``{"kind": "quarantined", ...}`` rows
#: (poison cells the supervisor gave up on); v1 journals had no ``kind``
#: discriminator, so mis-parsing them silently would surface quarantine
#: rows as missing cells — loading rejects any other version outright.
JOURNAL_VERSION = 2


class _CellTimeout(Exception):
    """Internal marker: the cell exceeded its wall-clock budget."""


def result_row(result) -> dict:
    """Stable JSON-serializable row for one finished cell.

    Only derived scalars — floats serialize via ``repr`` (shortest
    round-trip form), so identical simulations yield identical bytes.
    """
    return {
        "workload": result.workload,
        "configuration": result.configuration,
        "accesses": result.accesses,
        "instructions": result.instructions,
        "l1_misses": result.l1_misses,
        "l2_misses": result.l2_misses,
        "page_walks": result.page_walks,
        "total_energy_pj": result.total_energy_pj,
        "energy_per_access_pj": result.energy_per_access_pj,
        "l1_mpki": result.l1_mpki,
        "l2_mpki": result.l2_mpki,
        "miss_cycles": result.miss_cycles,
        "faulted_accesses": result.faulted_accesses,
    }


def _fingerprint(
    workload_names: list[str],
    config_names: tuple[str, ...],
    settings: ExperimentSettings,
) -> dict:
    return {
        "workloads": list(workload_names),
        "configurations": list(config_names),
        "trace_accesses": settings.trace_accesses,
        "seed": settings.seed,
        "thp_coverage": settings.thp_coverage,
        "physical_bytes": settings.physical_bytes,
    }


def _cell_key(workload_name: str, config_name: str) -> str:
    return f"{workload_name}|{config_name}"


@dataclass(slots=True)
class JournalState:
    """Everything a resume needs from a journal: rows and quarantines."""

    completed: dict[str, dict] = field(default_factory=dict)
    quarantined: dict[str, dict] = field(default_factory=dict)


class SweepJournal:
    """Append-only JSON-lines checkpoint of completed sweep cells.

    Line 1 is a header with the matrix fingerprint; each further line is
    either a completed cell ``{"key": ..., "row": {...}}`` or a poison
    cell ``{"kind": "quarantined", "key": ..., "crashes": N, "error":
    ...}``.  Appends are flushed and fsynced so a kill loses at most the
    cell in flight; a torn trailing line (partial write) is tolerated and
    ignored on load.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def start(self, fingerprint: dict) -> None:
        """Atomically (re)create the journal with a fresh header.

        Atomic replace, not truncate-then-write: a kill between truncation
        and the header write would otherwise leave an empty journal that a
        later ``--resume`` rejects as corrupt.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            {"journal_version": JOURNAL_VERSION, "fingerprint": fingerprint},
            sort_keys=True,
        )
        atomic_write_text(self.path, header + "\n")

    def load(self, fingerprint: dict) -> dict[str, dict]:
        """Completed rows keyed by cell; validates the fingerprint."""
        return self.load_state(fingerprint).completed

    def load_state(self, fingerprint: dict | None) -> JournalState:
        """Full journal state (completed + quarantined cells).

        Validates the schema version and — unless ``fingerprint`` is
        ``None`` — that the journal belongs to the requested matrix.
        """
        if not self.exists():
            raise SweepError(f"no journal to resume at {self.path}")
        state = JournalState()
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise SweepError(f"journal {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SweepError(f"journal {self.path} has a corrupt header") from exc
        version = header.get("journal_version")
        if version != JOURNAL_VERSION:
            # Old journals must fail loudly, not mis-parse: a v1 reader
            # would surface v2 quarantine rows as silently missing cells
            # (and vice versa), corrupting a resumed sweep's accounting.
            raise SweepError(
                f"journal {self.path} uses schema version {version!r}; this "
                f"build reads only version {JOURNAL_VERSION}. Old journals "
                "cannot carry quarantine rows — re-run the sweep without "
                "--resume (or finish it with the build that wrote it)."
            )
        if fingerprint is not None and header.get("fingerprint") != fingerprint:
            raise SweepError(
                f"journal {self.path} was written for a different matrix; "
                "refusing to resume (delete it or match the original settings)"
            )
        for number, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line is the expected signature of a mid-write
                # kill; garbage anywhere costs only that cell (it re-runs).
                warnings.warn(
                    f"journal {self.path} line {number} is truncated or "
                    "corrupt; ignoring it (the cell will be re-run)",
                    stacklevel=2,
                )
                continue
            if record.get("kind") == "quarantined" and "key" in record:
                state.quarantined[record["key"]] = {
                    "crashes": record.get("crashes", 0),
                    "error": record.get("error"),
                }
            elif "key" in record and "row" in record:
                state.completed[record["key"]] = record["row"]
        return state

    def append(self, key: str, row: dict) -> None:
        self._append_record({"key": key, "row": row})

    def append_quarantine(self, key: str, crashes: int, error: str) -> None:
        """Journal a poison cell so ``--resume`` skips it."""
        self._append_record(
            {"kind": "quarantined", "key": key, "crashes": crashes, "error": error}
        )

    def _append_record(self, record: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def digest(self) -> str:
        """Order-independent sha256 over the journal's completed rows.

        Two sweeps of the same matrix agree on this digest iff they
        produced identical result rows, regardless of the completion
        order their worker schedules happened to journal them in — the
        comparison the chaos CI job makes between a kill-riddled parallel
        sweep and an unfaulted serial one.
        """
        state = self.load_state(fingerprint=None)
        canonical = json.dumps(sorted(state.completed.items()), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


class CrashLedger:
    """Crash tallies for in-flight cells, persisted beside the journal.

    Lives *outside* the journal on purpose: the journal's byte-identity
    contract (a resumed sweep's journal equals an uninterrupted run's)
    must hold even when transient crashes forced retries, so per-attempt
    crash records cannot go into the journal itself.  Only the terminal
    quarantine decision does.  The ledger survives restarts so a poison
    cell's crash count keeps accumulating across ``--resume`` cycles
    instead of resetting and dodging quarantine forever.
    """

    def __init__(self, journal_path=None) -> None:
        #: ``None`` (no journal) keeps the tallies in memory only.
        self.path = (
            Path(str(journal_path) + ".crashes.json")
            if journal_path is not None
            else None
        )
        self._counts: dict[str, int] = {}

    def load(self) -> None:
        if self.path is None or not self.path.exists():
            self._counts = {}
            return
        try:
            self._counts = {
                str(key): int(value)
                for key, value in json.loads(self.path.read_text()).items()
            }
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"crash ledger {self.path} is unreadable ({exc}); "
                "crash counts restart from zero",
                stacklevel=2,
            )
            self._counts = {}

    def count(self, key: str) -> int:
        return self._counts.get(key, 0)

    def bump(self, key: str) -> int:
        """Record one crash; returns the new tally (persisted atomically)."""
        self._counts[key] = self._counts.get(key, 0) + 1
        if self.path is not None:
            atomic_write_json(self.path, self._counts)
        return self._counts[key]

    def reset(self) -> None:
        self._counts = {}
        if self.path is not None and self.path.exists():
            self.path.unlink()


@dataclass(slots=True)
class SweepCell:
    """Outcome of one (workload, configuration) cell."""

    workload: str
    configuration: str
    #: ok | resumed | failed | timeout | skipped — plus, under the
    #: process supervisor: oom (memory budget breached), quarantined
    #: (poison cell journaled and skipped), interrupted (graceful
    #: shutdown drained this cell mid-trace; it resumes next run).
    status: str
    row: dict | None = None
    error: str | None = None
    attempts: int = 0
    seconds: float = 0.0
    #: Final observability snapshot (``metrics=True`` sweeps only).  For a
    #: crashed/timed-out cell under the supervisor this is the last
    #: heartbeat's cumulative snapshot — best-effort, never authoritative.
    metrics: dict | None = None

    @property
    def completed(self) -> bool:
        return self.status in ("ok", "resumed")


@dataclass(slots=True)
class SweepReport:
    """Every cell of one sweep, completed or not."""

    cells: list[SweepCell] = field(default_factory=list)
    interrupted: bool = False
    #: Aggregated metrics document ({"cells": ..., "totals": ...}) when
    #: the sweep ran with ``metrics=True``; mirrored to the
    #: ``<journal>.metrics.json`` sidecar when a journal is in use.
    metrics: dict | None = None

    def rows(self) -> list[dict]:
        return [cell.row for cell in self.cells if cell.completed]

    def cell(self, workload: str, configuration: str) -> SweepCell | None:
        for cell in self.cells:
            if cell.workload == workload and cell.configuration == configuration:
                return cell
        return None

    @property
    def completed_count(self) -> int:
        return sum(1 for cell in self.cells if cell.completed)

    @property
    def failed_cells(self) -> list[SweepCell]:
        return [
            cell
            for cell in self.cells
            if cell.status in ("failed", "timeout", "oom", "quarantined")
        ]

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return ", ".join(f"{status}: {count}" for status, count in sorted(counts.items()))


def _run_with_timeout(fn, timeout_s: float | None):
    """Run ``fn`` with a wall-clock budget; raise :class:`_CellTimeout`.

    This is the **in-process fallback** (``workers=None``), kept for
    platforms and callers that cannot fork (and for in-process test hooks
    like ``checkpoint_hook_factory``).  Python cannot kill a thread, so
    on timeout the daemon worker is *abandoned* and keeps burning a CPU
    until the interpreter exits — the cell's wall clock is reclaimed, its
    core is not.  That silent leak is why the process supervisor
    (``workers=N`` / ``--workers``) is the default execution engine: it
    SIGKILLs the timed-out worker process and actually frees the core.
    A warning makes the leak visible whenever this path must abandon a
    thread.
    """
    if timeout_s is None:
        return fn()
    box: dict = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — marshalled to caller
            box["error"] = exc

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        warnings.warn(
            f"cell exceeded its {timeout_s} s budget in the in-process "
            "timeout path; the worker thread cannot be killed and will "
            "keep consuming CPU until the process exits. Use the process "
            "supervisor (workers=N / --workers) for hard-kill timeouts.",
            RuntimeWarning,
            stacklevel=2,
        )
        raise _CellTimeout(f"cell exceeded {timeout_s} s")
    if "error" in box:
        raise box["error"]
    return box["value"]


def _cell_checkpoint_path(journal_path: Path, key: str) -> Path:
    """Snapshot file for one in-flight cell, derived from the journal path."""
    safe_key = key.replace("|", "--").replace(os.sep, "_")
    return journal_path.with_name(f"{journal_path.name}.{safe_key}.ckpt")


def run_resilient_sweep(
    workloads,
    config_names: tuple[str, ...] = CONFIG_NAMES,
    settings: ExperimentSettings | None = None,
    journal_path=None,
    resume: bool = False,
    retries: int = 1,
    backoff_s: float = 0.05,
    cell_timeout_s: float | None = None,
    audit: bool = False,
    max_cells: int | None = None,
    progress=None,
    checkpoint_every: int | None = None,
    checkpoint_hook_factory=None,
    workers: int | None = None,
    quarantine_after: int = 3,
    heartbeat_timeout_s: float | None = None,
    memory_limit_mb: int | None = None,
    chaos=None,
    metrics: bool = False,
) -> SweepReport:
    """Run the (workload × configuration) matrix with full hardening.

    Parameters beyond the matrix itself:

    ``journal_path`` / ``resume``
        Enable the checkpoint journal; with ``resume`` the journal's
        completed cells are replayed instead of re-simulated.
    ``retries`` / ``backoff_s``
        Extra attempts per failing cell with exponential backoff
        (:class:`repro.errors.TransientSimulationError` and any other
        exception alike; timeouts are not retried).
    ``cell_timeout_s``
        Wall-clock budget per attempt.
    ``audit``
        Attach a fresh :class:`InvariantAuditor` to every cell.
    ``max_cells``
        Stop after this many *executed* cells (test hook that simulates a
        mid-matrix kill; remaining cells are reported as ``skipped``).
    ``progress``
        Optional callable invoked with each finished :class:`SweepCell`.
    ``checkpoint_every``
        Snapshot the in-flight cell's full simulation state every N
        interval boundaries (see :mod:`repro.resilience.checkpoint`),
        next to the journal.  With ``resume``, a surviving snapshot
        restores the interrupted cell *mid-trace* instead of restarting
        it; the snapshot is deleted once its cell completes.  Requires a
        ``journal_path``.
    ``checkpoint_hook_factory``
        Test hook: ``factory(checkpointer)`` is called with each cell's
        :class:`SimulationCheckpointer` before the run starts (e.g. to
        set ``abort_after`` and simulate a mid-cell kill).
    ``workers``
        ``None`` (default) keeps this in-process execution path.  Any
        integer ≥ 1 delegates the whole sweep to the **process
        supervisor** (:mod:`repro.resilience.supervisor`): every cell in
        its own OS process, hard SIGKILL timeouts, heartbeat hang
        detection, memory budgets, crash quarantine, and graceful
        SIGINT/SIGTERM shutdown.  ``quarantine_after``,
        ``heartbeat_timeout_s``, ``memory_limit_mb``, and ``chaos``
        (a :class:`repro.resilience.faults.ChaosPolicy`) only apply
        there.
    ``metrics``
        Run every cell with an :class:`repro.observability.Observability`
        hub and aggregate the per-cell snapshots onto ``report.metrics``
        (and, with a journal, into the ``<journal>.metrics.json``
        sidecar).  The journal itself stays byte-identical to a
        metrics-off sweep — telemetry never enters result rows.
    """
    if workers is not None:
        if checkpoint_hook_factory is not None:
            raise SweepError(
                "checkpoint_hook_factory is an in-process test hook; it "
                "cannot cross the worker process boundary (use chaos=... "
                "or workers=None)"
            )
        from .supervisor import run_supervised_sweep

        return run_supervised_sweep(
            workloads,
            config_names,
            settings,
            journal_path=journal_path,
            resume=resume,
            retries=retries,
            backoff_s=backoff_s,
            cell_timeout_s=cell_timeout_s,
            audit=audit,
            max_cells=max_cells,
            progress=progress,
            checkpoint_every=checkpoint_every,
            workers=workers,
            quarantine_after=quarantine_after,
            heartbeat_timeout_s=heartbeat_timeout_s,
            memory_limit_mb=memory_limit_mb,
            chaos=chaos,
            metrics=metrics,
        )

    settings = settings or ExperimentSettings()
    workloads = list(workloads)
    fingerprint = _fingerprint([w.name for w in workloads], config_names, settings)
    journal = SweepJournal(journal_path) if journal_path is not None else None
    journal_state = JournalState()
    if journal is not None:
        if resume and journal.exists():
            journal_state = journal.load_state(fingerprint)
        else:
            # Fresh sweep (or resume with nothing to resume yet).
            journal.start(fingerprint)
    elif resume:
        raise SweepError("--resume requires a journal path")
    if checkpoint_every is not None and journal is None:
        raise SweepError("checkpoint_every requires a journal path")
    completed = journal_state.completed

    report = SweepReport()
    executed = 0
    for workload in workloads:
        for config_name in config_names:
            key = _cell_key(workload.name, config_name)
            if key in journal_state.quarantined:
                info = journal_state.quarantined[key]
                cell = SweepCell(
                    workload=workload.name,
                    configuration=config_name,
                    status="quarantined",
                    error=info.get("error"),
                    attempts=info.get("crashes", 0),
                )
                report.cells.append(cell)
                if progress is not None:
                    progress(cell)
                continue
            checkpoint_path = (
                _cell_checkpoint_path(journal.path, key)
                if checkpoint_every is not None
                else None
            )
            if key in completed:
                if checkpoint_path is not None and checkpoint_path.exists():
                    checkpoint_path.unlink()  # stale: the cell is journaled
                cell = SweepCell(
                    workload=workload.name,
                    configuration=config_name,
                    status="resumed",
                    row=completed[key],
                )
                report.cells.append(cell)
                if progress is not None:
                    progress(cell)
                continue
            if max_cells is not None and executed >= max_cells:
                report.interrupted = True
                cell = SweepCell(
                    workload=workload.name,
                    configuration=config_name,
                    status="skipped",
                )
                report.cells.append(cell)
                continue
            cell = _run_cell(
                workload,
                config_name,
                settings,
                retries=retries,
                backoff_s=backoff_s,
                cell_timeout_s=cell_timeout_s,
                audit=audit,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                resume_cell=resume,
                checkpoint_hook_factory=checkpoint_hook_factory,
                metrics=metrics,
            )
            executed += 1
            if cell.completed and journal is not None:
                journal.append(key, cell.row)
                if checkpoint_path is not None and checkpoint_path.exists():
                    checkpoint_path.unlink()  # resume point superseded
            report.cells.append(cell)
            if progress is not None:
                progress(cell)
    if metrics:
        from ..observability import (
            aggregate_cell_metrics,
            metrics_sidecar_path,
            write_metrics_sidecar,
        )

        fresh = {
            _cell_key(cell.workload, cell.configuration): cell.metrics
            for cell in report.cells
            if cell.metrics is not None
        }
        existing = (
            metrics_sidecar_path(journal.path)
            if journal is not None and resume
            else None
        )
        report.metrics = aggregate_cell_metrics(fresh, existing)
        if journal is not None:
            write_metrics_sidecar(journal.path, report.metrics)
    return report


def _run_cell(
    workload,
    config_name: str,
    settings: ExperimentSettings,
    retries: int,
    backoff_s: float,
    cell_timeout_s: float | None,
    audit: bool,
    checkpoint_path: Path | None = None,
    checkpoint_every: int | None = None,
    resume_cell: bool = False,
    checkpoint_hook_factory=None,
    metrics: bool = False,
) -> SweepCell:
    """One isolated cell: attempts, backoff, timeout, structured outcome."""
    cell = SweepCell(workload=workload.name, configuration=config_name, status="failed")
    started = time.perf_counter()
    delay = backoff_s
    for attempt in range(retries + 1):
        cell.attempts = attempt + 1
        try:
            def simulate(attempt=attempt):
                observability = None
                if metrics:
                    from ..observability import Observability

                    observability = Observability()
                auditor = InvariantAuditor() if audit else None
                prepared = prepare_run(
                    workload,
                    config_name,
                    settings,
                    auditor=auditor,
                    on_fault="record",
                    observability=observability,
                )
                resume_state = None
                if (
                    resume_cell
                    and attempt == 0
                    and checkpoint_path is not None
                    and checkpoint_path.exists()
                ):
                    # Mid-cell restart: restore the interrupted simulation
                    # instead of re-running its prefix.  Retries start
                    # clean — a snapshot that keeps failing to restore
                    # must not poison every attempt.
                    resume_state = resume_from_snapshot(prepared, checkpoint_path)
                hook = None
                if checkpoint_path is not None and checkpoint_every is not None:
                    hook = SimulationCheckpointer(
                        prepared.simulator,
                        prepared.process,
                        path=checkpoint_path,
                        checkpoint_every=checkpoint_every,
                        meta={
                            "workload": workload.name,
                            "configuration": config_name,
                        },
                        observability=observability,
                    )
                    if checkpoint_hook_factory is not None:
                        checkpoint_hook_factory(hook)
                result = prepared.run(
                    checkpoint_hook=hook, resume_state=resume_state
                )
                snapshot = (
                    observability.snapshot() if observability is not None else None
                )
                return result_row(result), snapshot

            cell.row, cell.metrics = _run_with_timeout(simulate, cell_timeout_s)
            cell.status = "ok"
            cell.error = None
            break
        except _CellTimeout as exc:
            cell.status = "timeout"
            cell.error = str(exc)
            break  # a hung cell will hang again; don't retry
        except TransientSimulationError as exc:
            cell.status = "failed"
            cell.error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 — per-cell isolation
            cell.status = "failed"
            cell.error = f"{type(exc).__name__}: {exc}"
        if attempt < retries:
            time.sleep(delay)
            delay *= 2
    cell.seconds = time.perf_counter() - started
    return cell
