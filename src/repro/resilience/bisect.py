"""Divergence bisection: find where two runs of one cell stop agreeing.

When two runs that *should* be identical produce different reports —
fresh vs. resumed-from-checkpoint, two builds of the simulator, a clean
trace vs. a perturbed one — the interesting question is not *that* they
differ but *where* they first differ: which interval boundary, and which
component (one TLB? the page table? the Lite RNG stream?).

This module drives :mod:`repro.resilience.checkpoint` through the
canonical pipeline to answer that:

* :func:`record_digest_trail` runs one cell and records per-component
  sha256 digests at every Nth interval boundary;
* :func:`record_resumed_trail` runs the same cell, kills it after K
  boundaries (with a snapshot on disk), rebuilds the pipeline, resumes
  from the snapshot, and stitches the two digest trails together — the
  fresh-vs-resumed comparison behind the determinism CI job;
* :func:`bisect_divergence` binary-searches two trails for the first
  diverging boundary and names the diverging components.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.experiments import ExperimentSettings, prepare_run
from ..errors import CheckpointError
from .checkpoint import (
    AbortSimulation,
    DigestTrail,
    Divergence,
    SimulationCheckpointer,
    first_divergence,
    resume_from_snapshot,
)
from .faults import TRACE_FAULTS


@dataclass(slots=True)
class TrailRun:
    """A digest trail plus the finished result it was recorded from."""

    trail: DigestTrail
    result: object  # SimulationResult
    boundaries: int


def _prepare(
    workload,
    config_name,
    settings,
    trace_fault,
    fault_seed,
    engine="reference",
    observability=None,
):
    """Canonical cell build, optionally with a perturbed trace."""
    # Perturbed traces produce unmappable VPNs; the simulator must survive
    # them (tolerant mode) for the trail to reach the end of the trace.
    on_fault = "record" if trace_fault is not None else "raise"
    prepared = prepare_run(
        workload,
        config_name,
        settings,
        on_fault=on_fault,
        engine=engine,
        observability=observability,
    )
    if trace_fault is not None:
        try:
            inject = TRACE_FAULTS[trace_fault]
        except KeyError:
            raise CheckpointError(
                f"unknown trace fault {trace_fault!r}; "
                f"choose from {sorted(TRACE_FAULTS)}"
            ) from None
        prepared.trace = inject(prepared.trace, seed=fault_seed)
    return prepared


def record_digest_trail(
    workload,
    config_name: str,
    settings: ExperimentSettings | None = None,
    digest_every: int = 1,
    trace_fault: str | None = None,
    fault_seed: int = 0,
    engine: str = "reference",
    observability=None,
) -> TrailRun:
    """Run one cell start-to-finish, recording digests every Nth boundary.

    ``engine`` selects the simulator drain engine, so two trails of the
    same cell under ``"reference"`` and ``"fast"`` can be bisected
    against each other to localize an engine divergence.

    ``observability`` threads a telemetry hub through the simulator and
    the checkpointer — the inertness suite records trails with the hub
    on and off and proves them identical.
    """
    settings = settings or ExperimentSettings()
    prepared = _prepare(
        workload, config_name, settings, trace_fault, fault_seed, engine, observability
    )
    checkpointer = SimulationCheckpointer(
        prepared.simulator,
        prepared.process,
        digest_every=digest_every,
        observability=observability,
    )
    result = prepared.run(checkpoint_hook=checkpointer)
    return TrailRun(
        trail=checkpointer.trail,
        result=result,
        boundaries=checkpointer.boundaries_seen,
    )


def record_resumed_trail(
    workload,
    config_name: str,
    settings: ExperimentSettings | None = None,
    digest_every: int = 1,
    abort_after: int = 3,
    snapshot_path=None,
    trace_fault: str | None = None,
    fault_seed: int = 0,
    engine: str = "reference",
    observability=None,
) -> TrailRun:
    """Kill the cell after ``abort_after`` boundaries, then resume and finish.

    The snapshot written at the kill point is loaded into a *freshly
    rebuilt* pipeline (new process, new organization, new simulator), so
    the resumed half shares no live objects with the first — exactly the
    restart-after-crash scenario.  The returned trail stitches both
    halves; compare it against :func:`record_digest_trail`'s to prove (or
    bisect) resume determinism.
    """
    if snapshot_path is None:
        raise CheckpointError("record_resumed_trail needs a snapshot_path")
    settings = settings or ExperimentSettings()
    first = _prepare(
        workload, config_name, settings, trace_fault, fault_seed, engine, observability
    )
    first_checkpointer = SimulationCheckpointer(
        first.simulator,
        first.process,
        path=snapshot_path,
        checkpoint_every=1,
        digest_every=digest_every,
        abort_after=abort_after,
        observability=observability,
    )
    try:
        first.run(checkpoint_hook=first_checkpointer)
        raise CheckpointError(
            f"run finished in {first_checkpointer.boundaries_seen} boundaries, "
            f"before the abort point ({abort_after}); nothing to resume"
        )
    except AbortSimulation:
        pass

    resumed = _prepare(
        workload, config_name, settings, trace_fault, fault_seed, engine, observability
    )
    loop_state = resume_from_snapshot(resumed, snapshot_path)
    resumed_checkpointer = SimulationCheckpointer(
        resumed.simulator,
        resumed.process,
        digest_every=digest_every,
        observability=observability,
    )
    result = resumed.run(
        checkpoint_hook=resumed_checkpointer, resume_state=loop_state
    )

    trail = DigestTrail()
    resume_boundary = loop_state["boundary"]
    for boundary, digest_map in zip(
        first_checkpointer.trail.boundaries, first_checkpointer.trail.digests
    ):
        if boundary <= resume_boundary:
            trail.record(boundary, digest_map)
    for boundary, digest_map in zip(
        resumed_checkpointer.trail.boundaries, resumed_checkpointer.trail.digests
    ):
        trail.record(boundary, digest_map)
    return TrailRun(
        trail=trail,
        result=result,
        boundaries=resume_boundary + resumed_checkpointer.boundaries_seen,
    )


def bisect_divergence(trail_a: DigestTrail, trail_b: DigestTrail) -> Divergence | None:
    """First boundary and components where two trails disagree (or None)."""
    return first_divergence(trail_a, trail_b)


def describe_divergence(divergence: Divergence | None) -> str:
    """Human-readable one/two-line verdict for the CLI."""
    if divergence is None:
        return "no divergence: every recorded boundary has identical state digests"
    components = ", ".join(divergence.components) or "(no component differs?)"
    return (
        f"first divergence at boundary {divergence.boundary} "
        f"(record #{divergence.index + 1})\n"
        f"diverging components: {components}"
    )
