"""Runtime invariant auditing: a sanitizer mode for the simulator.

The paper's headline numbers are ratios of accumulated counters, so a
single silently-miscounted statistic corrupts a whole figure without any
visible failure.  The :class:`InvariantAuditor` turns the accounting
identities the codebase relies on into executable checks:

* **conservation** — every memory operation is either attributed to a
  serving structure or counted as an L1 miss; L2 misses never exceed L1
  misses; page walks match L2 misses (up to recorded faults);
* **histogram consistency** — the per-way lookup histograms that feed the
  energy model sum to exactly the hit+miss counters;
* **energy closure** — component energies are non-negative and sum to
  ``total_energy_pj``; recomputing the model from the bindings reproduces
  the reported breakdown;
* **structure sanity** — Lite's active-way counts stay inside
  ``[min, ways]`` and remain powers of two; every set-associative LRU
  stack holds unique keys within its active capacity (a permutation of a
  subset of resident keys, never duplicated or overfull).

A failed check raises :class:`repro.errors.InvariantViolation` with the
numbers that went into it.  The auditor is read-only (it only forces a
stats sync, which is idempotent), so enabling it must not change any
result — ``tests/test_robustness.py`` guards that property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvariantViolation


@dataclass(slots=True)
class InvariantAuditor:
    """Checks accounting identities during and after a simulation.

    Parameters
    ----------
    tolerance:
        Absolute slack for floating-point identities (energy sums).
    """

    tolerance: float = 1e-6
    checks_run: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)
    raise_on_violation: bool = True

    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str, context: dict) -> None:
        violation = InvariantViolation(invariant, message, context)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    def _check(self, condition: bool, invariant: str, message: str, context: dict) -> None:
        self.checks_run += 1
        if not condition:
            self._fail(invariant, message, context)

    # ------------------------------------------------------------------
    # Live-hierarchy checks (run mid-simulation and at the end)
    # ------------------------------------------------------------------
    def audit_hierarchy(self, hierarchy, lite=None, faulted_accesses: int = 0) -> None:
        """Check a live hierarchy's counters against each other."""
        from ..core.hierarchy import PredictedMixedHierarchy
        from ..tlb.set_assoc import SetAssociativeTLB

        hierarchy.sync_stats()
        accesses = hierarchy.accesses
        l1_misses = hierarchy.l1_misses
        l2_misses = hierarchy.l2_misses
        counts = {
            "accesses": accesses,
            "l1_misses": l1_misses,
            "l2_misses": l2_misses,
        }
        self._check(
            accesses >= 0 and l1_misses >= 0 and l2_misses >= 0,
            "non-negative-counters",
            "hierarchy counters must be non-negative",
            counts,
        )
        self._check(
            l1_misses <= accesses,
            "miss-bound",
            "L1 misses cannot exceed accesses",
            counts,
        )
        self._check(
            l2_misses <= l1_misses,
            "miss-order",
            "L2 misses cannot exceed L1 misses",
            counts,
        )

        attribution = hierarchy.hit_attribution()
        attributed = sum(attribution.values())
        surplus = attributed + l1_misses - accesses
        if isinstance(hierarchy, PredictedMixedHierarchy):
            # A mispredicted-then-hit access is charged both an attribution
            # and an L1 miss (the retry pipelines like an L2 lookup), so
            # the surplus is bounded by the misprediction count.
            self._check(
                0 <= surplus <= hierarchy.mispredictions,
                "hit-attribution",
                "attributed hits + L1 misses must equal accesses "
                "up to mispredicted retries",
                {**counts, "attributed": attributed,
                 "mispredictions": hierarchy.mispredictions},
            )
        else:
            self._check(
                surplus == 0,
                "hit-attribution",
                "attributed hits + L1 misses must equal accesses",
                {**counts, "attributed": attributed, "attribution": attribution},
            )

        walks = hierarchy.walker.stats.walks
        self._check(
            0 <= l2_misses - walks <= faulted_accesses,
            "walk-count",
            "page walks must match L2 misses up to recorded faults",
            {**counts, "page_walks": walks, "faulted_accesses": faulted_accesses},
        )

        for structure in hierarchy.all_structures():
            self._audit_structure_stats(structure.name, structure.stats)
            if isinstance(structure, SetAssociativeTLB):
                self._audit_set_assoc(structure)

        if lite is not None:
            self.audit_lite(lite)

    def _audit_structure_stats(self, name: str, stats) -> None:
        """Histogram totals must match the hit/miss counters."""
        histogram_lookups = sum(stats.lookups_by_ways.values())
        self._check(
            stats.hits >= 0 and stats.misses >= 0,
            "structure-non-negative",
            f"{name}: hit/miss counters must be non-negative",
            {"structure": name, "hits": stats.hits, "misses": stats.misses},
        )
        self._check(
            histogram_lookups == stats.hits + stats.misses,
            "lookup-histogram",
            f"{name}: per-way lookup histogram must sum to hits + misses",
            {
                "structure": name,
                "histogram_lookups": histogram_lookups,
                "hits": stats.hits,
                "misses": stats.misses,
            },
        )
        self._check(
            all(count >= 0 for count in stats.fills_by_ways.values()),
            "fill-histogram",
            f"{name}: per-way fill histogram must be non-negative",
            {"structure": name, "fills": dict(stats.fills_by_ways)},
        )

    def _audit_set_assoc(self, tlb) -> None:
        """Active-way bounds and LRU-stack integrity of one TLB."""
        context = {
            "structure": tlb.name,
            "active_ways": tlb.active_ways,
            "ways": tlb.ways,
        }
        self._check(
            1 <= tlb.active_ways <= tlb.ways,
            "active-ways-range",
            f"{tlb.name}: active ways must stay within [1, ways]",
            context,
        )
        self._check(
            tlb.active_ways & (tlb.active_ways - 1) == 0,
            "active-ways-pow2",
            f"{tlb.name}: active ways must be a power of two",
            context,
        )
        for index in range(tlb.num_sets):
            contents = tlb.set_contents(index)
            if len(contents) > tlb.active_ways:
                self._fail(
                    "lru-capacity",
                    f"{tlb.name}: set {index} exceeds its active capacity",
                    {**context, "set": index, "occupancy": len(contents)},
                )
            if len(set(contents)) != len(contents):
                self._fail(
                    "lru-permutation",
                    f"{tlb.name}: set {index} holds duplicate keys "
                    "(recency stack is not a permutation)",
                    {**context, "set": index, "keys": contents},
                )
        self.checks_run += 1  # the per-set scan counts as one check

    def audit_lite(self, lite) -> None:
        """Lite's resizable units stay inside their legal range."""
        for unit in lite.units:
            context = {
                "unit": unit.name,
                "active_units": unit.active_units,
                "max_units": unit.max_units,
                "min_ways": lite.params.min_ways,
            }
            self._check(
                lite.params.min_ways <= unit.active_units <= unit.max_units,
                "lite-active-range",
                f"{unit.name}: Lite active units out of [min_ways, capacity]",
                context,
            )
            self._check(
                unit.active_units & (unit.active_units - 1) == 0,
                "lite-active-pow2",
                f"{unit.name}: Lite active units must be a power of two",
                context,
            )

    # ------------------------------------------------------------------
    # Result-level checks (pure functions of a SimulationResult)
    # ------------------------------------------------------------------
    def audit_result(self, result, organization=None, energy_model=None) -> None:
        """Check a finished :class:`repro.core.stats.SimulationResult`.

        With ``organization`` and ``energy_model`` supplied, the energy
        breakdown is recomputed from the structure bindings and compared
        against the reported one (full closure); otherwise only the
        identities internal to the result are checked.
        """
        counts = {
            "configuration": result.configuration,
            "workload": result.workload,
            "accesses": result.accesses,
            "l1_misses": result.l1_misses,
            "l2_misses": result.l2_misses,
            "page_walks": result.page_walks,
        }
        self._check(
            result.accesses > 0,
            "measured-accesses",
            "a result must cover at least one measured access",
            counts,
        )
        self._check(
            0 <= result.l2_misses <= result.l1_misses <= result.accesses,
            "miss-order",
            "misses must satisfy 0 <= L2 <= L1 <= accesses",
            counts,
        )
        faulted = getattr(result, "faulted_accesses", 0)
        self._check(
            0 <= result.l2_misses - result.page_walks <= faulted,
            "walk-count",
            "page walks must match L2 misses up to recorded faults",
            {**counts, "faulted_accesses": faulted},
        )

        attributed = sum(result.hit_attribution.values())
        surplus = attributed + result.l1_misses - result.accesses
        if result.configuration == "TLB_Pred":
            self._check(
                surplus >= 0,
                "hit-attribution",
                "attributed hits + L1 misses must cover all accesses",
                {**counts, "attributed": attributed},
            )
        else:
            self._check(
                surplus == 0,
                "hit-attribution",
                "attributed hits + L1 misses must equal accesses",
                {**counts, "attributed": attributed,
                 "attribution": dict(result.hit_attribution)},
            )

        for name, stats in result.structure_stats.items():
            self._audit_structure_stats(name, stats)

        self._audit_energy(result, organization, energy_model)

        for sample in result.timeline:
            if sample.l1_mpki < 0:
                self._fail(
                    "timeline-mpki",
                    "timeline MPKI samples must be non-negative",
                    {"instructions": sample.instructions, "l1_mpki": sample.l1_mpki},
                )
        self.checks_run += 1

    def _audit_energy(self, result, organization, energy_model) -> None:
        """Energy components are non-negative and close to their totals."""
        breakdown = result.energy
        component_sum = sum(breakdown.by_component.values())
        self._check(
            all(value >= 0 for value in breakdown.by_component.values()),
            "energy-non-negative",
            "every energy component must be non-negative",
            {"by_component": dict(breakdown.by_component)},
        )
        self._check(
            abs(breakdown.total_pj - component_sum) <= self.tolerance,
            "energy-total",
            "energy components must sum to total_energy_pj",
            {"total_pj": breakdown.total_pj, "component_sum": component_sum},
        )
        structure_sum = sum(breakdown.by_structure.values())
        walk_pj = (
            breakdown.by_component.get("page_walk", 0.0)
            + breakdown.by_component.get("range_walk", 0.0)
        )
        self._check(
            abs(structure_sum + walk_pj - component_sum)
            <= self.tolerance * max(1.0, component_sum),
            "energy-structures",
            "per-structure energies plus walk energy must sum to the total",
            {
                "structure_sum": structure_sum,
                "walk_pj": walk_pj,
                "component_sum": component_sum,
            },
        )
        if organization is not None and energy_model is not None:
            recomputed = energy_model.compute(
                organization.bindings,
                page_walk_refs=result.page_walk_refs,
                range_walk_refs=result.range_walk_refs,
            )
            for component, reported in breakdown.by_component.items():
                expected = recomputed.by_component.get(component, 0.0)
                self._check(
                    abs(reported - expected)
                    <= self.tolerance * max(1.0, abs(expected)),
                    "energy-recompute",
                    f"component {component!r} does not match a recomputation "
                    "from the structure bindings",
                    {
                        "component": component,
                        "reported_pj": reported,
                        "recomputed_pj": expected,
                    },
                )
