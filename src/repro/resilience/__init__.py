"""Robustness subsystem: faults, auditing, checkpoints, resumable sweeps.

Five pillars, each usable on its own:

* :mod:`repro.resilience.faults` — perturb reference streams and schedule
  adversarial OS events to prove the pipeline degrades gracefully;
* :mod:`repro.resilience.auditor` — a sanitizer-style runtime mode that
  checks accounting identities during and after simulation;
* :mod:`repro.resilience.checkpoint` — versioned, checksummed snapshots
  of a running simulation (built on the ``state_dict`` protocol) plus
  golden per-component state digests;
* :mod:`repro.resilience.bisect` — binary-search two runs' digest trails
  for the first diverging interval boundary and component;
* :mod:`repro.resilience.sweep` — a checkpointing sweep runner with
  per-cell isolation, retries, timeouts, ``--resume``, and mid-cell
  snapshot restart;
* :mod:`repro.resilience.supervisor` — the process-isolated execution
  engine behind ``workers=N``: one OS process per cell, hard SIGKILL
  timeouts, heartbeat hang detection, memory budgets, crash quarantine,
  and graceful SIGINT/SIGTERM shutdown;
* :mod:`repro.resilience.fuzz` / :mod:`repro.resilience.minimize` — a
  seeded generative differential fuzzer (reference-vs-fast engines,
  kill-and-resume identity, invariant auditing, taxonomy containment)
  with delta-debugging minimization and a versioned regression corpus.
"""

from .auditor import InvariantAuditor
from .bisect import (
    TrailRun,
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
    record_resumed_trail,
)
from .checkpoint import (
    CHECKPOINT_VERSION,
    AbortSimulation,
    DigestTrail,
    Divergence,
    SimulationCheckpointer,
    claim_snapshot,
    component_digests,
    first_divergence,
    read_snapshot,
    restore_simulation,
    resume_from_snapshot,
    simulation_state,
    state_digest,
    write_snapshot,
)
from .faults import (
    TRACE_FAULTS,
    CampaignCell,
    CampaignReport,
    ChaosPolicy,
    adversarial_events,
    inject_duplicate_bursts,
    inject_negative_vpns,
    inject_out_of_range,
    run_fault_campaign,
    truncate_trace,
)
from .supervisor import WorkerTask, run_supervised_sweep
from .fuzz import (
    CORPUS_VERSION,
    FUZZ_CASE_VERSION,
    ORACLE_NAMES,
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    generate_case,
    load_reproducer,
    minimize_reproducer,
    replay_corpus,
    rng_stream,
    run_case,
    run_fuzz,
    write_reproducer,
)
from .minimize import MinimizationResult, minimize_case
from .sweep import (
    CrashLedger,
    JournalState,
    SweepCell,
    SweepJournal,
    SweepReport,
    run_resilient_sweep,
)

__all__ = [
    "InvariantAuditor",
    "TrailRun",
    "bisect_divergence",
    "describe_divergence",
    "record_digest_trail",
    "record_resumed_trail",
    "CHECKPOINT_VERSION",
    "AbortSimulation",
    "DigestTrail",
    "Divergence",
    "SimulationCheckpointer",
    "component_digests",
    "first_divergence",
    "read_snapshot",
    "restore_simulation",
    "resume_from_snapshot",
    "simulation_state",
    "state_digest",
    "write_snapshot",
    "TRACE_FAULTS",
    "CampaignCell",
    "CampaignReport",
    "adversarial_events",
    "inject_duplicate_bursts",
    "inject_negative_vpns",
    "inject_out_of_range",
    "run_fault_campaign",
    "truncate_trace",
    "ChaosPolicy",
    "CORPUS_VERSION",
    "FUZZ_CASE_VERSION",
    "ORACLE_NAMES",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "MinimizationResult",
    "generate_case",
    "load_reproducer",
    "minimize_case",
    "minimize_reproducer",
    "replay_corpus",
    "rng_stream",
    "run_case",
    "run_fuzz",
    "write_reproducer",
    "claim_snapshot",
    "CrashLedger",
    "JournalState",
    "SweepCell",
    "SweepJournal",
    "SweepReport",
    "WorkerTask",
    "run_resilient_sweep",
    "run_supervised_sweep",
]
