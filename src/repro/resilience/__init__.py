"""Robustness subsystem: fault injection, invariant auditing, resilient sweeps.

Three pillars, each usable on its own:

* :mod:`repro.resilience.faults` — perturb reference streams and schedule
  adversarial OS events to prove the pipeline degrades gracefully;
* :mod:`repro.resilience.auditor` — a sanitizer-style runtime mode that
  checks accounting identities during and after simulation;
* :mod:`repro.resilience.sweep` — a checkpointing sweep runner with
  per-cell isolation, retries, timeouts, and ``--resume``.
"""

from .auditor import InvariantAuditor
from .faults import (
    TRACE_FAULTS,
    CampaignCell,
    CampaignReport,
    adversarial_events,
    inject_duplicate_bursts,
    inject_negative_vpns,
    inject_out_of_range,
    run_fault_campaign,
    truncate_trace,
)
from .sweep import SweepCell, SweepJournal, SweepReport, run_resilient_sweep

__all__ = [
    "InvariantAuditor",
    "TRACE_FAULTS",
    "CampaignCell",
    "CampaignReport",
    "adversarial_events",
    "inject_duplicate_bursts",
    "inject_negative_vpns",
    "inject_out_of_range",
    "run_fault_campaign",
    "truncate_trace",
    "SweepCell",
    "SweepJournal",
    "SweepReport",
    "run_resilient_sweep",
]
