"""Core virtual-memory types: page sizes, page-number arithmetic, translations.

Everything in the simulator works on *4 KB-granularity virtual page numbers*
(``vpn4k = virtual_address >> 12``) rather than raw byte addresses.  That is
exactly the granularity at which TLBs, page tables, and range translations
operate, and it keeps the hot simulation loop on small integers.

The x86-64 4-level paging terminology used throughout:

======  =========================  ==================  ===============
Level   Structure                  VA bits             Maps (leaf)
======  =========================  ==================  ===============
4       PML4                       47..39              --
3       PDPT (page-dir pointers)   38..30              1 GB page
2       PD (page directory)        29..21              2 MB page
1       PT (page table)            20..12              4 KB page
======  =========================  ==================  ===============
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import TranslationDomainError, TranslationError

# Width of one radix-tree index (512 entries per node).
LEVEL_BITS = 9
LEVEL_MASK = (1 << LEVEL_BITS) - 1

# Byte shift of a 4 KB page.
PAGE_SHIFT_4KB = 12

#: Number of 4 KB pages per 2 MB / 1 GB page.
PAGES_PER_2MB = 1 << LEVEL_BITS  # 512
PAGES_PER_1GB = 1 << (2 * LEVEL_BITS)  # 262144


class PageSize(enum.IntEnum):
    """Supported x86-64 page sizes.

    The integer values are the number of 4 KB pages covered, so
    ``vpn4k & ~(size - 1)`` aligns a page number down to a page boundary.
    """

    SIZE_4KB = 1
    SIZE_2MB = PAGES_PER_2MB
    SIZE_1GB = PAGES_PER_1GB

    @property
    def bytes(self) -> int:
        """Size of the page in bytes."""
        return int(self) << PAGE_SHIFT_4KB

    @property
    def page_shift(self) -> int:
        """log2 of the page size in bytes (12, 21, or 30)."""
        return PAGE_SHIFT_4KB + int(self).bit_length() - 1

    @property
    def walk_levels(self) -> int:
        """Number of page-table levels traversed to reach the leaf entry.

        4 memory references for a 4 KB page, 3 for 2 MB, 2 for 1 GB
        (Section 3.2 of the paper).
        """
        if self is PageSize.SIZE_4KB:
            return 4
        if self is PageSize.SIZE_2MB:
            return 3
        return 2

    def align_down(self, vpn4k: int) -> int:
        """Align a 4 KB-granularity page number down to this page size."""
        return vpn4k & ~(int(self) - 1)

    def label(self) -> str:
        """Human-readable size label ('4KB', '2MB', '1GB')."""
        return {1: "4KB", PAGES_PER_2MB: "2MB", PAGES_PER_1GB: "1GB"}[int(self)]


def pt_index(vpn4k: int) -> int:
    """Page-table (level 1) index of a 4 KB page number."""
    return vpn4k & LEVEL_MASK


def pd_index(vpn4k: int) -> int:
    """Page-directory (level 2) index of a 4 KB page number."""
    return (vpn4k >> LEVEL_BITS) & LEVEL_MASK


def pdpt_index(vpn4k: int) -> int:
    """PDPT (level 3) index of a 4 KB page number."""
    return (vpn4k >> (2 * LEVEL_BITS)) & LEVEL_MASK


def pml4_index(vpn4k: int) -> int:
    """PML4 (level 4) index of a 4 KB page number."""
    return (vpn4k >> (3 * LEVEL_BITS)) & LEVEL_MASK


def pde_tag(vpn4k: int) -> int:
    """Tag identifying the PD entry covering this page (VA bits 47..21).

    Used by the MMU cache that stores PDE-level entries: a hit means the
    walk can skip directly to reading the leaf PTE.
    """
    return vpn4k >> LEVEL_BITS


def pdpte_tag(vpn4k: int) -> int:
    """Tag identifying the PDPT entry covering this page (VA bits 47..30)."""
    return vpn4k >> (2 * LEVEL_BITS)


def pml4e_tag(vpn4k: int) -> int:
    """Tag identifying the PML4 entry covering this page (VA bits 47..39)."""
    return vpn4k >> (3 * LEVEL_BITS)


@dataclass(frozen=True, slots=True)
class Translation:
    """A single page translation as cached by a page TLB.

    ``vpn`` and ``pfn`` are aligned to ``page_size`` and expressed in 4 KB
    units, so the translated frame of an arbitrary page ``v`` inside the
    mapping is ``pfn + (v - vpn)``.
    """

    vpn: int
    pfn: int
    page_size: PageSize

    def __post_init__(self) -> None:
        if self.vpn % int(self.page_size) != 0:
            raise TranslationError(
                f"vpn {self.vpn:#x} not aligned to {self.page_size.label()}"
            )
        if self.pfn % int(self.page_size) != 0:
            raise TranslationError(
                f"pfn {self.pfn:#x} not aligned to {self.page_size.label()}"
            )

    def covers(self, vpn4k: int) -> bool:
        """True if this translation maps the given 4 KB page."""
        return self.vpn <= vpn4k < self.vpn + int(self.page_size)

    def translate(self, vpn4k: int) -> int:
        """Physical frame number (4 KB units) of a page inside the mapping."""
        if not self.covers(vpn4k):
            raise TranslationDomainError(f"vpn {vpn4k:#x} outside translation {self}")
        return self.pfn + (vpn4k - self.vpn)


@dataclass(frozen=True, slots=True)
class RangeTranslation:
    """An RMM range translation: an arbitrarily large contiguous mapping.

    Maps the half-open virtual page interval ``[base_vpn, limit_vpn)`` onto
    the physical interval starting at ``base_pfn``; virtual and physical
    pages correspond one-to-one (both contiguous).  ``offset`` is the
    constant ``base_pfn - base_vpn`` the hardware adds on a hit.
    """

    base_vpn: int
    limit_vpn: int
    base_pfn: int

    def __post_init__(self) -> None:
        if self.limit_vpn <= self.base_vpn:
            raise TranslationError(
                f"empty range [{self.base_vpn:#x}, {self.limit_vpn:#x})"
            )

    @property
    def num_pages(self) -> int:
        """Number of 4 KB pages the range covers."""
        return self.limit_vpn - self.base_vpn

    @property
    def offset(self) -> int:
        """Constant VPN→PFN offset applied on a range-TLB hit."""
        return self.base_pfn - self.base_vpn

    def covers(self, vpn4k: int) -> bool:
        """True if the range maps the given 4 KB page (double comparison)."""
        return self.base_vpn <= vpn4k < self.limit_vpn

    def translate(self, vpn4k: int) -> int:
        """Physical frame number of a page inside the range."""
        if not self.covers(vpn4k):
            raise TranslationDomainError(f"vpn {vpn4k:#x} outside range {self}")
        return vpn4k + self.offset

    def overlaps(self, other: "RangeTranslation") -> bool:
        """True if the virtual intervals of two ranges intersect."""
        return self.base_vpn < other.limit_vpn and other.base_vpn < self.limit_vpn
