"""Intel-style paging-structure caches (the "MMU cache").

After an L2 TLB miss, the walker consults three small caches holding
intermediate page-table entries, all probed *in parallel* (so each walk
charges one read to each structure, per the paper's methodology which is
based on Bhattacharjee's large-reach MMU cache configuration):

=============  ========  ============  ============================
Structure      Entries   Organisation  Caches
=============  ========  ============  ============================
MMU-cache_PDE     32      2-way SA     PDE entries (VA bits 47..21)
MMU-cache_PDPTE    4      fully assoc  PDPTE entries (VA bits 47..30)
MMU-cache_PML4     2      fully assoc  PML4 entries (VA bits 47..39)
=============  ========  ============  ============================

A hit at a level lets the walk skip reading that level and everything
above it, so a 4 KB walk needs 1–4 memory references, a 2 MB walk 1–3,
and a 1 GB walk 1–2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tlb.fully_assoc import FullyAssociativeTLB
from ..tlb.set_assoc import SetAssociativeTLB
from .translation import LEVEL_BITS, PageSize

# Tag shifts, inlined from translation.pde_tag/pdpte_tag/pml4e_tag:
# probe/fill run on every page walk, and the function-call overhead is
# measurable there.
_PDE_SHIFT = LEVEL_BITS
_PDPTE_SHIFT = 2 * LEVEL_BITS
_PML4_SHIFT = 3 * LEVEL_BITS


@dataclass(frozen=True, slots=True)
class MMUCacheConfig:
    """Sizes of the three paging-structure caches (defaults per Table 2)."""

    pde_entries: int = 32
    pde_ways: int = 2
    pdpte_entries: int = 4
    pml4_entries: int = 2


class MMUCache:
    """The three paging-structure caches, probed in parallel per walk."""

    def __init__(self, config: MMUCacheConfig | None = None) -> None:
        config = config or MMUCacheConfig()
        self.config = config
        self.pde = SetAssociativeTLB(
            "MMU-cache-PDE", config.pde_entries, config.pde_ways
        )
        self.pdpte = FullyAssociativeTLB("MMU-cache-PDPTE", config.pdpte_entries)
        self.pml4 = FullyAssociativeTLB("MMU-cache-PML4", config.pml4_entries)

    @property
    def structures(self) -> tuple:
        """All three caches, for stats/energy iteration."""
        return (self.pde, self.pdpte, self.pml4)

    def probe(self, vpn4k: int, page_size: PageSize) -> int:
        """Parallel probe; returns the number of page-table levels skipped.

        All three structures are charged a lookup (they are accessed in
        parallel after the L2 TLB miss).  The deepest hit *relevant to the
        page size* wins: a PDE-cache hit skips 3 levels of a 4 KB walk, a
        PDPTE hit skips 2, a PML4 hit skips 1.  For a 2 MB page the PDE
        *is* the leaf, so the PDE cache cannot help (its entries are
        non-leaf PDEs); likewise the PDPTE cache cannot help a 1 GB walk.
        """
        pde_hit = self.pde.lookup(vpn4k >> _PDE_SHIFT) is not None
        pdpte_hit = self.pdpte.lookup(vpn4k >> _PDPTE_SHIFT) is not None
        pml4_hit = self.pml4.lookup(vpn4k >> _PML4_SHIFT) is not None
        if page_size is PageSize.SIZE_4KB and pde_hit:
            return 3
        if page_size is not PageSize.SIZE_1GB and pdpte_hit:
            return 2
        if pml4_hit:
            return 1
        return 0

    def fill(self, vpn4k: int, page_size: PageSize) -> None:
        """Install the intermediate entries traversed by a completed walk.

        Only non-leaf entries enter the paging-structure caches: a 4 KB
        walk installs PML4E + PDPTE + PDE, a 2 MB walk PML4E + PDPTE, and
        a 1 GB walk only the PML4E (the leaf goes to the TLBs instead).
        Filling an already-present entry just refreshes its recency and is
        skipped to avoid charging spurious write energy.
        """
        tag = vpn4k >> _PML4_SHIFT
        if self.pml4.peek(tag) is None:
            self.pml4.fill(tag, True)
        if page_size is PageSize.SIZE_1GB:
            return
        tag = vpn4k >> _PDPTE_SHIFT
        if self.pdpte.peek(tag) is None:
            self.pdpte.fill(tag, True)
        if page_size is PageSize.SIZE_2MB:
            return
        tag = vpn4k >> _PDE_SHIFT
        if self.pde.peek(tag) is None:
            self.pde.fill(tag, True)

    def flush(self) -> None:
        """Invalidate all three caches."""
        for structure in self.structures:
            structure.flush()

    def state_dict(self) -> dict:
        """Pure-JSON state of all three paging-structure caches."""
        return {
            "pde": self.pde.state_dict(),
            "pdpte": self.pdpte.state_dict(),
            "pml4": self.pml4.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore all three caches from :meth:`state_dict` output."""
        self.pde.load_state_dict(state["pde"])
        self.pdpte.load_state_dict(state["pdpte"])
        self.pml4.load_state_dict(state["pml4"])
