"""Hardware page-table walker.

On an L2 TLB miss the walker probes the MMU paging-structure caches, then
reads the remaining page-table levels from memory.  The paper's energy
model charges each of those memory references one L1-data-cache read
(optimistically assuming all walk references hit the L1 cache; Figure 3
explores relaxing that assumption, which :mod:`repro.energy.model` exposes
as the *walk locality* knob).  The cycle model charges a flat 50 cycles
per walk regardless of the reference count (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mmu_cache import MMUCache
from .page_table import PageTable
from .translation import PageSize, Translation


@dataclass(slots=True)
class WalkResult:
    """Outcome of one page walk."""

    translation: Translation
    memory_refs: int  # page-table reads that went to the memory hierarchy
    levels_skipped: int  # levels satisfied by the MMU cache


@dataclass(slots=True)
class WalkerStats:
    """Aggregate walker activity over a measurement window."""

    walks: int = 0
    memory_refs: int = 0

    def record_walk(self, memory_refs: int) -> None:
        """Count one completed walk and its memory references."""
        self.walks += 1
        self.memory_refs += memory_refs

    def reset(self) -> None:
        self.walks = 0
        self.memory_refs = 0

    def snapshot(self) -> "WalkerStats":
        return WalkerStats(self.walks, self.memory_refs)

    def state_dict(self) -> dict:
        """Pure-JSON counters (checkpoint protocol)."""
        return {"walks": self.walks, "memory_refs": self.memory_refs}

    def load_state_dict(self, state: dict) -> None:
        """Restore counters from :meth:`state_dict` output."""
        self.walks = state["walks"]
        self.memory_refs = state["memory_refs"]


class PageWalker:
    """Walks a :class:`PageTable` with MMU-cache acceleration."""

    def __init__(self, page_table: PageTable, mmu_cache: MMUCache | None = None) -> None:
        self.page_table = page_table
        self.mmu_cache = mmu_cache if mmu_cache is not None else MMUCache()
        self.stats = WalkerStats()

    def walk(self, vpn4k: int) -> WalkResult:
        """Translate a 4 KB page via the page table.

        Raises :class:`repro.mmu.page_table.PageFault` if unmapped.  The
        returned ``memory_refs`` is ``walk_levels - levels_skipped`` and
        lies in [1, 4]: even a full MMU-cache hit must read the leaf entry
        itself.
        """
        translation = self.page_table.walk(vpn4k)
        size: PageSize = translation.page_size
        skipped = self.mmu_cache.probe(vpn4k, size)
        refs = size.walk_levels - skipped
        self.mmu_cache.fill(vpn4k, size)
        self.stats.record_walk(refs)
        return WalkResult(translation=translation, memory_refs=refs, levels_skipped=skipped)

    def state_dict(self) -> dict:
        """Pure-JSON walker state (the MMU caches are checkpointed by the
        hierarchy, which owns them as energy-accounted structures)."""
        return {"stats": self.stats.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self.stats.load_state_dict(state["stats"])
