"""MMU substrate: translation types, radix page table, MMU caches, walker."""

from .mmu_cache import MMUCache, MMUCacheConfig
from .page_table import PageFault, PageTable, PageTableNode
from .translation import (
    PAGES_PER_1GB,
    PAGES_PER_2MB,
    PageSize,
    RangeTranslation,
    Translation,
)
from .walker import PageWalker, WalkerStats, WalkResult

__all__ = [
    "PageSize",
    "Translation",
    "RangeTranslation",
    "PAGES_PER_2MB",
    "PAGES_PER_1GB",
    "PageTable",
    "PageTableNode",
    "PageFault",
    "MMUCache",
    "MMUCacheConfig",
    "PageWalker",
    "WalkResult",
    "WalkerStats",
]
