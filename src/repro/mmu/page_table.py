"""x86-64 four-level radix page table.

The page table is the in-memory structure the hardware walker traverses on
a TLB miss.  We model it faithfully as a radix tree with 512-entry nodes
(PML4 → PDPT → PD → PT); leaves can sit at three levels:

* level 1 (PT): 4 KB page entries,
* level 2 (PD): 2 MB page entries (PS bit set),
* level 3 (PDPT): 1 GB page entries.

The tree is the ground truth for all translations; the OS substrate
(:mod:`repro.mem`) installs entries, and the walker
(:mod:`repro.mmu.walker`) reads them while counting memory references.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import AddressSpaceError
from .translation import (
    LEVEL_BITS,
    LEVEL_MASK,
    PageSize,
    Translation,
)


#: Bits of 4 KB page number a four-level table can translate (48-bit VA).
VPN_BITS = LEVEL_BITS * 4
#: One past the highest representable 4 KB page number.
VPN_LIMIT = 1 << VPN_BITS

#: Radix-index shifts of levels 4..2 (level 1 indexes with the bare mask).
_SHIFT_L4 = LEVEL_BITS * 3
_SHIFT_L3 = LEVEL_BITS * 2
_SHIFT_L2 = LEVEL_BITS


class PageFault(Exception):
    """Raised when a walk reaches an unmapped virtual page."""

    def __init__(self, vpn4k: int) -> None:
        super().__init__(f"page fault at vpn {vpn4k:#x}")
        self.vpn4k = vpn4k


class PageTableNode:
    """One 512-entry node of the radix tree.

    ``entries`` maps a 9-bit index either to a child node (non-leaf) or to
    a :class:`Translation` (leaf entry: PTE, or huge-page PDE/PDPTE).
    """

    __slots__ = ("level", "entries")

    def __init__(self, level: int) -> None:
        self.level = level
        self.entries: dict[int, object] = {}

    def index_for(self, vpn4k: int) -> int:
        """Index of this node's entry covering the given page."""
        return (vpn4k >> (LEVEL_BITS * (self.level - 1))) & LEVEL_MASK


def _subtree_empty(node: PageTableNode) -> bool:
    """True if a subtree holds no leaf translation anywhere."""
    for entry in node.entries.values():
        if isinstance(entry, Translation):
            return False
        if not _subtree_empty(entry):
            return False
    return True


#: Page-table level at which each page size's leaf entry lives.
_LEAF_LEVEL = {
    PageSize.SIZE_4KB: 1,
    PageSize.SIZE_2MB: 2,
    PageSize.SIZE_1GB: 3,
}


class PageTable:
    """A per-process four-level page table."""

    # Mapped-page total is rebuilt by re-mapping the serialized leaves.
    _CHECKPOINT_DERIVED = ("_mapped_pages_4k",)

    def __init__(self) -> None:
        self.root = PageTableNode(level=4)
        self._mapped_pages_4k = 0  # total 4 KB-page equivalents mapped

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map(self, translation: Translation) -> None:
        """Install a leaf entry, creating intermediate nodes as needed.

        Raises :class:`repro.errors.AddressSpaceError` if any part of the
        region is already mapped (the OS substrate must unmap first),
        which catches accidental double-allocation bugs in paging
        policies.
        """
        if not 0 <= translation.vpn <= VPN_LIMIT - int(translation.page_size):
            raise AddressSpaceError(
                f"vpn {translation.vpn:#x} outside the {VPN_BITS}-bit page-number space"
            )
        leaf_level = _LEAF_LEVEL[translation.page_size]
        node = self.root
        while node.level > leaf_level:
            index = node.index_for(translation.vpn)
            child = node.entries.get(index)
            if child is None:
                child = PageTableNode(node.level - 1)
                node.entries[index] = child
            elif isinstance(child, Translation):
                raise AddressSpaceError(
                    f"vpn {translation.vpn:#x} already covered by huge page {child}"
                )
            node = child
        index = node.index_for(translation.vpn)
        existing = node.entries.get(index)
        if isinstance(existing, PageTableNode) and _subtree_empty(existing):
            # A fully unmapped subtree may linger (unmap keeps empty
            # intermediate nodes); a huge-page map reclaims it, as a
            # kernel frees an empty page-table page before installing
            # the large entry.
            existing = None
            del node.entries[index]
        if existing is not None:
            raise AddressSpaceError(
                f"vpn {translation.vpn:#x} already mapped ({existing!r})"
            )
        node.entries[index] = translation
        self._mapped_pages_4k += int(translation.page_size)

    def unmap(self, vpn4k: int) -> Translation:
        """Remove the leaf entry covering ``vpn4k``; returns it.

        Empty intermediate nodes are left in place (as real kernels often
        do); they are invisible to lookups.
        """
        path = []
        node = self.root
        while True:
            index = node.index_for(vpn4k)
            entry = node.entries.get(index)
            if entry is None:
                raise PageFault(vpn4k)
            if isinstance(entry, Translation):
                del node.entries[index]
                self._mapped_pages_4k -= int(entry.page_size)
                return entry
            path.append(node)
            node = entry

    # ------------------------------------------------------------------
    # Lookup / walking
    # ------------------------------------------------------------------
    def lookup(self, vpn4k: int) -> Optional[Translation]:
        """Find the leaf translation covering a 4 KB page, or ``None``.

        Page numbers outside the four-level table's reach (negative, or
        at/above ``VPN_LIMIT``) are unmapped by definition.  Without this
        guard the per-level 9-bit masking would silently wrap them onto
        low addresses and hand back a wrong translation — exactly the
        corruption a hostile trace would exploit.

        The four-level descent is unrolled: this runs on every page walk,
        which dominates simulation time whenever TLBs miss.  Entries are
        either :class:`Translation` leaves or :class:`PageTableNode`
        children (``map`` enforces that), so an exact type test picks the
        leaf case.  Level-1 nodes hold only 4 KB leaves, so the last level
        returns its entry directly.
        """
        if not 0 <= vpn4k < VPN_LIMIT:
            return None
        entry = self.root.entries.get((vpn4k >> _SHIFT_L4) & LEVEL_MASK)
        if entry is None or type(entry) is Translation:
            return entry
        entry = entry.entries.get((vpn4k >> _SHIFT_L3) & LEVEL_MASK)
        if entry is None or type(entry) is Translation:
            return entry
        entry = entry.entries.get((vpn4k >> _SHIFT_L2) & LEVEL_MASK)
        if entry is None or type(entry) is Translation:
            return entry
        return entry.entries.get(vpn4k & LEVEL_MASK)

    def walk(self, vpn4k: int) -> Translation:
        """Like :meth:`lookup` but raises :class:`PageFault` if unmapped."""
        leaf = self.lookup(vpn4k)
        if leaf is None:
            raise PageFault(vpn4k)
        return leaf

    def translate(self, vpn4k: int) -> int:
        """Physical frame number of a 4 KB virtual page (raises on fault)."""
        return self.walk(vpn4k).translate(vpn4k)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mapped_bytes(self) -> int:
        """Total bytes currently mapped."""
        return self._mapped_pages_4k << 12

    def iter_translations(self) -> Iterator[Translation]:
        """Yield all leaf entries in depth-first (address) order."""

        def visit(node: PageTableNode) -> Iterator[Translation]:
            for index in sorted(node.entries):
                entry = node.entries[index]
                if isinstance(entry, Translation):
                    yield entry
                else:
                    yield from visit(entry)

        yield from visit(self.root)

    def count_nodes(self) -> dict[int, int]:
        """Number of radix nodes per level (for memory-overhead reports)."""
        counts = {4: 1, 3: 0, 2: 0, 1: 0}

        def visit(node: PageTableNode) -> None:
            for entry in node.entries.values():
                if isinstance(entry, PageTableNode):
                    counts[entry.level] += 1
                    visit(entry)

        visit(self.root)
        return counts

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pure-JSON leaf entries in address order.

        Only leaves are serialized; intermediate radix nodes are rebuilt
        by re-mapping.  Empty intermediate nodes left behind by ``unmap``
        are therefore not reproduced — they are invisible to lookups and
        walks, so simulation behaviour is unaffected.
        """
        return {
            "translations": [
                [leaf.vpn, leaf.pfn, int(leaf.page_size)]
                for leaf in self.iter_translations()
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild the radix tree from serialized leaves."""
        self.root = PageTableNode(level=4)
        self._mapped_pages_4k = 0
        for vpn, pfn, size in state["translations"]:
            self.map(Translation(vpn, pfn, PageSize(size)))
