"""Semantically partitioned TLB (related-work baseline, paper Section 7).

Lee and Ballapuram [37] split the data TLB into partitions serving
semantic regions — stack, global data, heap — so each lookup probes only
the (smaller, cheaper) partition its address belongs to; Ballapuram et
al. [10] later exploited the low entropy of stack/global addresses the
same way.  The semantic class of an address is known early (it comes
from the segment/region, not the translation), so the probe needs no
prediction.

Here the classifier is a chunk-granular map derived from the process's
VMAs: THP-ineligible "stack"-named VMAs form the stack class, other
ineligible VMAs the global class, everything else the heap class.
Partitions can have different geometries; statistics stay per partition
(they are separate structures to the energy model).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..stateful import require
from .base import TranslationStructure
from .set_assoc import SetAssociativeTLB

#: Semantic classes, in partition order.
STACK, GLOBALS, HEAP = 0, 1, 2
CLASS_NAMES = ("stack", "globals", "heap")


class SemanticPartitionedTLB(TranslationStructure):
    """An L1 TLB split into semantic partitions probed selectively."""

    def __init__(
        self,
        name: str,
        partitions: list[SetAssociativeTLB],
        classify: Callable[[int], int],
    ) -> None:
        super().__init__(name)
        if not partitions:
            raise ConfigurationError("need at least one partition")
        self.partitions = partitions
        self._classify = classify

    def lookup(self, key: int):
        """Probe only the partition owning the address's semantic class."""
        return self.partitions[self._classify(key)].lookup(key)

    def peek(self, key: int):
        """Containment check without side effects."""
        return self.partitions[self._classify(key)].peek(key)

    def fill(self, key: int, value) -> None:
        """Insert into the owning partition."""
        self.partitions[self._classify(key)].fill(key, value)

    def invalidate(self, key: int) -> bool:
        """Remove one translation; returns True if it was present."""
        return self.partitions[self._classify(key)].invalidate(key)

    def flush(self) -> None:
        """Invalidate every partition."""
        for partition in self.partitions:
            partition.flush()

    def sync_stats(self) -> None:
        """Aggregate partition counters (per-partition stats stay primary).

        Hit/miss totals and the per-way histograms are summed for
        reporting, keeping the aggregate self-consistent (histogram totals
        equal hits + misses — the invariant auditor checks this identity
        on every structure).  The merged histograms are *not* used for
        energy: partitions have different geometries, so the energy model
        binds each partition separately.
        """
        self.stats.reset()
        for partition in self.partitions:
            partition.sync_stats()
            self.stats.hits += partition.stats.hits
            self.stats.misses += partition.stats.misses
            self.stats.lookups_by_ways.update(partition.stats.lookups_by_ways)
            self.stats.fills_by_ways.update(partition.stats.fills_by_ways)

    def reset_stats(self) -> None:
        """Reset this structure's and every partition's statistics."""
        for partition in self.partitions:
            partition.sync_stats()
            partition.stats.reset()
        self.stats.reset()

    @property
    def interval_misses(self) -> int:
        """Misses since the last sync, summed over partitions."""
        return sum(partition.interval_misses for partition in self.partitions)

    def occupancy(self) -> int:
        """Valid entries across all partitions."""
        return sum(partition.occupancy() for partition in self.partitions)

    def state_dict(self) -> dict:
        """Pure-JSON mutable state: every partition plus aggregate stats.

        The classifier closure is construction geometry (derived from the
        process's VMA layout, which the canonical rebuild reproduces), so
        it is not serialized.
        """
        return {
            "partitions": [partition.state_dict() for partition in self.partitions],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            len(state["partitions"]) == len(self.partitions),
            f"{self.name}: snapshot holds {len(state['partitions'])} "
            f"partitions, expected {len(self.partitions)}",
        )
        for partition, partition_state in zip(self.partitions, state["partitions"]):
            partition.load_state_dict(partition_state)
        self.stats.load_state_dict(state["stats"])


def classify_by_vma(address_space) -> Callable[[int], int]:
    """Build a chunk-granular semantic classifier from a VMA layout.

    Stack = THP-ineligible VMAs named like a stack; globals = other
    THP-ineligible VMAs; heap = everything else (and unknown addresses).
    """
    chunk_class: dict[int, int] = {}
    for vma in address_space:
        if not vma.thp_eligible:
            semantic = STACK if "stack" in vma.name else GLOBALS
        else:
            semantic = HEAP
        for chunk in range(vma.start_vpn >> 9, ((vma.end_vpn - 1) >> 9) + 1):
            chunk_class[chunk] = semantic

    def classify(vpn4k: int) -> int:
        return chunk_class.get(vpn4k >> 9, HEAP)

    return classify
