"""Set-associative page TLB with true-LRU replacement and way-disabling.

This is the workhorse structure of the paper: the baseline Intel-style L1
TLBs (separate per page size) and the L2-4KB TLB are all set-associative
with LRU replacement.  The Lite mechanism (Section 4.2) resizes these TLBs
by *disabling ways in powers of two* while the number of sets stays
constant; disabled ways are invalidated (Section 4.2.3) so re-enabling
never exposes stale translations.

Each set is kept as a recency-ordered list (most-recently-used first), so
a hit's index in the list is exactly its LRU stack position — the quantity
the Lite monitoring hardware derives from the LRU state bits.  True LRU
gives the *stack inclusion* property Lite's counters rely on: the content
of a w-way set is always a prefix of the 2w-way set's recency stack, which
makes the counter-based miss prediction exact.

Hot-path design: lookups and fills bump plain integers; the per-way-
configuration histograms that energy accounting needs are flushed into
:class:`repro.tlb.base.TLBStats` by :meth:`sync_stats`, which runs
automatically whenever the active-way configuration changes (the only
event that would mis-attribute pending counts).  Lite's LRU-distance
monitoring is a plain counter list (``hit_rank_counters``) incremented
inline — the index is ``rank.bit_length()``, which groups stack positions
exactly as the paper's Figure 6 does ({0}, {1}, {2-3}, {4-7}, ...).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..stateful import decode_entry, encode_entry, require
from .base import TranslationStructure


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssociativeTLB(TranslationStructure):
    """A set-associative, true-LRU TLB keyed by page-granularity VPN.

    Parameters
    ----------
    name:
        Identifier used for statistics and energy accounting
        (e.g. ``"L1-4KB"``).
    entries:
        Total entry count with all ways enabled.
    ways:
        Associativity; must divide ``entries`` and be a power of two so
        way-disabling can halve it repeatedly down to direct-mapped.

    Attributes
    ----------
    hit_rank_counters:
        Optional list of Lite LRU-distance counters.  When set, every hit
        increments ``hit_rank_counters[rank.bit_length()]`` where ``rank``
        is the hit's LRU stack position (0 = MRU).  See
        :class:`repro.core.counters.LRUDistanceCounters`.
    """

    __slots__ = (
        "entries",
        "ways",
        "num_sets",
        "_set_mask",
        "active_ways",
        "_sets",
        "hit_rank_counters",
        "_pending_hits",
        "_pending_misses",
        "_pending_fills",
    )

    def __init__(self, name: str, entries: int, ways: int) -> None:
        super().__init__(name)
        if entries % ways != 0:
            raise ConfigurationError(f"{entries} entries not divisible by {ways} ways")
        if not _is_power_of_two(ways):
            raise ConfigurationError(f"associativity {ways} must be a power of two")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"set count {self.num_sets} must be a power of two"
            )
        self._set_mask = self.num_sets - 1
        self.active_ways = ways
        # Each set: list of [key, value] pairs ordered MRU -> LRU.
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self.hit_rank_counters: list[int] | None = None
        # Pending counts since the last sync (all at current active_ways).
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_fills = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(self, key: int):
        """Probe the TLB; return the cached value or ``None`` on a miss.

        ``key`` is the page-granularity virtual page number (the caller
        divides the 4 KB VPN by the structure's page size).  Counts one
        read access at the current active-way configuration.
        """
        entries = self._sets[key & self._set_mask]
        for rank, pair in enumerate(entries):
            if pair[0] == key:
                self._pending_hits += 1
                counters = self.hit_rank_counters
                if counters is not None:
                    counters[rank.bit_length()] += 1
                if rank:
                    # Move to MRU position.
                    entries.pop(rank)
                    entries.insert(0, pair)
                return pair[1]
        self._pending_misses += 1
        return None

    def peek(self, key: int):
        """Check containment without updating LRU state or statistics."""
        for pair in self._sets[key & self._set_mask]:
            if pair[0] == key:
                return pair[1]
        return None

    def fill(self, key: int, value) -> None:
        """Insert a translation, evicting the set's LRU entry if full.

        Counts one write access at the current active-way configuration.
        A fill of an already-present key refreshes its value and recency.
        """
        self._pending_fills += 1
        entries = self._sets[key & self._set_mask]
        for rank, pair in enumerate(entries):
            if pair[0] == key:
                entries.pop(rank)
                break
        entries.insert(0, [key, value])
        if len(entries) > self.active_ways:
            entries.pop()

    def invalidate(self, key: int) -> bool:
        """Remove one translation; returns True if it was present."""
        entries = self._sets[key & self._set_mask]
        for rank, pair in enumerate(entries):
            if pair[0] == key:
                entries.pop(rank)
                return True
        return False

    def flush(self) -> None:
        """Invalidate every entry (e.g. on context switch)."""
        for entries in self._sets:
            entries.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def sync_stats(self) -> None:
        """Flush pending access counts into the per-configuration stats."""
        pending_lookups = self._pending_hits + self._pending_misses
        if pending_lookups:
            self.stats.hits += self._pending_hits
            self.stats.misses += self._pending_misses
            self.stats.lookups_by_ways[self.active_ways] += pending_lookups
            self._pending_hits = 0
            self._pending_misses = 0
        if self._pending_fills:
            self.stats.fills_by_ways[self.active_ways] += self._pending_fills
            self._pending_fills = 0

    @property
    def interval_misses(self) -> int:
        """Misses since the last :meth:`sync_stats` (Lite interval input)."""
        return self._pending_misses

    # ------------------------------------------------------------------
    # Way-disabling (the Lite reconfiguration mechanism)
    # ------------------------------------------------------------------
    def set_active_ways(self, ways: int) -> None:
        """Reconfigure the number of active ways.

        Downsizing truncates each set to the new capacity, which models
        invalidating the translations held in the disabled ways; with a
        recency-ordered set this discards exactly the least-recently-used
        entries, matching hardware that disables the ways holding the LRU
        positions.  Upsizing simply raises the capacity — re-enabled ways
        come up invalid, so no stale translations appear.
        """
        if not _is_power_of_two(ways) or ways > self.ways:
            raise ConfigurationError(
                f"active ways {ways} must be a power of two <= {self.ways}"
            )
        self.sync_stats()
        if ways < self.active_ways:
            for entries in self._sets:
                del entries[ways:]
        self.active_ways = ways

    # ------------------------------------------------------------------
    # Introspection helpers (tests, debugging, reports)
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(entries) for entries in self._sets)

    def resident_keys(self) -> set[int]:
        """Set of all keys currently cached."""
        return {pair[0] for entries in self._sets for pair in entries}

    def set_contents(self, set_index: int) -> list[int]:
        """Keys of one set in recency order (MRU first); for tests."""
        return [pair[0] for pair in self._sets[set_index]]

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pure-JSON mutable state: sets (MRU order), pending counts, stats.

        ``hit_rank_counters`` is deliberately absent: the list is owned by
        Lite's :class:`repro.core.counters.LRUDistanceCounters` and is
        checkpointed by the Lite controller to preserve object identity.
        """
        return {
            "num_sets": self.num_sets,
            "ways": self.ways,
            "active_ways": self.active_ways,
            "sets": [
                [[pair[0], encode_entry(pair[1])] for pair in entries]
                for entries in self._sets
            ],
            "pending": [self._pending_hits, self._pending_misses, self._pending_fills],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            state["num_sets"] == self.num_sets and state["ways"] == self.ways,
            f"{self.name}: snapshot geometry {state['num_sets']}x{state['ways']} "
            f"does not match {self.num_sets}x{self.ways}",
        )
        require(
            len(state["sets"]) == self.num_sets,
            f"{self.name}: snapshot holds {len(state['sets'])} sets, "
            f"expected {self.num_sets}",
        )
        self.active_ways = state["active_ways"]
        self._sets = [
            [[key, decode_entry(value)] for key, value in entries]
            for entries in state["sets"]
        ]
        self._pending_hits, self._pending_misses, self._pending_fills = state["pending"]
        self.stats.load_state_dict(state["stats"])
