"""Banked set-associative TLB (related-work baseline, paper Section 7).

Banked TLBs [17, 18, 37] cut lookup energy by partitioning the TLB into
banks and probing only the bank selected by address bits: each access
pays the read energy of a bank-sized structure instead of the whole TLB.
The cost is bank-conflict pressure — a hot set of pages that maps to one
bank only enjoys that bank's capacity.

The bank index comes from the VPN bits *above* the per-bank set index,
so consecutive pages first fill a bank's sets before spilling to the
next bank (the usual design point).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..stateful import require
from .base import TranslationStructure
from .set_assoc import SetAssociativeTLB, _is_power_of_two


class BankedSetAssociativeTLB(TranslationStructure):
    """A set-associative TLB split into independently probed banks."""

    def __init__(self, name: str, entries: int, ways: int, banks: int) -> None:
        super().__init__(name)
        if not _is_power_of_two(banks):
            raise ConfigurationError(f"bank count {banks} must be a power of two")
        if not _is_power_of_two(ways):
            raise ConfigurationError(f"associativity {ways} must be a power of two")
        if entries % banks != 0:
            raise ConfigurationError(f"{entries} entries not divisible by {banks} banks")
        self.entries = entries
        self.ways = ways
        self.banks = [
            SetAssociativeTLB(f"{name}[{index}]", entries // banks, ways)
            for index in range(banks)
        ]
        per_bank_sets = (entries // banks) // ways
        if per_bank_sets < 1:
            raise ConfigurationError("banks smaller than one set")
        self._set_shift = per_bank_sets.bit_length() - 1
        self._bank_mask = banks - 1

    @property
    def bank_entries(self) -> int:
        """Capacity of one bank (the energy-relevant structure size)."""
        return self.entries // len(self.banks)

    def _bank_for(self, key: int) -> SetAssociativeTLB:
        return self.banks[(key >> self._set_shift) & self._bank_mask]

    def lookup(self, key: int):
        """Probe only the selected bank (one bank-sized read)."""
        return self._bank_for(key).lookup(key)

    def peek(self, key: int):
        """Containment check without side effects."""
        return self._bank_for(key).peek(key)

    def fill(self, key: int, value) -> None:
        """Insert into the selected bank (one bank-sized write)."""
        self._bank_for(key).fill(key, value)

    def invalidate(self, key: int) -> bool:
        """Remove one translation; returns True if it was present."""
        return self._bank_for(key).invalidate(key)

    def flush(self) -> None:
        """Invalidate every bank."""
        for bank in self.banks:
            bank.flush()

    def sync_stats(self) -> None:
        """Aggregate the banks' counters into this structure's stats.

        Per-way histograms add up directly because every bank shares the
        same geometry, so the energy accountant prices each probe as one
        bank-sized access.
        """
        self.stats.reset()
        for bank in self.banks:
            bank.sync_stats()
            self.stats.hits += bank.stats.hits
            self.stats.misses += bank.stats.misses
            self.stats.lookups_by_ways.update(bank.stats.lookups_by_ways)
            self.stats.fills_by_ways.update(bank.stats.fills_by_ways)

    def reset_stats(self) -> None:
        """Reset this structure's and every bank's statistics."""
        for bank in self.banks:
            bank.sync_stats()
            bank.stats.reset()
        self.stats.reset()

    @property
    def interval_misses(self) -> int:
        """Misses since the last sync, summed over banks."""
        return sum(bank.interval_misses for bank in self.banks)

    def occupancy(self) -> int:
        """Valid entries across all banks."""
        return sum(bank.occupancy() for bank in self.banks)

    def bank_occupancies(self) -> list[int]:
        """Per-bank occupancy (bank-imbalance diagnostics)."""
        return [bank.occupancy() for bank in self.banks]

    def state_dict(self) -> dict:
        """Pure-JSON mutable state: every bank plus the aggregate stats."""
        return {
            "banks": [bank.state_dict() for bank in self.banks],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            len(state["banks"]) == len(self.banks),
            f"{self.name}: snapshot holds {len(state['banks'])} banks, "
            f"expected {len(self.banks)}",
        )
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.load_state_dict(bank_state)
        self.stats.load_state_dict(state["stats"])
