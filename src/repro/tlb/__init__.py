"""TLB structures: set-associative, fully-associative, and range TLBs."""

from .banked import BankedSetAssociativeTLB
from .base import TLBStats, TranslationStructure
from .fully_assoc import FullyAssociativeTLB
from .mixed_fa import MixedFullyAssociativeTLB
from .range_tlb import RangeTLB
from .replacement import PLRUSetAssociativeTLB
from .semantic import SemanticPartitionedTLB, classify_by_vma
from .set_assoc import SetAssociativeTLB

__all__ = [
    "TLBStats",
    "TranslationStructure",
    "SetAssociativeTLB",
    "BankedSetAssociativeTLB",
    "FullyAssociativeTLB",
    "MixedFullyAssociativeTLB",
    "RangeTLB",
    "PLRUSetAssociativeTLB",
    "SemanticPartitionedTLB",
    "classify_by_vma",
]
