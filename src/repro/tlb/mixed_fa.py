"""Fully-associative mixed-page-size L1 TLB (SPARC / AMD style).

Section 4.4 of the paper: instead of separate set-associative L1 TLBs per
page size (Intel), some processors use a single fully-associative L1 TLB
whose entries each carry a page-size mask, so one CAM search matches 4 KB
and huge-page entries alike.  "The same Lite mechanism applies ... Lite
clusters the distance of TLB hits from the LRU position as if there were
ways, and reduces the TLB size in powers-of-two."

Entries here are :class:`repro.mmu.translation.Translation` objects; a
lookup hits when any entry *covers* the probed 4 KB page (the CAM's
masked compare).  Replacement is true LRU, and Lite resizes the structure
through ``set_active_entries``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..mmu.translation import Translation
from ..stateful import decode_entry, encode_entry, require
from .base import TranslationStructure


class MixedFullyAssociativeTLB(TranslationStructure):
    """Single fully-associative TLB holding translations of every size."""

    def __init__(self, name: str, entries: int) -> None:
        super().__init__(name)
        if entries < 1:
            raise ConfigurationError("entries must be >= 1")
        self.entries = entries
        self.active_entries = entries
        self._stack: list[Translation] = []  # MRU first
        self.hit_rank_counters: list[int] | None = None
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_fills = 0

    def lookup(self, vpn4k: int) -> Optional[Translation]:
        """Masked CAM search: hit if any entry covers the 4 KB page."""
        stack = self._stack
        for rank, entry in enumerate(stack):
            if entry.vpn <= vpn4k < entry.vpn + int(entry.page_size):
                self._pending_hits += 1
                counters = self.hit_rank_counters
                if counters is not None:
                    counters[rank.bit_length()] += 1
                if rank:
                    stack.pop(rank)
                    stack.insert(0, entry)
                return entry
        self._pending_misses += 1
        return None

    def peek(self, vpn4k: int) -> Optional[Translation]:
        """Containment check without LRU/statistics side effects."""
        for entry in self._stack:
            if entry.covers(vpn4k):
                return entry
        return None

    def fill(self, translation: Translation) -> None:
        """Insert at MRU; an entry covering the same region is replaced."""
        self._pending_fills += 1
        stack = self._stack
        # Fills run per L1 miss, not per access; the overlap filter is a
        # miss-path cost the paper's CAM also pays on writes.
        stack[:] = [  # reprolint: disable=RL003
            entry
            for entry in stack
            if not (
                entry.vpn < translation.vpn + int(translation.page_size)
                and translation.vpn < entry.vpn + int(entry.page_size)
            )
        ]
        stack.insert(0, translation)
        if len(stack) > self.active_entries:
            stack.pop()

    def invalidate_covering(self, vpn4k: int) -> bool:
        """Remove the entry covering a page (TLB shootdown); True if found."""
        for rank, entry in enumerate(self._stack):
            if entry.covers(vpn4k):
                self._stack.pop(rank)
                return True
        return False

    def flush(self) -> None:
        """Invalidate all entries."""
        self._stack.clear()

    def sync_stats(self) -> None:
        """Flush pending access counts into the per-configuration stats."""
        pending_lookups = self._pending_hits + self._pending_misses
        if pending_lookups:
            self.stats.hits += self._pending_hits
            self.stats.misses += self._pending_misses
            self.stats.lookups_by_ways[self.active_entries] += pending_lookups
            self._pending_hits = 0
            self._pending_misses = 0
        if self._pending_fills:
            self.stats.fills_by_ways[self.active_entries] += self._pending_fills
            self._pending_fills = 0

    @property
    def interval_misses(self) -> int:
        """Misses since the last :meth:`sync_stats`."""
        return self._pending_misses

    def set_active_entries(self, entries: int) -> None:
        """Lite-style power-of-two capacity reduction (Section 4.4)."""
        if entries < 1 or entries > self.entries:
            raise ConfigurationError(f"active entries {entries} outside [1, {self.entries}]")
        self.sync_stats()
        if entries < self.active_entries:
            del self._stack[entries:]
        self.active_entries = entries

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return len(self._stack)

    def resident_translations(self) -> list[Translation]:
        """Entries in recency order (MRU first); for tests."""
        return list(self._stack)

    def state_dict(self) -> dict:
        """Pure-JSON mutable state: recency stack, pending counts, stats."""
        return {
            "entries": self.entries,
            "active_entries": self.active_entries,
            "stack": [encode_entry(entry) for entry in self._stack],
            "pending": [self._pending_hits, self._pending_misses, self._pending_fills],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            state["entries"] == self.entries,
            f"{self.name}: snapshot capacity {state['entries']} does not "
            f"match {self.entries}",
        )
        self.active_entries = state["active_entries"]
        self._stack = [decode_entry(data) for data in state["stack"]]
        self._pending_hits, self._pending_misses, self._pending_fills = state["pending"]
        self.stats.load_state_dict(state["stats"])
