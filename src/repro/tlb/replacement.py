"""Alternative replacement policy: tree-PLRU set-associative TLB.

The paper's TLBs use true LRU, which Lite's utility monitoring depends on
(the LRU stack position of each hit is what feeds the distance counters).
Real L1 TLBs sometimes approximate LRU with tree-PLRU to cut metadata cost.
This module provides a tree-PLRU variant of the set-associative TLB with
the same interface, used by the replacement-policy ablation bench to
quantify how much of the paper's behaviour depends on true LRU.

Tree-PLRU keeps ``ways - 1`` bits per set arranged as a binary tree; each
bit points away from the most recently touched half.  A victim is found by
following the bits; a touch flips the bits along the path to point away
from the touched way.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..stateful import decode_entry, encode_entry, require
from .base import TranslationStructure
from .set_assoc import _is_power_of_two


class PLRUSetAssociativeTLB(TranslationStructure):
    """Set-associative TLB with tree-PLRU replacement and way-disabling.

    Interface-compatible with :class:`repro.tlb.set_assoc.SetAssociativeTLB`
    except that hits do not report an LRU stack position (tree-PLRU does
    not define one), so Lite's monitoring cannot run on top of it.
    """

    __slots__ = (
        "entries",
        "ways",
        "num_sets",
        "_set_mask",
        "active_ways",
        "_slots",
        "_trees",
        "_pending_hits",
        "_pending_misses",
        "_pending_fills",
    )

    def __init__(self, name: str, entries: int, ways: int) -> None:
        super().__init__(name)
        if entries % ways != 0:
            raise ConfigurationError(f"{entries} entries not divisible by {ways} ways")
        if not _is_power_of_two(ways):
            raise ConfigurationError(f"associativity {ways} must be a power of two")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(f"set count {self.num_sets} must be a power of two")
        self._set_mask = self.num_sets - 1
        self.active_ways = ways
        # Per set: fixed way slots (None = invalid) and PLRU tree bits.
        self._slots: list[list] = [[None] * ways for _ in range(self.num_sets)]
        self._trees: list[list[int]] = [[0] * max(ways - 1, 1) for _ in range(self.num_sets)]
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_fills = 0

    # ------------------------------------------------------------------
    def _touch(self, set_index: int, way: int) -> None:
        """Flip the tree bits on the path to ``way`` to point away from it."""
        ways = self.active_ways
        if ways == 1:
            return
        tree = self._trees[set_index]
        node = 0
        # The tree over the active ways occupies nodes 0 .. ways-2 in
        # heap order; leaves correspond to the active way slots.
        span = ways
        lo = 0
        while span > 1:
            half = span // 2
            if way < lo + half:
                tree[node] = 1  # point right (away from touched left half)
                node = 2 * node + 1
                span = half
            else:
                tree[node] = 0  # point left
                node = 2 * node + 2
                lo += half
                span = half
            if span == 1:
                break

    def _victim(self, set_index: int) -> int:
        """Way index chosen by following the PLRU bits (invalid slot first)."""
        ways = self.active_ways
        slots = self._slots[set_index]
        for way in range(ways):
            if slots[way] is None:
                return way
        if ways == 1:
            return 0
        tree = self._trees[set_index]
        node = 0
        lo = 0
        span = ways
        while span > 1:
            half = span // 2
            if tree[node] == 0:
                node = 2 * node + 1
                span = half
            else:
                node = 2 * node + 2
                lo += half
                span = half
        return lo

    # ------------------------------------------------------------------
    def lookup(self, key: int):
        """Probe the TLB; return the cached value or ``None`` on a miss."""
        set_index = key & self._set_mask
        slots = self._slots[set_index]
        for way in range(self.active_ways):
            pair = slots[way]
            if pair is not None and pair[0] == key:
                self._pending_hits += 1
                self._touch(set_index, way)
                return pair[1]
        self._pending_misses += 1
        return None

    def sync_stats(self) -> None:
        """Flush pending access counts into the per-configuration stats."""
        pending_lookups = self._pending_hits + self._pending_misses
        if pending_lookups:
            self.stats.hits += self._pending_hits
            self.stats.misses += self._pending_misses
            self.stats.lookups_by_ways[self.active_ways] += pending_lookups
            self._pending_hits = 0
            self._pending_misses = 0
        if self._pending_fills:
            self.stats.fills_by_ways[self.active_ways] += self._pending_fills
            self._pending_fills = 0

    @property
    def interval_misses(self) -> int:
        """Misses since the last :meth:`sync_stats`."""
        return self._pending_misses

    def fill(self, key: int, value) -> None:
        """Insert a translation into the PLRU victim slot."""
        self._pending_fills += 1
        set_index = key & self._set_mask
        slots = self._slots[set_index]
        for way in range(self.active_ways):
            pair = slots[way]
            if pair is not None and pair[0] == key:
                slots[way] = (key, value)
                self._touch(set_index, way)
                return
        way = self._victim(set_index)
        slots[way] = (key, value)
        self._touch(set_index, way)

    def peek(self, key: int):
        """Check containment without updating PLRU state or statistics."""
        slots = self._slots[key & self._set_mask]
        for way in range(self.active_ways):
            pair = slots[way]
            if pair is not None and pair[0] == key:
                return pair[1]
        return None

    def invalidate(self, key: int) -> bool:
        """Remove one translation; returns True if it was present."""
        set_index = key & self._set_mask
        slots = self._slots[set_index]
        for way in range(self.ways):
            pair = slots[way]
            if pair is not None and pair[0] == key:
                slots[way] = None
                return True
        return False

    def flush(self) -> None:
        """Invalidate every entry."""
        for slots in self._slots:
            for way in range(self.ways):
                slots[way] = None

    def set_active_ways(self, ways: int) -> None:
        """Way-disabling: restrict lookups/fills to the first ``ways`` slots."""
        if not _is_power_of_two(ways) or ways > self.ways:
            raise ConfigurationError(f"active ways {ways} must be a power of two <= {self.ways}")
        self.sync_stats()
        if ways < self.active_ways:
            for slots in self._slots:
                for way in range(ways, self.ways):
                    slots[way] = None
        self.active_ways = ways
        for tree in self._trees:
            for i in range(len(tree)):
                tree[i] = 0

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(
            1 for slots in self._slots for pair in slots if pair is not None
        )

    def state_dict(self) -> dict:
        """Pure-JSON mutable state: way slots, PLRU bits, pending, stats."""
        return {
            "num_sets": self.num_sets,
            "ways": self.ways,
            "active_ways": self.active_ways,
            "slots": [
                [
                    None if pair is None else [pair[0], encode_entry(pair[1])]
                    for pair in slots
                ]
                for slots in self._slots
            ],
            "trees": [list(tree) for tree in self._trees],
            "pending": [self._pending_hits, self._pending_misses, self._pending_fills],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            state["num_sets"] == self.num_sets and state["ways"] == self.ways,
            f"{self.name}: snapshot geometry {state['num_sets']}x{state['ways']} "
            f"does not match {self.num_sets}x{self.ways}",
        )
        self.active_ways = state["active_ways"]
        self._slots = [
            [
                None if pair is None else (pair[0], decode_entry(pair[1]))
                for pair in slots
            ]
            for slots in state["slots"]
        ]
        self._trees = [list(tree) for tree in state["trees"]]
        self._pending_hits, self._pending_misses, self._pending_fills = state["pending"]
        self.stats.load_state_dict(state["stats"])
