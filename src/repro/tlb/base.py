"""Common TLB interfaces and per-structure statistics.

Every lookup structure in the simulator (page TLBs, range TLBs, MMU caches)
exposes the same statistics object so the energy accountant
(:mod:`repro.energy.model`) can charge reads and writes per the paper's
Table 3 model::

    E_structure = A * E_read + M * E_write

where ``A`` is the number of lookups and ``M`` the number of fills.  Because
the dynamic energy of a *way-disabled* structure differs (Table 2 gives the
energy of the equivalent smaller structure), lookups and fills are histogram-
med by the number of active ways at the time of the access.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..stateful import counter_from_json, counter_to_json


@dataclass(slots=True)
class TLBStats:
    """Access counters for one lookup structure.

    ``lookups_by_ways`` / ``fills_by_ways`` map the number of active ways
    (or active entries, for fully-associative structures resized by Lite)
    at access time to the number of accesses performed in that
    configuration.  ``hits`` + ``misses`` always equals total lookups.
    """

    hits: int = 0
    misses: int = 0
    lookups_by_ways: Counter = field(default_factory=Counter)
    fills_by_ways: Counter = field(default_factory=Counter)

    @property
    def lookups(self) -> int:
        """Total number of lookup (read) operations."""
        return self.hits + self.misses

    @property
    def fills(self) -> int:
        """Total number of fill (write) operations."""
        return sum(self.fills_by_ways.values())

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit; 0.0 if never accessed."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters (used when a measurement window starts)."""
        self.hits = 0
        self.misses = 0
        self.lookups_by_ways.clear()
        self.fills_by_ways.clear()

    def snapshot(self) -> "TLBStats":
        """Deep copy of the current counters."""
        return TLBStats(
            hits=self.hits,
            misses=self.misses,
            lookups_by_ways=Counter(self.lookups_by_ways),
            fills_by_ways=Counter(self.fills_by_ways),
        )

    def state_dict(self) -> dict:
        """Pure-JSON counters (checkpoint protocol, see :mod:`repro.stateful`)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups_by_ways": counter_to_json(self.lookups_by_ways),
            "fills_by_ways": counter_to_json(self.fills_by_ways),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters from :meth:`state_dict` output."""
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.lookups_by_ways = counter_from_json(state["lookups_by_ways"])
        self.fills_by_ways = counter_from_json(state["fills_by_ways"])


class TranslationStructure:
    """Base class for all lookup structures.

    Provides the stats object and naming; subclasses implement ``lookup``
    and ``fill`` with their own signatures (page TLBs key by page number,
    range TLBs by containment, MMU caches by partial-VA tags).

    Slotted so the hot structures get compact, dict-free instances; a
    subclass that declares no ``__slots__`` of its own still gets an
    instance dict and can carry ad-hoc attributes.
    """

    __slots__ = ("name", "stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = TLBStats()

    def flush(self) -> None:
        """Invalidate all entries (does not touch statistics)."""
        raise NotImplementedError

    def sync_stats(self) -> None:
        """Flush any pending access counts into :attr:`stats`.

        Subclasses that batch hot-path counters override this; reading
        ``stats`` without calling it first may miss in-flight counts.
        """

    def reset_stats(self) -> None:
        """Zero the statistics (after syncing pending counts).

        Composite structures (banked TLBs) override this to reset their
        sub-structures as well.
        """
        self.sync_stats()
        self.stats.reset()

    def state_dict(self) -> dict:
        """Pure-JSON mutable state (checkpoint protocol).

        Every concrete structure implements this together with
        :meth:`load_state_dict`; see :mod:`repro.stateful` for the
        contract.
        """
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        raise NotImplementedError


    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
