"""Fully-associative, true-LRU lookup structure.

Used for the small structures of the hierarchy: the L1-1GB TLB (4 entries
in Sandy Bridge), the PDPTE and PML4E paging-structure caches, and — in the
SPARC/AMD-style ablation — a single mixed-page-size L1 TLB.

Lite can also resize fully-associative structures: "although there is no
notion of ways in a fully associative TLB, Lite clusters the distance of
TLB hits from the LRU position as if there were ways, and reduces the TLB
size in powers-of-two" (Section 4.4).  ``set_active_entries`` implements
that capacity reduction, and ``hit_rank_counters`` provides the same
Figure 6 grouping as the set-associative TLB (index ``rank.bit_length()``).

Statistics follow the same sync discipline as
:class:`repro.tlb.set_assoc.SetAssociativeTLB`: plain pending integers,
flushed into per-configuration histograms by :meth:`sync_stats`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..stateful import decode_entry, encode_entry, require
from .base import TranslationStructure


class FullyAssociativeTLB(TranslationStructure):
    """A fully-associative cache keyed by arbitrary hashable tags.

    Maintains a single recency list (MRU first).
    """

    __slots__ = (
        "entries",
        "active_entries",
        "_stack",
        "hit_rank_counters",
        "_pending_hits",
        "_pending_misses",
        "_pending_fills",
    )

    def __init__(self, name: str, entries: int) -> None:
        super().__init__(name)
        if entries < 1:
            raise ConfigurationError("entries must be >= 1")
        self.entries = entries
        self.active_entries = entries
        self._stack: list[list] = []  # [key, value] pairs, MRU first
        self.hit_rank_counters: list[int] | None = None
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_fills = 0

    def lookup(self, key):
        """Probe the structure; return the value or ``None`` on a miss."""
        stack = self._stack
        for rank, pair in enumerate(stack):
            if pair[0] == key:
                self._pending_hits += 1
                counters = self.hit_rank_counters
                if counters is not None:
                    counters[rank.bit_length()] += 1
                if rank:
                    stack.pop(rank)
                    stack.insert(0, pair)
                return pair[1]
        self._pending_misses += 1
        return None

    def peek(self, key):
        """Check containment without touching LRU state or statistics."""
        for pair in self._stack:
            if pair[0] == key:
                return pair[1]
        return None

    def fill(self, key, value) -> None:
        """Insert an entry at the MRU position, evicting the LRU if full."""
        self._pending_fills += 1
        stack = self._stack
        for rank, pair in enumerate(stack):
            if pair[0] == key:
                stack.pop(rank)
                break
        stack.insert(0, [key, value])
        if len(stack) > self.active_entries:
            stack.pop()

    def invalidate(self, key) -> bool:
        """Remove one entry; returns True if it was present."""
        for rank, pair in enumerate(self._stack):
            if pair[0] == key:
                self._stack.pop(rank)
                return True
        return False

    def flush(self) -> None:
        """Invalidate all entries."""
        self._stack.clear()

    def sync_stats(self) -> None:
        """Flush pending access counts into the per-configuration stats."""
        pending_lookups = self._pending_hits + self._pending_misses
        if pending_lookups:
            self.stats.hits += self._pending_hits
            self.stats.misses += self._pending_misses
            self.stats.lookups_by_ways[self.active_entries] += pending_lookups
            self._pending_hits = 0
            self._pending_misses = 0
        if self._pending_fills:
            self.stats.fills_by_ways[self.active_entries] += self._pending_fills
            self._pending_fills = 0

    @property
    def interval_misses(self) -> int:
        """Misses since the last :meth:`sync_stats`."""
        return self._pending_misses

    def set_active_entries(self, entries: int) -> None:
        """Resize the structure in the Lite fashion (Section 4.4).

        Shrinking drops the least-recently-used entries; growing raises
        the capacity with the new slots starting invalid.
        """
        if entries < 1 or entries > self.entries:
            raise ConfigurationError(
                f"active entries {entries} outside [1, {self.entries}]"
            )
        self.sync_stats()
        if entries < self.active_entries:
            del self._stack[entries:]
        self.active_entries = entries

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return len(self._stack)

    def resident_keys(self) -> list:
        """Keys in recency order (MRU first); for tests."""
        return [pair[0] for pair in self._stack]

    def state_dict(self) -> dict:
        """Pure-JSON mutable state: recency stack, pending counts, stats."""
        return {
            "entries": self.entries,
            "active_entries": self.active_entries,
            "stack": [[pair[0], encode_entry(pair[1])] for pair in self._stack],
            "pending": [self._pending_hits, self._pending_misses, self._pending_fills],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            state["entries"] == self.entries,
            f"{self.name}: snapshot capacity {state['entries']} does not "
            f"match {self.entries}",
        )
        self.active_entries = state["active_entries"]
        self._stack = [[key, decode_entry(value)] for key, value in state["stack"]]
        self._pending_hits, self._pending_misses, self._pending_fills = state["pending"]
        self.stats.load_state_dict(state["stats"])
