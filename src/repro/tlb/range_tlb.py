"""Range TLB: fully-associative cache of RMM range translations.

A range TLB entry maps an *arbitrarily large* contiguous virtual interval
onto a contiguous physical interval (see
:class:`repro.mmu.translation.RangeTranslation`).  A lookup therefore
performs a *double comparison* per entry — ``base <= vpn < limit`` —
instead of the single tag-equality check of a page TLB, which is why the
paper models its dynamic energy as a fully-associative page TLB with twice
the tag bits (Section 5, Table 2).

The paper uses two instances:

* the **L2-range TLB** (32 entries, from the original RMM design), probed
  in parallel with the L2-page TLB after an L1 miss, and
* the **L1-range TLB** introduced by RMM_Lite (4 entries), probed in
  parallel with the L1-page TLBs on *every* memory operation.

Replacement is true LRU over the entries, like the page TLBs.  Statistics
follow the pending/sync discipline of the other TLB classes.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..mmu.translation import RangeTranslation
from ..stateful import decode_entry, encode_entry, require
from .base import TranslationStructure


class RangeTLB(TranslationStructure):
    """Fully-associative TLB whose entries hit by interval containment."""

    __slots__ = (
        "entries",
        "active_entries",
        "_stack",
        "hit_rank_counters",
        "_pending_hits",
        "_pending_misses",
        "_pending_fills",
    )

    def __init__(self, name: str, entries: int) -> None:
        super().__init__(name)
        if entries < 1:
            raise ConfigurationError("entries must be >= 1")
        self.entries = entries
        self.active_entries = entries
        self._stack: list[RangeTranslation] = []  # MRU first
        self.hit_rank_counters: list[int] | None = None
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_fills = 0

    def lookup(self, vpn4k: int) -> Optional[RangeTranslation]:
        """Probe for a range containing ``vpn4k``; None on a miss."""
        stack = self._stack
        for rank, rng in enumerate(stack):
            if rng.base_vpn <= vpn4k < rng.limit_vpn:
                self._pending_hits += 1
                counters = self.hit_rank_counters
                if counters is not None:
                    counters[rank.bit_length()] += 1
                if rank:
                    stack.pop(rank)
                    stack.insert(0, rng)
                return rng
        self._pending_misses += 1
        return None

    def peek(self, vpn4k: int) -> Optional[RangeTranslation]:
        """Containment check without LRU/statistics side effects."""
        for rng in self._stack:
            if rng.base_vpn <= vpn4k < rng.limit_vpn:
                return rng
        return None

    def fill(self, rng: RangeTranslation) -> None:
        """Insert a range translation at the MRU position.

        Any cached range overlapping the new one is invalidated first:
        overlapping entries would make hits ambiguous, and the OS range
        table never contains overlaps, so a stale overlap means the
        mapping changed.
        """
        self._pending_fills += 1
        stack = self._stack
        # Fills run per range-TLB miss, not per access; overlap eviction
        # is a miss-path cost.
        stack[:] = [r for r in stack if not r.overlaps(rng)]  # reprolint: disable=RL003
        stack.insert(0, rng)
        if len(stack) > self.active_entries:
            stack.pop()

    def invalidate_overlap(self, rng: RangeTranslation) -> int:
        """Drop all cached ranges overlapping ``rng``; returns count dropped."""
        before = len(self._stack)
        self._stack[:] = [r for r in self._stack if not r.overlaps(rng)]
        return before - len(self._stack)

    def flush(self) -> None:
        """Invalidate all entries."""
        self._stack.clear()

    def sync_stats(self) -> None:
        """Flush pending access counts into the per-configuration stats."""
        pending_lookups = self._pending_hits + self._pending_misses
        if pending_lookups:
            self.stats.hits += self._pending_hits
            self.stats.misses += self._pending_misses
            self.stats.lookups_by_ways[self.active_entries] += pending_lookups
            self._pending_hits = 0
            self._pending_misses = 0
        if self._pending_fills:
            self.stats.fills_by_ways[self.active_entries] += self._pending_fills
            self._pending_fills = 0

    @property
    def interval_misses(self) -> int:
        """Misses since the last :meth:`sync_stats`."""
        return self._pending_misses

    def set_active_entries(self, entries: int) -> None:
        """Lite-style capacity reduction (drops LRU-most entries)."""
        if entries < 1 or entries > self.entries:
            raise ConfigurationError(
                f"active entries {entries} outside [1, {self.entries}]"
            )
        self.sync_stats()
        if entries < self.active_entries:
            del self._stack[entries:]
        self.active_entries = entries

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return len(self._stack)

    def resident_ranges(self) -> list[RangeTranslation]:
        """Ranges in recency order (MRU first); for tests."""
        return list(self._stack)

    def state_dict(self) -> dict:
        """Pure-JSON mutable state: recency stack, pending counts, stats."""
        return {
            "entries": self.entries,
            "active_entries": self.active_entries,
            "stack": [encode_entry(rng) for rng in self._stack],
            "pending": [self._pending_hits, self._pending_misses, self._pending_fills],
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto a canonically constructed structure."""
        require(
            state["entries"] == self.entries,
            f"{self.name}: snapshot capacity {state['entries']} does not "
            f"match {self.entries}",
        )
        self.active_entries = state["active_entries"]
        self._stack = [decode_entry(data) for data in state["stack"]]
        self._pending_hits, self._pending_misses, self._pending_fills = state["pending"]
        self.stats.load_state_dict(state["stats"])
