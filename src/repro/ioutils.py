"""Crash-safe file I/O primitives shared by the experiment pipeline.

Every durable artifact the pipeline writes — sweep journals, checkpoint
snapshots, exported result files — goes through :func:`atomic_write_text`
so a crash or preemption mid-write can never leave a half-written file at
the destination path.  The pattern is the classic one: write to a
temporary file in the *same directory* (so the final ``os.replace`` is an
atomic rename within one filesystem), flush, fsync, then rename over the
target.  Readers therefore only ever observe the old complete file or
the new complete file, never a torn mixture.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def fsync_directory(directory: Path) -> None:
    """Fsync a directory so a just-renamed entry survives a power cut.

    Best-effort: some platforms/filesystems refuse to open directories
    (or to fsync them); durability of the rename is then up to the OS.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives next to the target so the final rename is
    atomic; it is fsync'd before the rename so the content is durable by
    the time the new name appears.  On any failure the temp file is
    removed and the original ``path`` content (if any) is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_json(path, payload, *, indent: int | None = None) -> Path:
    """Atomically write a JSON document with deterministic key order."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
