"""Normalisation helpers: the paper reports everything relative to 4KB."""

from __future__ import annotations

import math

from ..core.stats import SimulationResult
from ..errors import AnalysisError


def normalized_energy(
    results: dict[tuple[str, str], SimulationResult],
    workload: str,
    config: str,
    baseline: str = "4KB",
) -> float:
    """Dynamic energy of a configuration relative to the baseline."""
    base = results[(workload, baseline)].total_energy_pj
    if base == 0:
        return 0.0
    return results[(workload, config)].total_energy_pj / base


def normalized_miss_cycles(
    results: dict[tuple[str, str], SimulationResult],
    workload: str,
    config: str,
    baseline: str = "4KB",
) -> float:
    """TLB-miss cycles of a configuration relative to the baseline."""
    base = results[(workload, baseline)].miss_cycles
    if base == 0:
        return 0.0
    return results[(workload, config)].miss_cycles / base


def average_ratio(ratios: list[float], geometric: bool = False) -> float:
    """Mean of normalised ratios (the paper reports arithmetic means)."""
    if not ratios:
        return 0.0
    if geometric:
        if any(ratio <= 0 for ratio in ratios):
            raise AnalysisError("geometric mean needs positive ratios")
        return math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))
    return sum(ratios) / len(ratios)


def reduction_percent(ratio: float) -> float:
    """Convert a normalised ratio into a percentage reduction."""
    return (1.0 - ratio) * 100.0
