"""Result export: flatten simulation results to CSV / JSON records.

Benches render human-readable tables; downstream analysis (pandas,
plotting, regression tracking) wants flat records.  ``flatten_result``
turns one :class:`repro.core.stats.SimulationResult` into a dict of
scalars; the writers serialise collections of them.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable

from ..core.stats import SimulationResult
from ..errors import ExportError
from ..ioutils import atomic_write_text


def flatten_result(result: SimulationResult) -> dict:
    """One flat record per simulation: metrics, energy components, shares."""
    record: dict = {
        "configuration": result.configuration,
        "workload": result.workload,
        "accesses": result.accesses,
        "instructions": result.instructions,
        "l1_misses": result.l1_misses,
        "l2_misses": result.l2_misses,
        "l1_mpki": result.l1_mpki,
        "l2_mpki": result.l2_mpki,
        "page_walks": result.page_walks,
        "page_walk_refs": result.page_walk_refs,
        "range_walk_refs": result.range_walk_refs,
        "miss_cycles": result.miss_cycles,
        "energy_total_pj": result.total_energy_pj,
        "energy_per_access_pj": result.energy_per_access_pj,
        "lite_intervals": result.lite_intervals,
    }
    for component, value in result.energy.by_component.items():
        record[f"energy_{component}_pj"] = value
    for name, count in sorted(result.hit_attribution.items()):
        record[f"hits_{_slug(name)}"] = count
    for name, stats in sorted(result.structure_stats.items()):
        record[f"lookups_{_slug(name)}"] = stats.lookups
    return record


def results_to_records(results) -> list[dict]:
    """Flatten a result collection (a run_matrix dict or an iterable)."""
    if isinstance(results, dict):
        iterable: Iterable[SimulationResult] = results.values()
    else:
        iterable = results
    return [flatten_result(result) for result in iterable]


def write_csv(path, results) -> Path:
    """Write flattened results as CSV (union of columns, insertion order).

    Rendered in memory, then atomically replaced on disk — a crash during
    export never leaves a half-written file behind.
    """
    records = results_to_records(results)
    if not records:
        raise ExportError("no results to export")
    columns: list[str] = []
    seen = set()
    for record in records:
        for key in record:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="", lineterminator="\n")
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return atomic_write_text(path, buffer.getvalue())


def write_json(path, results) -> Path:
    """Write flattened results as a JSON array (atomic replace)."""
    records = results_to_records(results)
    if not records:
        raise ExportError("no results to export")
    return atomic_write_text(path, json.dumps(records, indent=2, sort_keys=True) + "\n")


def _slug(name: str) -> str:
    return (
        name.lower()
        .replace(" ", "_")
        .replace("(", "")
        .replace(")", "")
        .replace("-", "_")
    )
