"""Experiment drivers, normalisation, and text rendering for the paper's
tables and figures."""

from .experiments import (
    ExperimentSettings,
    PreparedRun,
    ReplicatedMetric,
    prepare_run,
    run_matrix,
    run_replicated,
    run_workload_config,
    run_workload_config_with_org,
)
from .export import flatten_result, results_to_records, write_csv, write_json
from .normalize import (
    average_ratio,
    normalized_energy,
    normalized_miss_cycles,
    reduction_percent,
)
from .report import percent, render_series, render_table
from .tracestats import (
    COLD,
    footprint_curve,
    hit_ratio_curve,
    lru_hit_ratio,
    page_touch_counts,
    reuse_distance_histogram,
    summarize_by_region,
    summarize_trace,
)

__all__ = [
    "ExperimentSettings",
    "PreparedRun",
    "prepare_run",
    "run_workload_config",
    "run_workload_config_with_org",
    "run_matrix",
    "run_replicated",
    "ReplicatedMetric",
    "normalized_energy",
    "normalized_miss_cycles",
    "average_ratio",
    "reduction_percent",
    "render_table",
    "render_series",
    "percent",
    "reuse_distance_histogram",
    "lru_hit_ratio",
    "hit_ratio_curve",
    "footprint_curve",
    "page_touch_counts",
    "summarize_trace",
    "summarize_by_region",
    "COLD",
    "flatten_result",
    "results_to_records",
    "write_csv",
    "write_json",
]
