"""Reference-trace statistics: reuse distances, footprints, TLB estimates.

The quantities that determine TLB behaviour are properties of the page
reference stream alone; this module computes them directly, which is how
the synthetic workload models were calibrated and how a user can vet
their own traces before simulating:

* **LRU reuse distance** — for each access, the number of *distinct*
  pages touched since the previous access to the same page (∞ for first
  touches).  A fully-associative LRU TLB of ``n`` entries hits exactly
  the accesses with distance < n (Mattson's stack property), so the
  distance histogram predicts hit ratios for every capacity at once.
* **Footprint curve** — distinct pages per window of the trace, the
  quantity the paper's Table 4 summarises per workload.
* **Huge-page spread** — the same statistics at 2 MB granularity, which
  decide whether THP's 32-entry L1-2MB TLB can hold the working set.

Reuse distances are computed with the classic Fenwick-tree algorithm in
O(n log n).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


class _FenwickTree:
    """Binary indexed tree over trace positions (prefix sums of markers)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of markers at positions [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


#: Histogram bucket used for first touches (infinite reuse distance).
COLD = -1


def reuse_distance_histogram(trace, granularity_pages: int = 1) -> Counter:
    """LRU stack-distance histogram of a page reference stream.

    ``granularity_pages`` coarsens the trace first (512 for 2 MB-page
    behaviour).  Returns ``Counter({distance: accesses})`` with first
    touches under the :data:`COLD` key.
    """
    if granularity_pages < 1:
        raise AnalysisError("granularity_pages must be >= 1")
    pages = _as_page_list(trace, granularity_pages)
    n = len(pages)
    tree = _FenwickTree(n)
    last_position: dict[int, int] = {}
    histogram: Counter = Counter()
    for position, page in enumerate(pages):
        previous = last_position.get(page)
        if previous is None:
            histogram[COLD] += 1
        else:
            # Distinct pages touched strictly between the two accesses.
            distance = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            histogram[distance] += 1
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[page] = position
    return histogram


def lru_hit_ratio(histogram: Counter, entries: int) -> float:
    """Hit ratio of an ``entries``-entry fully-associative LRU cache.

    Mattson: an access hits iff its stack distance is strictly below the
    capacity.  Exact for the same stream the histogram came from.
    """
    if entries < 1:
        raise AnalysisError("entries must be >= 1")
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    hits = sum(
        count
        for distance, count in histogram.items()
        if distance != COLD and distance < entries
    )
    return hits / total


def hit_ratio_curve(histogram: Counter, capacities: list[int]) -> dict[int, float]:
    """LRU hit ratio at each capacity (one histogram, many sizes)."""
    return {capacity: lru_hit_ratio(histogram, capacity) for capacity in capacities}


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Headline statistics of one reference stream."""

    accesses: int
    distinct_pages: int
    distinct_huge_pages: int
    footprint_mb: float
    l1_page_hit_estimate: float  # 64-entry fully-assoc LRU estimate
    l2_page_hit_estimate: float  # 512-entry estimate
    huge_tlb_hit_estimate: float  # 32-entry estimate at 2 MB granularity

    def render(self) -> str:
        return (
            f"{self.accesses} accesses over {self.distinct_pages} pages "
            f"({self.footprint_mb:.1f} MB, {self.distinct_huge_pages} x 2MB); "
            f"est. hit ratios: L1(64e) {self.l1_page_hit_estimate:.3f}, "
            f"L2(512e) {self.l2_page_hit_estimate:.3f}, "
            f"2MB(32e) {self.huge_tlb_hit_estimate:.3f}"
        )


def summarize_trace(trace) -> TraceSummary:
    """Compute the headline statistics of a reference stream."""
    pages = _as_page_list(trace, 1)
    if not pages:
        raise AnalysisError("empty trace")
    histogram = reuse_distance_histogram(pages)
    huge_histogram = reuse_distance_histogram(pages, granularity_pages=512)
    distinct = len(set(pages))
    distinct_huge = len({page >> 9 for page in pages})
    return TraceSummary(
        accesses=len(pages),
        distinct_pages=distinct,
        distinct_huge_pages=distinct_huge,
        footprint_mb=distinct * 4096 / (1 << 20),
        l1_page_hit_estimate=lru_hit_ratio(histogram, 64),
        l2_page_hit_estimate=lru_hit_ratio(histogram, 512),
        huge_tlb_hit_estimate=lru_hit_ratio(huge_histogram, 32),
    )


def footprint_curve(trace, windows: int = 20) -> list[int]:
    """Distinct pages touched in each of ``windows`` equal trace slices."""
    if windows < 1:
        raise AnalysisError("windows must be >= 1")
    pages = np.asarray(trace)
    bounds = np.linspace(0, len(pages), windows + 1, dtype=int)
    return [
        int(len(np.unique(pages[start:stop]))) if stop > start else 0
        for start, stop in zip(bounds, bounds[1:])
    ]


def page_touch_counts(trace) -> Counter:
    """Accesses per page (popularity profile)."""
    values, counts = np.unique(np.asarray(trace), return_counts=True)
    return Counter({int(v): int(c) for v, c in zip(values, counts)})


def summarize_by_region(trace, regions: dict[str, object]) -> dict[str, dict]:
    """Per-VMA access statistics of a reference stream.

    ``regions`` maps names to objects with ``start_vpn``/``num_pages``
    (``repro.workloads.patterns.Region`` or ``repro.mem.vma.VMA``).
    Returns, per region: access share, distinct pages touched, and the
    touched fraction of the region — the numbers behind the workload
    models' tier structure (docs/workloads.md).
    """
    pages = np.asarray(trace)
    total = len(pages)
    if total == 0:
        raise AnalysisError("empty trace")
    out: dict[str, dict] = {}
    matched = 0
    for name, region in regions.items():
        start = region.start_vpn
        end = start + region.num_pages
        inside = pages[(pages >= start) & (pages < end)]
        matched += len(inside)
        distinct = int(len(np.unique(inside)))
        out[name] = {
            "accesses": int(len(inside)),
            "share": len(inside) / total,
            "distinct_pages": distinct,
            "touched_fraction": distinct / region.num_pages,
        }
    out["<unmapped>"] = {
        "accesses": total - matched,
        "share": (total - matched) / total,
        "distinct_pages": 0,
        "touched_fraction": 0.0,
    }
    return out


def _as_page_list(trace, granularity_pages: int) -> list[int]:
    pages = np.asarray(trace)
    if granularity_pages > 1:
        pages = pages // granularity_pages
    return pages.tolist()
