"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import AnalysisError


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Fixed-width text table; floats formatted, everything else str()'d."""
    formatted_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise AnalysisError("row length does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in formatted_rows:
        lines.append(" | ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    label: str, points: Sequence[tuple[object, float]], float_format: str = "{:.3f}"
) -> str:
    """One figure series as 'label: x=y, x=y, ...' (for bench output)."""
    rendered = ", ".join(
        f"{x}={float_format.format(y)}" for x, y in points
    )
    return f"{label}: {rendered}"


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100.0:.1f}%"
