"""Shared experiment drivers: run (workload × configuration) matrices.

Every benchmark harness and example builds on these helpers so that a
figure's numbers always come from the same pipeline: build the process
under the configuration's paging policy, build the TLB organization,
generate the workload's reference stream, and simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.organizations import (
    CONFIG_NAMES,
    build_organization,
    paging_policy_for,
)
from ..core.params import HierarchyParams, LiteParams, SimulationParams
from ..core.simulator import Simulator
from ..core.stats import SimulationResult
from ..energy.model import EnergyModel
from ..errors import SettingsError
from ..mem.physical import PhysicalMemory
from ..mem.process import Process
from ..workloads.base import Workload


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-level knobs shared across a whole figure/table."""

    trace_accesses: int = 1_000_000
    seed: int = 42
    thp_coverage: float = 1.0
    physical_bytes: int = 32 << 30
    sim_params: SimulationParams = field(default_factory=SimulationParams)

    def __post_init__(self) -> None:
        if not isinstance(self.trace_accesses, int) or self.trace_accesses <= 0:
            raise SettingsError(
                f"trace_accesses must be a positive integer, got {self.trace_accesses!r}"
            )
        if not isinstance(self.physical_bytes, int) or self.physical_bytes <= 0:
            raise SettingsError(
                f"physical_bytes must be a positive integer, got {self.physical_bytes!r}"
            )
        if (
            not isinstance(self.thp_coverage, (int, float))
            or isinstance(self.thp_coverage, bool)
            or not math.isfinite(self.thp_coverage)
            or not 0.0 <= self.thp_coverage <= 1.0
        ):
            raise SettingsError(
                f"thp_coverage must be a finite value in [0, 1], got {self.thp_coverage!r}"
            )

    def scaled_lite_interval(self) -> int:
        """Lite interval matched to the scaled-down trace length.

        The paper pairs a 1 M-instruction interval with 50 G simulated
        instructions (50 000 intervals).  At bench-scale traces we keep
        ~150 intervals: enough decisions per phase for Lite to adapt,
        while keeping each interval long enough that the fixed cost of a
        reconfiguration (refilling invalidated ways) stays small relative
        to the interval, as it is at the paper's scale.
        """
        approx_instructions = self.trace_accesses * 3
        return max(10_000, approx_instructions // 150)


@dataclass(slots=True)
class PreparedRun:
    """Everything one simulation cell needs, before the trace is fed.

    Exposing the pieces (not just the result) lets the resilience layer
    perturb the trace, schedule adversarial OS events against the live
    process, and attach an invariant auditor — all without re-implementing
    the canonical build pipeline.
    """

    workload: Workload
    config_name: str
    settings: ExperimentSettings
    process: Process
    organization: object
    trace: object
    simulator: Simulator

    def run(self, events=None, checkpoint_hook=None, resume_state=None) -> SimulationResult:
        """Feed the (possibly perturbed) trace through the simulator.

        ``checkpoint_hook``/``resume_state`` pass through to
        :meth:`repro.core.simulator.Simulator.run`; see
        :mod:`repro.resilience.checkpoint` for the snapshot machinery
        built on them.
        """
        return self.simulator.run(
            self.trace,
            events=events,
            checkpoint_hook=checkpoint_hook,
            resume_state=resume_state,
        )


def prepare_run(
    workload: Workload,
    config_name: str,
    settings: ExperimentSettings | None = None,
    hierarchy_params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
    energy_model: EnergyModel | None = None,
    record_history: bool = False,
    auditor=None,
    on_fault: str = "raise",
    engine: str = "reference",
    observability=None,
) -> PreparedRun:
    """Build the process, organization, trace, and simulator for one cell."""
    settings = settings or ExperimentSettings()
    policy = paging_policy_for(config_name, settings.thp_coverage)
    process = workload.build_process(
        policy, physical=PhysicalMemory(settings.physical_bytes, seed=settings.seed)
    )
    organization = build_organization(
        config_name,
        process,
        params=hierarchy_params,
        lite_params=_scaled_lite_params(config_name, lite_params, settings),
        record_history=record_history,
    )
    trace = workload.trace(settings.trace_accesses, seed=settings.seed)
    simulator = Simulator(
        organization,
        workload_name=workload.name,
        instructions_per_access=workload.instructions_per_access,
        sim_params=settings.sim_params,
        energy_model=energy_model,
        auditor=auditor,
        on_fault=on_fault,
        engine=engine,
        observability=observability,
    )
    return PreparedRun(
        workload=workload,
        config_name=config_name,
        settings=settings,
        process=process,
        organization=organization,
        trace=trace,
        simulator=simulator,
    )


def run_workload_config(
    workload: Workload,
    config_name: str,
    settings: ExperimentSettings | None = None,
    hierarchy_params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
    energy_model: EnergyModel | None = None,
    record_history: bool = False,
    auditor=None,
    on_fault: str = "raise",
) -> SimulationResult:
    """Simulate one workload under one named configuration."""
    result, _organization = run_workload_config_with_org(
        workload,
        config_name,
        settings,
        hierarchy_params=hierarchy_params,
        lite_params=lite_params,
        energy_model=energy_model,
        record_history=record_history,
        auditor=auditor,
        on_fault=on_fault,
    )
    return result


def run_workload_config_with_org(
    workload: Workload,
    config_name: str,
    settings: ExperimentSettings | None = None,
    hierarchy_params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
    energy_model: EnergyModel | None = None,
    record_history: bool = False,
    auditor=None,
    on_fault: str = "raise",
):
    """Like :func:`run_workload_config` but also returns the organization.

    The organization carries the energy bindings that post-hoc analyses
    (e.g. the Section 6.2 static-energy model) need alongside the result.
    """
    prepared = prepare_run(
        workload,
        config_name,
        settings,
        hierarchy_params=hierarchy_params,
        lite_params=lite_params,
        energy_model=energy_model,
        record_history=record_history,
        auditor=auditor,
        on_fault=on_fault,
    )
    return prepared.run(), prepared.organization


def _scaled_lite_params(
    config_name: str,
    lite_params: LiteParams | None,
    settings: ExperimentSettings,
) -> LiteParams | None:
    """Default Lite parameters with the interval scaled to the trace."""
    if config_name not in ("TLB_Lite", "RMM_Lite", "FA_Lite", "RMM_PP_Lite", "L0_Lite"):
        return None
    if lite_params is not None:
        return lite_params
    from ..core.params import RMM_LITE_PARAMS, TLB_LITE_PARAMS

    # FA_Lite follows TLB_Lite's relative threshold (high reference MPKI);
    # RMM_PP_Lite follows RMM_Lite's absolute one (near-zero reference).
    base = (
        TLB_LITE_PARAMS
        if config_name in ("TLB_Lite", "FA_Lite", "L0_Lite")
        else RMM_LITE_PARAMS
    )
    return LiteParams(
        interval_instructions=settings.scaled_lite_interval(),
        threshold_mode=base.threshold_mode,
        epsilon_relative=base.epsilon_relative,
        epsilon_absolute=base.epsilon_absolute,
        reactivate_probability=base.reactivate_probability,
        min_ways=base.min_ways,
        seed=base.seed,
    )


@dataclass(frozen=True, slots=True)
class ReplicatedMetric:
    """Mean and spread of a metric over seed replicas."""

    mean: float
    minimum: float
    maximum: float
    values: tuple[float, ...]

    @property
    def spread(self) -> float:
        """Max minus min — the error-bar width."""
        return self.maximum - self.minimum


def run_replicated(
    workload: Workload,
    config_name: str,
    settings: ExperimentSettings | None = None,
    seeds: tuple[int, ...] = (42, 43, 44),
    **kwargs,
) -> dict[str, ReplicatedMetric]:
    """Run one (workload, configuration) under several trace seeds.

    Returns mean/min/max for the headline metrics — the error bars behind
    any single-seed number.  Every replica re-derives its trace, frame
    placement, and Zipf/hot-set layouts from the seed.
    """
    settings = settings or ExperimentSettings()
    metrics: dict[str, list[float]] = {
        "energy_per_access_pj": [],
        "l1_mpki": [],
        "l2_mpki": [],
        "miss_cycles": [],
    }
    for seed in seeds:
        replica_settings = ExperimentSettings(
            trace_accesses=settings.trace_accesses,
            seed=seed,
            thp_coverage=settings.thp_coverage,
            physical_bytes=settings.physical_bytes,
            sim_params=settings.sim_params,
        )
        result = run_workload_config(workload, config_name, replica_settings, **kwargs)
        metrics["energy_per_access_pj"].append(result.energy_per_access_pj)
        metrics["l1_mpki"].append(result.l1_mpki)
        metrics["l2_mpki"].append(result.l2_mpki)
        metrics["miss_cycles"].append(float(result.miss_cycles))
    return {
        name: ReplicatedMetric(
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
            values=tuple(values),
        )
        for name, values in metrics.items()
    }


def run_matrix(
    workloads: list[Workload],
    config_names: tuple[str, ...] = CONFIG_NAMES,
    settings: ExperimentSettings | None = None,
    **kwargs,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (workload, configuration) pair; keys are (name, config)."""
    settings = settings or ExperimentSettings()
    results: dict[tuple[str, str], SimulationResult] = {}
    for workload in workloads:
        for config_name in config_names:
            results[(workload.name, config_name)] = run_workload_config(
                workload, config_name, settings, **kwargs
            )
    return results
