"""Span-based phase tracing with Chrome-trace export.

A :class:`SpanRecorder` collects a flat list of completed spans — named
wall-time intervals with attached attributes (``trace_span("drain")``,
``checkpoint``, ``lite.end_interval``, the ``fast-forward``/``measured``
phases of a run).  Spans nest by depth, tracked by the recorder, so the
timeline reconstructs the call tree without the recorder ever holding a
stack of live objects.

Two usage styles, same span type:

* context manager — ``with recorder.span("checkpoint"): ...`` — for
  code that wraps a block;
* explicit edges — ``span = recorder.begin("measured")`` ...
  ``recorder.end(span)`` — for phase transitions inside a long loop
  where re-indenting the loop body is not an option.

Timestamps are :func:`time.perf_counter` seconds relative to the
recorder's creation.  The recorder caps retained spans
(``max_events``) and counts overflow in ``dropped`` instead of growing
without bound on huge sweeps.

:meth:`SpanRecorder.chrome_trace` renders the classic Chrome trace-event
JSON (``chrome://tracing`` / Perfetto): complete events (``ph: "X"``)
with microsecond ``ts``/``dur``, span attributes under ``args``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = ["Span", "SpanRecorder"]


class Span:
    """One named wall-time interval; ``duration`` is set at ``end()``."""

    __slots__ = ("name", "start", "duration", "attrs", "depth")

    def __init__(self, name: str, start: float, depth: int, attrs: dict) -> None:
        self.name = name
        self.start = start
        self.duration: float | None = None
        self.attrs = attrs
        self.depth = depth

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Collects completed spans, bounded by ``max_events``."""

    __slots__ = ("events", "dropped", "_origin", "_depth", "_max_events")

    def __init__(self, max_events: int = 100_000) -> None:
        self.events: list[Span] = []
        self.dropped = 0
        self._origin = perf_counter()
        self._depth = 0
        self._max_events = max_events

    def begin(self, name: str, **attrs) -> Span:
        span = Span(name, perf_counter() - self._origin, self._depth, attrs)
        self._depth += 1
        return span

    def end(self, span: Span) -> Span:
        span.duration = perf_counter() - self._origin - span.start
        self._depth = max(0, self._depth - 1)
        if len(self.events) < self._max_events:
            self.events.append(span)
        else:
            self.dropped += 1
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def instant(self, name: str, **attrs) -> Span:
        """A zero-duration marker event (e.g. a Lite resize decision)."""
        span = Span(name, perf_counter() - self._origin, self._depth, attrs)
        span.duration = 0.0
        if len(self.events) < self._max_events:
            self.events.append(span)
        else:
            self.dropped += 1
        return span

    def total_seconds(self, name: str) -> float:
        """Summed duration of every completed span with this name."""
        return sum(
            span.duration or 0.0 for span in self.events if span.name == name
        )

    def to_json(self) -> list[dict]:
        return [span.to_json() for span in self.events]

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON document for this recorder."""
        trace_events = [
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1_000_000.0,
                "dur": (span.duration or 0.0) * 1_000_000.0,
                "pid": 1,
                "tid": 1,
                "args": dict(span.attrs),
            }
            for span in self.events
        ]
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
