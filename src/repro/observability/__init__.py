"""Zero-cost observability: metrics, phase spans, and profiling hooks.

Three pieces, one hub:

* :mod:`repro.observability.registry` — a typed
  :class:`MetricsRegistry` of counters/gauges/histograms with named
  scopes, snapshot/delta semantics, and JSON + Prometheus-text export;
* :mod:`repro.observability.spans` — a :class:`SpanRecorder` of named
  wall-time intervals (run phases, drain segments, checkpoint writes,
  Lite resizes) exportable as Chrome-trace JSON;
* :mod:`repro.observability.hooks` — the :class:`Observability` hub
  threaded through ``Simulator.run``, both drain engines, the
  checkpointer, and the sweep supervisor, plus the sweep metrics
  sidecar (``<journal>.metrics.json``).

The layer is **provably inert** (see ``docs/observability.md`` and
``tests/test_observability.py``): disabled, it normalizes to ``None``
and the bare code paths run — including the fastpath drain codegen,
which emits probe statements only when handed a :class:`FastPathProbe`;
enabled, every per-boundary digest, result, sweep journal, and
fuzz-oracle outcome is byte-identical to a bare run.
"""

from .hooks import (
    METRICS_SIDECAR_VERSION,
    FastPathProbe,
    Observability,
    SimulatorInstrumentation,
    aggregate_cell_metrics,
    metrics_sidecar_path,
    read_metrics_sidecar,
    render_totals_prometheus,
    write_metrics_sidecar,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricScope,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from .spans import Span, SpanRecorder

__all__ = [
    "METRICS_SIDECAR_VERSION",
    "Counter",
    "FastPathProbe",
    "Gauge",
    "Histogram",
    "MetricScope",
    "MetricsRegistry",
    "Observability",
    "SimulatorInstrumentation",
    "Span",
    "SpanRecorder",
    "aggregate_cell_metrics",
    "merge_snapshots",
    "metrics_sidecar_path",
    "read_metrics_sidecar",
    "render_prometheus",
    "render_totals_prometheus",
    "write_metrics_sidecar",
]
