"""The observability hub and the hooks threaded through the pipeline.

:class:`Observability` bundles one :class:`~.registry.MetricsRegistry`
and one :class:`~.spans.SpanRecorder` behind a single ``enabled`` flag.
The zero-cost contract rests on one normalization rule:

    ``Observability.resolve(obs)`` returns ``None`` unless ``obs`` is an
    *enabled* hub.

Every instrumented component stores the resolved value and branches on
``is None`` — so a disabled hub is structurally indistinguishable from
no hub at all: the bare code path runs, no telemetry object is ever
consulted, and the fastpath drain codegen emits no probe statements
(:mod:`repro.core.fastpath` only includes them when handed a
:class:`FastPathProbe`).

:class:`SimulatorInstrumentation` is the per-run helper
``Simulator.run`` builds when a resolved hub is present: it owns the
run/phase spans, the boundary-granular counters, and (for the fast
engine) the drain-codegen probe, and publishes end-of-run gauges in
:meth:`~SimulatorInstrumentation.finish`.  It reads simulator state but
never writes it — the inertness guarantee (enabled runs are
digest-identical to bare runs) is enforced by the differential suite in
``tests/test_observability.py`` and fuzz oracle #5.

The sidecar helpers at the bottom give sweep metrics a durable home
*next to* the journal (``<journal>.metrics.json``, mirroring the
``CrashLedger`` pattern) so journals stay byte-identical with metrics on
or off.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ObservabilityError
from ..ioutils import atomic_write_json
from .registry import MetricsRegistry, merge_snapshots, render_prometheus
from .spans import Span, SpanRecorder

__all__ = [
    "METRICS_SIDECAR_VERSION",
    "FastPathProbe",
    "Observability",
    "SimulatorInstrumentation",
    "aggregate_cell_metrics",
    "metrics_sidecar_path",
    "read_metrics_sidecar",
    "write_metrics_sidecar",
]

#: Schema version of the ``<journal>.metrics.json`` sweep sidecar.
METRICS_SIDECAR_VERSION = 1


class FastPathProbe:
    """Plain counters the fast engine bumps per drained segment.

    Handed to :class:`repro.core.fastpath.FastEngine` only when
    telemetry is enabled; the generated drain functions then include
    probe-bump statements in their (per-segment, not per-access) flush
    section.  Without a probe those statements are never emitted — the
    generated source is byte-identical to the uninstrumented build.
    """

    __slots__ = (
        "coalesced_accesses",
        "replayed_accesses",
        "drained_segments",
        "fallback_spans",
        "generated_drains",
        "boundary_splits",
    )

    def __init__(self) -> None:
        self.coalesced_accesses = 0
        self.replayed_accesses = 0
        self.drained_segments = 0
        self.fallback_spans = 0
        self.generated_drains = 0
        self.boundary_splits = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Observability:
    """One metrics registry + one span recorder behind an enabled flag."""

    def __init__(
        self,
        enabled: bool = True,
        record_spans: bool = True,
        max_span_events: int = 100_000,
    ) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(max_span_events) if record_spans else None

    @staticmethod
    def resolve(observability: "Observability | None") -> "Observability | None":
        """Normalize "no hub" and "disabled hub" to the same ``None``.

        This is what makes disabled telemetry structurally zero-cost:
        instrumented components keep only the resolved value, so their
        disabled code path is the bare code path.
        """
        if observability is None or not observability.enabled:
            return None
        return observability

    # -- span pass-throughs (no-ops when spans are off) ------------------
    def begin(self, name: str, **attrs) -> Span | None:
        if self.spans is None:
            return None
        return self.spans.begin(name, **attrs)

    def end(self, span: Span | None) -> None:
        if span is not None and self.spans is not None:
            self.spans.end(span)

    def span(self, name: str, **attrs):
        if self.spans is None:
            return _NULL_SPAN_CONTEXT
        return self.spans.span(name, **attrs)

    def instant(self, name: str, **attrs) -> None:
        if self.spans is not None:
            self.spans.instant(name, **attrs)

    # -- exports ---------------------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def to_json(self) -> dict:
        return {
            "metrics_version": METRICS_SIDECAR_VERSION,
            "metrics": self.registry.snapshot(),
            "spans": None if self.spans is None else self.spans.to_json(),
            "spans_dropped": 0 if self.spans is None else self.spans.dropped,
        }

    def render_prometheus(self, namespace: str = "repro") -> str:
        return self.registry.render_prometheus(namespace=namespace)

    def write_chrome_trace(self, path) -> Path:
        if self.spans is None:
            raise ObservabilityError(
                "cannot export a Chrome trace: span recording is off"
            )
        return atomic_write_json(path, self.spans.chrome_trace())


class _NullSpanContext:
    """``with obs.span(...)`` target when span recording is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SimulatorInstrumentation:
    """Per-run boundary-granular instrumentation for ``Simulator.run``.

    Built only when a resolved (enabled) hub is present; every hot-loop
    call site in the simulator is guarded by ``if inst is None`` so the
    disabled path stays bare.  All counters move at boundary granularity
    — one bump per drain segment, Lite interval, or timeline sample —
    never per access.
    """

    __slots__ = (
        "obs",
        "probe",
        "boundaries",
        "drained",
        "drain_seconds",
        "lite_intervals",
        "lite_resizes",
        "samples",
        "run_span",
        "phase_span",
        "_run_scope",
    )

    def __init__(
        self,
        obs: Observability,
        *,
        workload: str,
        configuration: str,
        engine: str,
        total: int,
        fast_engine: bool,
    ) -> None:
        self.obs = obs
        sim = obs.registry.scope("sim")
        self.boundaries = sim.counter(
            "boundaries", "drain-loop boundaries crossed (intervals/samples/events)"
        )
        self.drained = sim.counter("accesses_drained", "accesses pushed through drain()")
        self.drain_seconds = sim.histogram(
            "drain_seconds", "wall time per drain segment"
        )
        self.lite_intervals = sim.counter(
            "lite_intervals", "Lite end_interval decisions taken"
        )
        self.lite_resizes = sim.counter(
            "lite_resizes", "Lite intervals that changed the active configuration"
        )
        self.samples = sim.counter("timeline_samples", "timeline samples recorded")
        self.probe = FastPathProbe() if fast_engine else None
        self._run_scope = obs.registry.scope("run")
        self.run_span = obs.begin(
            "run",
            workload=workload,
            configuration=configuration,
            engine=engine,
            accesses=total,
        )
        self.phase_span: Span | None = None

    def begin_phase(self, name: str) -> None:
        if self.phase_span is not None:
            self.obs.end(self.phase_span)
        self.phase_span = self.obs.begin(name)

    def boundary(self, drained: int, seconds: float) -> None:
        self.boundaries.inc()
        self.drained.inc(drained)
        self.drain_seconds.observe(seconds)

    def lite_interval(self, lite, miss_delta: int, interval_instructions: float) -> None:
        """The instrumented twin of the bare ``lite.end_interval`` call."""
        before = lite.active_configuration()
        with self.obs.span("lite.end_interval"):
            lite.end_interval(miss_delta, interval_instructions)
        self.lite_intervals.inc()
        after = lite.active_configuration()
        if after != before:
            self.lite_resizes.inc()
            self.obs.instant("lite.resize", before=before, after=after)

    def sample(self) -> None:
        self.samples.inc()

    def finish(self, result, events_fired: int) -> None:
        """Publish end-of-run gauges and close the run/phase spans."""
        run = self._run_scope
        run.gauge("accesses", "measured accesses").set(result.accesses)
        run.gauge("instructions", "measured instructions").set(result.instructions)
        run.gauge("l1_misses", "L1 TLB misses").set(result.l1_misses)
        run.gauge("l2_misses", "L2 TLB misses").set(result.l2_misses)
        run.gauge("page_walks", "page walks performed").set(result.page_walks)
        run.gauge("page_walk_refs", "page-walk memory references").set(
            result.page_walk_refs
        )
        run.gauge("range_walk_refs", "range-walk memory references").set(
            result.range_walk_refs
        )
        run.gauge("faulted_accesses", "accesses that faulted (tolerant mode)").set(
            result.faulted_accesses
        )
        run.gauge("events_fired", "scheduled OS events fired").set(events_fired)
        if self.probe is not None:
            fastpath = self.obs.registry.scope("fastpath")
            for name, value in self.probe.as_dict().items():
                fastpath.counter(name).inc(value)
        if self.phase_span is not None:
            self.obs.end(self.phase_span)
            self.phase_span = None
        if self.run_span is not None:
            self.run_span.attrs["l1_misses"] = result.l1_misses
            self.run_span.attrs["page_walks"] = result.page_walks
            self.obs.end(self.run_span)
            self.run_span = None


# ----------------------------------------------------------------------
# Sweep metrics sidecar
# ----------------------------------------------------------------------
def metrics_sidecar_path(journal_path) -> Path:
    """Where a sweep journal's metrics live (never inside the journal)."""
    return Path(str(journal_path) + ".metrics.json")


def aggregate_cell_metrics(
    fresh: dict[str, dict], existing_path: Path | None = None
) -> dict:
    """Merge fresh per-cell snapshots over an existing sidecar's cells.

    On ``--resume``, cells replayed from the journal never re-run, so
    their metrics come from the previous sidecar; freshly-run cells
    overwrite.  Totals are recomputed from the merged cell set.
    """
    cells: dict[str, dict] = {}
    if existing_path is not None and Path(existing_path).exists():
        cells.update(read_metrics_sidecar(existing_path).get("cells", {}))
    cells.update(fresh)
    totals: dict = {}
    for key in sorted(cells):
        merge_snapshots(totals, cells[key])
    return {"cells": cells, "totals": totals}


def write_metrics_sidecar(journal_path, payload: dict) -> Path:
    """Atomically write ``{cells, totals}`` next to the journal."""
    path = metrics_sidecar_path(journal_path)
    document = {"metrics_version": METRICS_SIDECAR_VERSION}
    document.update(payload)
    return atomic_write_json(path, document, indent=2)


def read_metrics_sidecar(path) -> dict:
    """Load and validate a metrics sidecar document."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ObservabilityError(f"no metrics sidecar at {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"unreadable metrics sidecar {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ObservabilityError(f"metrics sidecar {path} is not a JSON object")
    version = document.get("metrics_version")
    if version != METRICS_SIDECAR_VERSION:
        raise ObservabilityError(
            f"metrics sidecar {path} has version {version!r}; "
            f"this build reads version {METRICS_SIDECAR_VERSION}"
        )
    return document


def render_totals_prometheus(document: dict, namespace: str = "repro") -> str:
    """Prometheus text for a sidecar's aggregated totals."""
    return render_prometheus(document.get("totals", {}), namespace=namespace)
