"""Metrics registry: counters, gauges, and histograms with named scopes.

The registry is the passive half of the observability layer — a typed
bag of named metrics that instrumented code bumps at *boundary*
granularity (interval ends, checkpoint boundaries, drain-segment edges),
never per access.  Three metric kinds, mirroring the Prometheus data
model:

``Counter``
    Monotonically non-decreasing integer/float total (``inc``).
``Gauge``
    A point-in-time value that can move both ways (``set``).
``Histogram``
    A fixed-bucket distribution plus running count and sum
    (``observe``); exported with cumulative buckets and an implicit
    ``+Inf`` bucket, Prometheus-style.

Metric names are dot-separated lowercase paths (``sim.boundaries``,
``checkpoint.snapshot_seconds``); :meth:`MetricsRegistry.scope` returns
a view that prefixes every registration, so subsystems can label their
metrics without knowing where they sit in the tree.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-compatible
dicts — the unit that crosses the supervisor's heartbeat pipe, lands in
the sweep metrics sidecar, and diffs via :meth:`MetricsRegistry.delta`.
:func:`merge_snapshots` aggregates snapshots across sweep cells
(counters and histograms sum; gauges are per-run readings and drop out
of totals), and :func:`render_prometheus` turns any snapshot into the
Prometheus text exposition format.
"""

from __future__ import annotations

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricScope",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "merge_snapshots",
    "render_prometheus",
]

#: Default histogram bounds, tuned for wall-time observations in seconds
#: (drain segments run microseconds to seconds depending on trace size).
DEFAULT_SECONDS_BUCKETS = (
    0.000_1,
    0.000_5,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _validate_name(name: str) -> str:
    """Reject metric names that cannot round-trip through the exporters."""
    segments = name.split(".")
    if not name or not all(
        segment and segment[0].isalpha() and set(segment) <= _NAME_CHARS
        for segment in segments
    ):
        raise ObservabilityError(
            f"invalid metric name {name!r}: want dot-separated lowercase "
            "segments of [a-z0-9_] starting with a letter"
        )
    return name


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self.value += amount


class Gauge:
    """A point-in-time reading that can move both ways."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket distribution with running count and sum.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly ascending order; observations above the last bound land in
    the implicit ``+Inf`` bucket.  Bucket counts are stored
    non-cumulative and made cumulative at snapshot time (the Prometheus
    convention), which keeps ``observe`` a two-add, one-scan operation.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} needs strictly ascending bucket bounds, "
                f"got {bounds!r}"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1


class MetricScope:
    """A registry view that prefixes every metric name with a scope path."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = _validate_name(prefix)

    def _qualified(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str, help: str = "") -> Counter:
        return self._registry.counter(self._qualified(name), help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._registry.gauge(self._qualified(name), help)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._registry.histogram(self._qualified(name), help, bounds)

    def scope(self, prefix: str) -> "MetricScope":
        return MetricScope(self._registry, self._qualified(prefix))


class MetricsRegistry:
    """The typed bag of named metrics behind one observability hub.

    Registration is idempotent per (name, kind): asking for an existing
    counter returns the same object, so instrumentation sites can be
    written without setup/lookup phases.  Re-registering a name as a
    different kind is a programming error and raises
    :class:`~repro.errors.ObservabilityError`.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, *args):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as {cls.kind}"
                )
            return existing
        metric = cls(_validate_name(name), *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, bounds)

    def scope(self, prefix: str) -> MetricScope:
        return MetricScope(self, prefix)

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """A JSON-compatible point-in-time reading of every metric."""
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        histograms: dict[str, dict] = {}
        for metric in self.metrics():
            if metric.kind == "counter":
                counters[metric.name] = metric.value
            elif metric.kind == "gauge":
                gauges[metric.name] = metric.value
            else:
                cumulative = []
                running = 0
                for bucket in metric.bucket_counts:
                    running += bucket
                    cumulative.append(running)
                histograms[metric.name] = {
                    "bounds": list(metric.bounds),
                    "buckets": cumulative,
                    "count": metric.count,
                    "sum": metric.sum,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def delta(self, before: dict) -> dict:
        """The change since an earlier :meth:`snapshot` of this registry.

        Counters and histograms subtract; gauges report their current
        value (a gauge has no meaningful difference).
        """
        now = self.snapshot()
        counters = {
            name: value - before.get("counters", {}).get(name, 0)
            for name, value in now["counters"].items()
        }
        histograms = {}
        for name, hist in now["histograms"].items():
            prior = before.get("histograms", {}).get(name)
            if prior is None or prior.get("bounds") != hist["bounds"]:
                histograms[name] = hist
                continue
            histograms[name] = {
                "bounds": hist["bounds"],
                "buckets": [
                    bucket - old
                    for bucket, old in zip(hist["buckets"], prior["buckets"])
                ],
                "count": hist["count"] - prior["count"],
                "sum": hist["sum"] - prior["sum"],
            }
        return {"counters": counters, "gauges": now["gauges"], "histograms": histograms}

    def render_prometheus(self, namespace: str = "repro") -> str:
        return render_prometheus(self.snapshot(), namespace=namespace)


def merge_snapshots(total: dict, snapshot: dict) -> dict:
    """Accumulate ``snapshot`` into ``total`` (in place) and return it.

    Counters and histogram counts/sums/buckets add; gauges are dropped
    from totals because a last-value across heterogeneous cells is not
    meaningful.  ``total`` starts as ``{}`` and is normalized on first
    merge.
    """
    total.setdefault("counters", {})
    total.setdefault("histograms", {})
    for name, value in snapshot.get("counters", {}).items():
        total["counters"][name] = total["counters"].get(name, 0) + value
    for name, hist in snapshot.get("histograms", {}).items():
        existing = total["histograms"].get(name)
        if existing is None or existing.get("bounds") != hist.get("bounds"):
            total["histograms"][name] = {
                "bounds": list(hist.get("bounds", [])),
                "buckets": list(hist.get("buckets", [])),
                "count": hist.get("count", 0),
                "sum": hist.get("sum", 0.0),
            }
            continue
        existing["buckets"] = [
            mine + theirs
            for mine, theirs in zip(existing["buckets"], hist["buckets"])
        ]
        existing["count"] += hist.get("count", 0)
        existing["sum"] += hist.get("sum", 0.0)
    return total


def _prom_name(namespace: str, name: str) -> str:
    return f"{namespace}_{name.replace('.', '_')}"


def _prom_value(value: int | float) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: dict, namespace: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Works on any snapshot dict (live registry reading, sidecar totals),
    so exported sweep metrics can be re-rendered without a live registry.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(namespace, name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(namespace, name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        prom = _prom_name(namespace, name)
        lines.append(f"# TYPE {prom} histogram")
        buckets = list(hist.get("buckets", []))
        bounds = list(hist.get("bounds", []))
        for bound, cumulative in zip(bounds, buckets):
            lines.append(f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.get("count", 0)}')
        lines.append(f"{prom}_sum {_prom_value(hist.get('sum', 0.0))}")
        lines.append(f"{prom}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"
