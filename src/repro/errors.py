"""Structured error taxonomy for the whole simulator.

Every failure the pipeline can produce maps onto one of these classes so
callers (the CLI, the resilient sweep runner, test harnesses) can react
by *kind* instead of string-matching messages:

``ReproError``
    Root of the taxonomy; everything below derives from it.
``SettingsError``
    Invalid run-level knobs (``ExperimentSettings`` validation).
``TraceError``
    A reference stream that cannot be trusted: missing sidecar files,
    corrupt arrays, bad metadata.  ``TraceIOError`` additionally derives
    from :class:`FileNotFoundError` so pre-taxonomy callers keep working.
``UnknownNameError``
    A lookup by name failed; carries did-you-mean ``suggestions``.
    Derives from :class:`KeyError` for backward compatibility.
``SimulationError``
    The simulator cannot run the given trace/configuration combination.
``ConfigurationError``
    A structure or hierarchy was constructed with invalid geometry
    (non-power-of-two ways/banks, impossible hierarchy shapes).
``InvariantViolation``
    The runtime auditor found an accounting identity broken; carries a
    ``context`` dict with every number that went into the check.
``SweepError``
    The resilient sweep runner cannot proceed (e.g. a resume journal that
    does not match the requested matrix).
``TransientSimulationError``
    Marker for failures worth retrying (the sweep runner's backoff path).
``WorkerCrashError``
    A supervised sweep worker process died without reporting a result
    (native crash, OOM kill, ``sys.exit``).  Retryable: the supervisor
    re-dispatches the cell until the quarantine threshold.
``MemoryBudgetError``
    A worker exceeded its per-cell memory budget.  Fatal for the cell
    (re-running under the same budget reproduces the breach) but the
    sweep continues; the cell gets the structured ``oom`` status.
``QuarantinedCellError``
    A poison cell crossed the crash-quarantine threshold and was
    journaled as quarantined; it is skipped on ``--resume``.
``CheckpointError``
    A simulation snapshot cannot be written, read, or restored (bad
    version, checksum mismatch, geometry mismatch on load).
``AddressSpaceError``
    The OS memory substrate (page tables, allocators, processes) was
    asked to perform an invalid operation.  ``MappingLookupError``
    additionally derives from :class:`KeyError` for unmap misses.
``AnalysisError``
    Post-processing (trace statistics, normalization, reports) was
    given unusable inputs.
``WorkloadError``
    A synthetic workload was configured with invalid parameters.
``UsageError``
    An API was called on an object that does not support it; derives
    from :class:`TypeError`.
``TranslationError`` / ``TranslationDomainError``
    Invalid translation objects, and translate() calls outside a
    mapping's covered interval.
``ExportError``
    Result export cannot proceed (nothing to write).
``FuzzError``
    The differential fuzzing harness cannot proceed (a corpus reproducer
    that no longer fails, replay over an empty corpus).
``ObservabilityError``
    The telemetry layer was misused (duplicate metric registered under a
    different type, invalid metric name, unreadable metrics sidecar).
    Never raised from an instrumented hot path — observability failures
    must not take a simulation down.

Most classes double-derive from the built-in exception they historically
replaced (``ValueError``, ``KeyError``, ``FileNotFoundError``) so that
existing ``except``/``pytest.raises`` sites keep catching them.
"""

from __future__ import annotations

import difflib
from typing import Iterable


class ReproError(Exception):
    """Base class of every structured simulator error."""


class SettingsError(ReproError, ValueError):
    """Invalid experiment-level settings."""


class TraceError(ReproError, ValueError):
    """A reference stream (or its metadata) is malformed."""


class TraceIOError(TraceError, FileNotFoundError):
    """A trace's ``.npy``/``.json`` sidecar pair is missing or unreadable."""


class SimulationError(ReproError, ValueError):
    """The simulator cannot run this trace/configuration combination."""


class ConfigurationError(ReproError, ValueError):
    """A hardware structure or hierarchy was built with invalid geometry.

    Raised at construction time (bad way/bank/set counts, impossible
    hierarchy shapes) so misconfigurations fail before any simulation
    runs.  Double-derives from :class:`ValueError` because those sites
    historically raised ``ValueError`` and tests/callers still catch it.
    """


class SweepError(ReproError):
    """The sweep runner cannot proceed (bad journal, bad matrix)."""


class TransientSimulationError(ReproError):
    """A failure the sweep runner should retry with backoff."""


class WorkerCrashError(TransientSimulationError):
    """A supervised sweep worker died without reporting a result.

    Covers every way a child process can vanish mid-cell: a native
    abort, the kernel OOM killer, a stray ``sys.exit``, or an interpreter
    crash.  Derives from :class:`TransientSimulationError` because a
    crash is retryable by definition — the supervisor re-dispatches the
    cell until ``quarantine_after`` consecutive crashes mark it poison.
    """


class MemoryBudgetError(ReproError, MemoryError):
    """A supervised worker exceeded its per-cell memory budget.

    Raised (and marshalled as the structured ``oom`` cell status) when
    the ``resource.setrlimit`` address-space budget trips a
    :class:`MemoryError` inside the worker.  Fatal for the cell, not the
    sweep: the same cell under the same budget would fail again, so it
    is not retried, but every other cell keeps running.  Double-derives
    from :class:`MemoryError` so generic handlers still match.
    """


class QuarantinedCellError(ReproError):
    """A poison cell crossed the crash-quarantine threshold.

    The cell is journaled as quarantined and skipped on ``--resume``;
    the error message carries the crash count and the last crash detail
    so the journal row is self-explanatory.
    """


class CheckpointError(ReproError):
    """A checkpoint snapshot is unreadable, corrupt, or incompatible.

    Raised on version/checksum mismatches when loading snapshot files and
    on geometry mismatches when a ``load_state_dict`` target does not
    match the state it is asked to restore.
    """


class AddressSpaceError(ReproError, ValueError):
    """The OS memory substrate was asked to do something invalid.

    Covers page-table mapping conflicts, allocator misuse (bad orders,
    misaligned frees), and process-level operations on pages of the wrong
    kind.  Double-derives from :class:`ValueError` because those sites
    historically raised ``ValueError``.
    """


class MappingLookupError(AddressSpaceError, KeyError):
    """An unmap/teardown referenced a mapping that is not present.

    Double-derives from :class:`KeyError` (the historical behaviour of
    ``AddressSpace.munmap``); ``str()`` renders the message instead of
    :class:`KeyError`'s repr-of-args.
    """

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class AnalysisError(ReproError, ValueError):
    """Post-processing was asked to summarize unusable inputs.

    Raised by the ``analysis`` package (trace statistics, normalization,
    report rendering) on empty or mismatched result collections.
    Double-derives from :class:`ValueError` because those sites
    historically raised ``ValueError``.
    """


class WorkloadError(ReproError, ValueError):
    """A synthetic workload was configured with invalid parameters.

    Covers bad region geometry, non-positive footprints, mixture weights
    that do not form a distribution, and duplicate registry names.
    Double-derives from :class:`ValueError` for pre-taxonomy callers.
    """


class UsageError(ReproError, TypeError):
    """An API was called on an object that does not support it.

    E.g. wrapping a non-resizable TLB in a ``ResizableUnit`` or calling
    ``trace()`` on a trace-file workload that can only replay saved
    traces.  Double-derives from :class:`TypeError` (the historical
    behaviour at those sites).
    """


class TranslationError(ReproError, ValueError):
    """A translation or range object was constructed with invalid fields."""


class TranslationDomainError(ReproError, KeyError):
    """A ``translate()`` call fell outside the mapping's covered interval.

    Double-derives from :class:`KeyError` (the historical behaviour the
    fault-tolerant simulator and tests rely on).  ``str()`` renders the
    message instead of :class:`KeyError`'s repr-of-args.
    """

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class ExportError(ReproError, ValueError):
    """Result export cannot proceed (e.g. an empty result collection)."""


class FuzzError(ReproError):
    """The fuzzing harness cannot proceed (bad corpus entry, dead reproducer).

    Raised by :mod:`repro.resilience.fuzz` / :mod:`repro.resilience.minimize`
    on harness-level problems — a reproducer that no longer fails and so
    cannot be minimized, or replay/minimize invoked against an empty
    corpus.  Oracle *failures* are data (``FuzzFailure``), not exceptions;
    this class covers the harness itself misfiring.
    """


class ObservabilityError(ReproError, ValueError):
    """The observability layer was misconfigured or misused.

    Covers metric-registry misuse (one name registered as two different
    metric types, malformed metric names, negative counter increments)
    and unreadable/incompatible metrics sidecar files.  Registration
    happens at setup time and export happens after a run, so this never
    fires from an instrumented simulation loop.  Double-derives from
    :class:`ValueError` for callers with generic validation handlers.
    """


class UnknownNameError(ReproError, KeyError):
    """A name lookup failed; carries did-you-mean suggestions.

    ``str()`` renders the full message (overriding :class:`KeyError`'s
    repr-of-args behaviour) so tracebacks and CLI output stay readable.
    """

    kind = "name"

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        self.known = sorted(known)
        self.suggestions = did_you_mean(name, self.known)
        message = f"unknown {self.kind} {name!r}"
        if self.suggestions:
            message += "; did you mean: " + ", ".join(self.suggestions) + "?"
        message += " (known: " + ", ".join(self.known) + ")"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class UnknownWorkloadError(UnknownNameError):
    """No workload registered under this name."""

    kind = "workload"


class UnknownConfigError(UnknownNameError):
    """No TLB configuration registered under this name."""

    kind = "configuration"


class InvariantViolation(ReproError):
    """An accounting identity failed during or after simulation.

    Parameters
    ----------
    invariant:
        Short machine-readable identifier (e.g. ``"hit-attribution"``).
    message:
        Human-readable statement of what broke.
    context:
        Every value that participated in the check, for post-mortems.
    """

    def __init__(self, invariant: str, message: str, context: dict | None = None) -> None:
        self.invariant = invariant
        self.context = dict(context or {})
        detail = ""
        if self.context:
            detail = " [" + ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.context.items())
            ) + "]"
        super().__init__(f"invariant {invariant!r} violated: {message}{detail}")


def did_you_mean(name: str, known: Iterable[str], limit: int = 3) -> list[str]:
    """Closest known names to a mistyped one (case-insensitive)."""
    known = list(known)
    by_folded = {candidate.casefold(): candidate for candidate in known}
    matches = difflib.get_close_matches(
        name.casefold(), list(by_folded), n=limit, cutoff=0.5
    )
    return [by_folded[match] for match in matches]
