"""repro — reproduction of "Energy-Efficient Address Translation" (HPCA 2016).

The library provides, as importable building blocks:

* :mod:`repro.tlb` — set-associative / fully-associative / range TLBs with
  true-LRU replacement and way-disabling;
* :mod:`repro.mmu` — x86-64 four-level page table, paging-structure
  caches, and the hardware page walker;
* :mod:`repro.mem` — the OS memory-management substrate (buddy frame
  allocator, VMAs, demand/THP/eager paging, the RMM range table);
* :mod:`repro.core` — the Lite way-disabling mechanism, the six paper
  configurations, and the trace-driven MMU simulator;
* :mod:`repro.energy` — the paper's Table 2 Cacti parameters and Table 3
  energy/performance models;
* :mod:`repro.workloads` — synthetic SPEC/PARSEC/BioBench workload models;
* :mod:`repro.analysis` — experiment drivers and report rendering;
* :mod:`repro.resilience` — fault injection, the runtime invariant
  auditor, and the checkpoint/resume sweep runner (see
  ``docs/robustness.md``), with the error taxonomy in
  :mod:`repro.errors`;
* :mod:`repro.lint` — reprolint, the AST-based static-analysis pass
  that enforces the same invariants at lint time (see
  ``docs/static_analysis.md``).

Quickstart::

    from repro import ExperimentSettings, get_workload, run_workload_config

    result = run_workload_config(
        get_workload("mcf"), "RMM_Lite", ExperimentSettings(trace_accesses=200_000)
    )
    print(result.summary_line())
"""

from .analysis import (
    ExperimentSettings,
    average_ratio,
    normalized_energy,
    normalized_miss_cycles,
    reduction_percent,
    render_table,
    run_matrix,
    run_replicated,
    run_workload_config,
    run_workload_config_with_org,
)
from .core import (
    CONFIG_NAMES,
    RMM_LITE_PARAMS,
    TLB_LITE_PARAMS,
    HierarchyParams,
    LiteController,
    LiteParams,
    Organization,
    SimulationParams,
    SimulationResult,
    Simulator,
    build_organization,
    paging_policy_for,
)
from .energy import EnergyModel
from .errors import ConfigurationError, InvariantViolation, ReproError
from .mem import (
    DemandPaging,
    EagerPaging,
    PhysicalMemory,
    Process,
    TransparentHugePaging,
)
from .mmu import PageSize, PageTable, RangeTranslation, Translation
from .resilience import (
    InvariantAuditor,
    run_fault_campaign,
    run_resilient_sweep,
)
from .workloads import (
    Workload,
    all_workloads,
    get_workload,
    other_workloads,
    tlb_intensive_workloads,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "ExperimentSettings",
    "run_workload_config",
    "run_matrix",
    "run_replicated",
    "run_workload_config_with_org",
    "normalized_energy",
    "normalized_miss_cycles",
    "average_ratio",
    "reduction_percent",
    "render_table",
    # core
    "CONFIG_NAMES",
    "build_organization",
    "paging_policy_for",
    "Organization",
    "Simulator",
    "SimulationResult",
    "SimulationParams",
    "HierarchyParams",
    "LiteParams",
    "LiteController",
    "TLB_LITE_PARAMS",
    "RMM_LITE_PARAMS",
    # energy
    "EnergyModel",
    # errors / resilience
    "ReproError",
    "ConfigurationError",
    "InvariantViolation",
    "InvariantAuditor",
    "run_fault_campaign",
    "run_resilient_sweep",
    # mem
    "Process",
    "PhysicalMemory",
    "DemandPaging",
    "TransparentHugePaging",
    "EagerPaging",
    # mmu
    "PageSize",
    "Translation",
    "RangeTranslation",
    "PageTable",
    # workloads
    "Workload",
    "all_workloads",
    "get_workload",
    "tlb_intensive_workloads",
    "other_workloads",
]
