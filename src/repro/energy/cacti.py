"""Cacti-derived energy parameters (paper Table 2) plus an analytic model.

The paper obtained per-access dynamic energy and leakage power for every
translation structure from CACTI-P at 32 nm; its Table 2 is reproduced
verbatim in :data:`TABLE2_PAGE_TLB`, :data:`TABLE2_FULLY_ASSOC`, and
:data:`TABLE2_MISC`.  Those exact numbers drive all headline experiments.

Structures the paper's table omits are derived with a power-law model
calibrated against the table itself (the substitution is documented per
structure in DESIGN.md):

* set-associative read/write energy fits ``E = C * ways^1.35 * entries^0.29``
  almost perfectly across Table 2's six L1 page-TLB points (ratio error
  < 2% between adjacent configurations);
* the L1-1GB TLB (4-entry fully associative) reuses the PDPTE cache's
  geometry-identical numbers;
* the range TLB's double comparison is Table 2's own convention (CACTI run
  with 2x tag bits) — both range TLBs are in the table, so no derivation
  is needed;
* the L2 data cache read energy (needed only for the Figure 3 walk-
  locality sweep) scales the L1 cache's energy by the typical CACTI
  capacity exponent, E ∝ capacity^0.5 → 256 KB ≈ 2.83x the 32 KB L1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class EnergyParams:
    """Per-access dynamic energy (pJ) and leakage power (mW)."""

    read_pj: float
    write_pj: float
    leakage_mw: float = 0.0

    def scaled(self, factor: float) -> "EnergyParams":
        """All three values scaled by a constant factor."""
        return EnergyParams(
            self.read_pj * factor, self.write_pj * factor, self.leakage_mw * factor
        )


# ----------------------------------------------------------------------
# Paper Table 2, verbatim (32 nm CACTI-P).
# ----------------------------------------------------------------------

#: Set-associative page TLBs keyed by (entries, ways).
TABLE2_PAGE_TLB: dict[tuple[int, int], EnergyParams] = {
    (64, 4): EnergyParams(5.865, 6.858, 0.3632),  # L1-4KB full
    (32, 2): EnergyParams(1.881, 2.377, 0.1491),  # L1-4KB, 2 ways active
    (16, 1): EnergyParams(0.697, 0.945, 0.0636),  # L1-4KB, 1 way active
    (32, 4): EnergyParams(4.801, 5.562, 0.1715),  # L1-2MB full
    (16, 2): EnergyParams(1.536, 1.924, 0.0703),  # L1-2MB, 2 ways active
    (8, 1): EnergyParams(0.568, 0.764, 0.0295),  # L1-2MB, 1 way active
    (512, 4): EnergyParams(8.078, 12.379, 1.6663),  # L2-4KB
}

#: Fully-associative single-tag structures keyed by entries.
TABLE2_FULLY_ASSOC: dict[int, EnergyParams] = {
    4: EnergyParams(0.766, 0.279, 0.0500),  # MMU-cache PDPTE (and L1-1GB TLB)
    2: EnergyParams(0.473, 0.158, 0.0296),  # MMU-cache PML4
}

#: Range TLBs (fully associative, 2x tag bits) keyed by entries.
TABLE2_RANGE_TLB: dict[int, EnergyParams] = {
    4: EnergyParams(1.806, 1.172, 0.1395),  # L1-range TLB
    32: EnergyParams(3.306, 1.568, 0.2401),  # L2-range TLB
}

#: Remaining Table 2 rows.
MMU_CACHE_PDE = EnergyParams(1.824, 2.281, 0.1402)  # 32-entry 2-way
L1_CACHE = EnergyParams(174.171, 186.723, 13.3364)  # 32 KB 8-way data cache

# ----------------------------------------------------------------------
# Analytic extensions (documented substitutions).
# ----------------------------------------------------------------------

#: Exponents of the set-associative power-law fit (see module docstring).
_SA_WAYS_EXPONENT = 1.35
_SA_ENTRIES_EXPONENT = 0.29

#: L2 data cache read energy: L1 x (256KB/32KB)^0.5.
L2_CACHE_READ_PJ = L1_CACHE.read_pj * (256 / 32) ** 0.5


def _power_law_from(
    reference: EnergyParams, ref_key: tuple[int, int], entries: int, ways: int
) -> EnergyParams:
    """Scale a reference set-associative point to a new geometry."""
    ref_entries, ref_ways = ref_key
    factor = (ways / ref_ways) ** _SA_WAYS_EXPONENT * (
        entries / ref_entries
    ) ** _SA_ENTRIES_EXPONENT
    return reference.scaled(factor)


def page_tlb_params(entries: int, ways: int) -> EnergyParams:
    """Energy of a set-associative page TLB configuration.

    Exact Table 2 values when available; otherwise the power-law scaled
    from the nearest table point (preferring one with the same number of
    sets, since way-disabling keeps sets constant).
    """
    key = (entries, ways)
    if key in TABLE2_PAGE_TLB:
        return TABLE2_PAGE_TLB[key]
    sets = entries // ways
    # Prefer a reference with the same set count.
    for ref_key, ref in TABLE2_PAGE_TLB.items():
        if ref_key[0] // ref_key[1] == sets:
            return _power_law_from(ref, (ref_key[0], ref_key[1]), entries, ways)
    ref_key = (64, 4)
    return _power_law_from(TABLE2_PAGE_TLB[ref_key], ref_key, entries, ways)


def fully_assoc_params(entries: int, *, range_tags: bool = False) -> EnergyParams:
    """Energy of a fully-associative structure (optionally range-tagged).

    Exact Table 2 values when available.  Other sizes interpolate with the
    CAM exponent calibrated from the table's 2- and 4-entry points
    (E ∝ entries^0.7); range-tagged sizes scale from the nearest range-TLB
    table point with the same exponent.
    """
    table = TABLE2_RANGE_TLB if range_tags else TABLE2_FULLY_ASSOC
    if entries in table:
        return table[entries]
    exponent = 0.7
    ref_entries = min(table, key=lambda known: abs(known - entries))
    return table[ref_entries].scaled((entries / ref_entries) ** exponent)


def mixed_fa_tlb_params(entries: int) -> EnergyParams:
    """Energy of a fully-associative mixed-page-size TLB (Section 4.4).

    The SPARC/AMD-style single L1 TLB is a CAM whose entries carry
    per-entry page-size masks; its compare is costlier than a plain
    fully-associative tag match but cheaper than the range TLB's double
    comparison (Table 2 prices that at ~2.4x the plain CAM).  We charge a
    1.5x masked-compare premium over the plain fully-associative scaling,
    which also preserves the paper's observation that separate
    set-associative TLBs are more energy-efficient than one large
    fully-associative TLB.
    """
    return fully_assoc_params(entries).scaled(1.5)


def lite_resized_params(full: EnergyParams, fraction: float) -> EnergyParams:
    """Energy of a fully-associative structure resized by Lite.

    Section 4.4: Lite shrinks fully-associative TLBs in powers of two.
    CACTI has no "partially enabled CAM" mode; we scale the full
    structure's energy by the active fraction raised to the CAM exponent,
    consistent with :func:`fully_assoc_params`.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must be in (0, 1]")
    return full.scaled(fraction**0.7)
