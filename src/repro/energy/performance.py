"""Performance model (paper Table 3, performance model).

* L1 TLB hits cost nothing — all L1 TLBs are probed in parallel with the
  L1 data cache.
* An L1 miss triggers the (parallel) L2 TLB lookups: 7 cycles.
* An L2 miss triggers a page walk: 50 cycles.
* RMM range-table walks run in the background and add no cycles.

Cycles spent in TLB misses are the sum of the two penalty terms.  The
paper reports this as a fraction of total execution cycles for context,
but evaluates configurations on the *cycles spent in TLB misses* metric,
normalised to the 4KB configuration, which is what this module computes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: L2 TLB lookup latency (Intel optimisation manual).
L2_LOOKUP_CYCLES = 7

#: Page-walk latency, flat per the paper.
PAGE_WALK_CYCLES = 50


@dataclass(frozen=True, slots=True)
class CycleBreakdown:
    """Cycles spent servicing TLB misses over a measurement window."""

    l1_miss_cycles: int
    l2_miss_cycles: int
    instructions: int

    @property
    def total_cycles(self) -> int:
        """Total cycles lost to TLB misses."""
        return self.l1_miss_cycles + self.l2_miss_cycles

    @property
    def cycles_per_kilo_instruction(self) -> float:
        """TLB-miss cycles per thousand instructions."""
        if self.instructions == 0:
            return 0.0
        return self.total_cycles * 1000.0 / self.instructions


def miss_cycles(l1_misses: int, l2_misses: int, instructions: int) -> CycleBreakdown:
    """Apply the Table 3 cycle model to miss counts."""
    return CycleBreakdown(
        l1_miss_cycles=l1_misses * L2_LOOKUP_CYCLES,
        l2_miss_cycles=l2_misses * PAGE_WALK_CYCLES,
        instructions=instructions,
    )


def mpki(events: int, instructions: int) -> float:
    """Events per thousand instructions (misses, walks, ...)."""
    if instructions == 0:
        return 0.0
    return events * 1000.0 / instructions
