"""Dynamic-energy accounting (paper Table 3, energy model).

For every translation structure::

    E = A * E_read + M * E_write

with ``A`` lookups and ``M`` fills, both histogrammed by the active-way
configuration at access time so a way-disabled TLB is charged the energy
of the equivalent smaller structure (Table 2).  Page walks add one cache
read per page-table memory reference; the paper's default assumes every
walk reference hits the L1 data cache, and Figure 3 sweeps that hit ratio
down to 0% (references then hit the L2 cache) — ``walk_l1_hit_ratio``
exposes the sweep.  RMM's background range-table walks are charged the
same way but add no cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError
from ..tlb.base import TLBStats
from .cacti import L1_CACHE, L2_CACHE_READ_PJ, EnergyParams

#: Component labels used in breakdowns (ordering = display order).
COMPONENTS = (
    "l1_page_tlbs",
    "l1_range_tlb",
    "l2_page_tlb",
    "l2_range_tlb",
    "mmu_cache",
    "page_walk",
    "range_walk",
)


@dataclass(frozen=True, slots=True)
class EnergyBinding:
    """Associates a structure's stats with its energy parameters.

    ``params_for_ways`` maps the number of active ways (or active entries
    for fully-associative structures) to the :class:`EnergyParams` of the
    equivalent structure, per Table 2's way-disabling convention.
    """

    name: str
    component: str
    stats: TLBStats
    params_for_ways: Callable[[int], EnergyParams]


@dataclass(slots=True)
class EnergyBreakdown:
    """Dynamic energy (pJ) per component plus per-structure detail."""

    by_component: dict[str, float] = field(
        default_factory=lambda: {component: 0.0 for component in COMPONENTS}
    )
    by_structure: dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        """Total dynamic energy in pJ."""
        return sum(self.by_component.values())

    @property
    def l1_tlb_pj(self) -> float:
        """Energy of all structures probed on every memory operation."""
        return self.by_component["l1_page_tlbs"] + self.by_component["l1_range_tlb"]

    def fraction(self, component: str) -> float:
        """Share of total energy contributed by one component."""
        total = self.total_pj
        return self.by_component[component] / total if total else 0.0


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from simulation statistics."""

    def __init__(
        self,
        walk_l1_hit_ratio: float = 1.0,
        l1_cache_read_pj: float = L1_CACHE.read_pj,
        l2_cache_read_pj: float = L2_CACHE_READ_PJ,
    ) -> None:
        if not 0.0 <= walk_l1_hit_ratio <= 1.0:
            raise ConfigurationError("walk_l1_hit_ratio must be in [0, 1]")
        self.walk_l1_hit_ratio = walk_l1_hit_ratio
        self.l1_cache_read_pj = l1_cache_read_pj
        self.l2_cache_read_pj = l2_cache_read_pj

    @property
    def walk_ref_pj(self) -> float:
        """Energy of one page-table (or range-table) memory reference."""
        ratio = self.walk_l1_hit_ratio
        return ratio * self.l1_cache_read_pj + (1.0 - ratio) * self.l2_cache_read_pj

    def structure_energy(self, binding: EnergyBinding) -> float:
        """Apply ``E = A*E_read + M*E_write`` over the way histograms.

        The histograms are summed in sorted-key order: a restored
        checkpoint rebuilds these dicts in serialized order rather than
        chronological insertion order, and float addition is not
        associative — unsorted iteration made a resumed run's energy
        differ from the fresh run's in the last ulp.
        """
        total = 0.0
        for ways, count in sorted(binding.stats.lookups_by_ways.items()):
            total += count * binding.params_for_ways(ways).read_pj
        for ways, count in sorted(binding.stats.fills_by_ways.items()):
            total += count * binding.params_for_ways(ways).write_pj
        return total

    def compute(
        self,
        bindings: list[EnergyBinding],
        page_walk_refs: int = 0,
        range_walk_refs: int = 0,
    ) -> EnergyBreakdown:
        """Total up all structures plus walk memory references."""
        breakdown = EnergyBreakdown()
        for binding in bindings:
            energy = self.structure_energy(binding)
            breakdown.by_component[binding.component] += energy
            breakdown.by_structure[binding.name] = (
                breakdown.by_structure.get(binding.name, 0.0) + energy
            )
        breakdown.by_component["page_walk"] = page_walk_refs * self.walk_ref_pj
        breakdown.by_component["range_walk"] = range_walk_refs * self.walk_ref_pj
        return breakdown
