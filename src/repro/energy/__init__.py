"""Energy and performance models (paper Tables 2 and 3)."""

from .cacti import (
    L1_CACHE,
    L2_CACHE_READ_PJ,
    MMU_CACHE_PDE,
    TABLE2_FULLY_ASSOC,
    TABLE2_PAGE_TLB,
    TABLE2_RANGE_TLB,
    EnergyParams,
    fully_assoc_params,
    lite_resized_params,
    page_tlb_params,
)
from .model import COMPONENTS, EnergyBinding, EnergyBreakdown, EnergyModel
from .static import StaticEnergyModel
from .performance import (
    L2_LOOKUP_CYCLES,
    PAGE_WALK_CYCLES,
    CycleBreakdown,
    miss_cycles,
    mpki,
)

__all__ = [
    "EnergyParams",
    "page_tlb_params",
    "fully_assoc_params",
    "lite_resized_params",
    "TABLE2_PAGE_TLB",
    "TABLE2_FULLY_ASSOC",
    "TABLE2_RANGE_TLB",
    "MMU_CACHE_PDE",
    "L1_CACHE",
    "L2_CACHE_READ_PJ",
    "EnergyModel",
    "StaticEnergyModel",
    "EnergyBinding",
    "EnergyBreakdown",
    "COMPONENTS",
    "CycleBreakdown",
    "miss_cycles",
    "mpki",
    "L2_LOOKUP_CYCLES",
    "PAGE_WALK_CYCLES",
]
