"""Static (leakage) energy model — the paper's Section 6.2 extension.

The paper focuses on dynamic energy but notes that "the proposed
techniques can also reduce the static (leakage) energy of TLBs when
combined with schemes that power-gate the disabled ways" (gated-Vdd
etc.).  Table 2 supplies per-structure leakage power for every
way-disabled configuration, which is all the model needs:

* execution time comes from the instruction count at a nominal IPC and
  clock, plus the TLB-miss cycles of the run;
* without power gating, every structure leaks at its full-configuration
  power for the whole run;
* with power gating, a structure's leakage follows its active
  configuration, time-weighted by the per-way lookup histogram the
  simulator already records (lookups are issued every cycle-ish, so the
  histogram is a faithful proxy for residency time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - avoid energy <-> core import cycle
    from ..core.organizations import Organization
    from ..core.stats import SimulationResult

#: mW * seconds -> pJ.
_MW_S_TO_PJ = 1e9


@dataclass(frozen=True, slots=True)
class StaticEnergyModel:
    """Leakage energy estimator over a simulation's execution time."""

    frequency_ghz: float = 3.0
    ipc: float = 1.0

    def execution_seconds(self, result: "SimulationResult") -> float:
        """Wall time of the measured window: compute + TLB-miss cycles."""
        if self.frequency_ghz <= 0 or self.ipc <= 0:
            raise ConfigurationError("frequency and IPC must be positive")
        cycles = result.instructions / self.ipc + result.miss_cycles
        return cycles / (self.frequency_ghz * 1e9)

    def leakage_pj(
        self,
        organization: "Organization",
        result: "SimulationResult",
        power_gating: bool = True,
    ) -> dict[str, float]:
        """Per-structure leakage energy (pJ) over the measured window.

        ``organization`` supplies each structure's Table 2 parameters per
        way configuration; ``result`` supplies the per-configuration
        lookup histogram and the execution time.
        """
        seconds = self.execution_seconds(result)
        full_units = {
            structure.name: getattr(structure, "ways", None)
            or getattr(structure, "entries", 1)
            for structure in organization.hierarchy.all_structures()
        }
        leakage: dict[str, float] = {}
        for binding in organization.bindings:
            stats = result.structure_stats.get(binding.name)
            histogram = stats.lookups_by_ways if stats is not None else {}
            total_lookups = sum(histogram.values())
            if power_gating and total_lookups:
                milliwatts = sum(
                    count / total_lookups * binding.params_for_ways(ways).leakage_mw
                    for ways, count in histogram.items()
                )
            else:
                # The full configuration leaks for the whole run
                # (structures that were never probed still leak unless
                # gated off entirely).
                full = full_units.get(binding.name, 1)
                milliwatts = binding.params_for_ways(full).leakage_mw
            leakage[binding.name] = milliwatts * seconds * _MW_S_TO_PJ
        return leakage

    def total_leakage_pj(
        self,
        organization: "Organization",
        result: "SimulationResult",
        power_gating: bool = True,
    ) -> float:
        """Sum of per-structure leakage energies."""
        return sum(self.leakage_pj(organization, result, power_gating).values())

    def total_energy_pj(
        self,
        organization: "Organization",
        result: "SimulationResult",
        power_gating: bool = True,
    ) -> float:
        """Dynamic + static energy of the address-translation path."""
        return result.total_energy_pj + self.total_leakage_pj(
            organization, result, power_gating
        )
