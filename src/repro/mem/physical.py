"""Physical memory: a buddy frame allocator with fragmentation controls.

The virtual→physical layout is what distinguishes the paper's
configurations: demand 4 KB paging scatters frames, transparent huge pages
need 2 MB-aligned contiguous blocks, and RMM's eager paging needs one
arbitrarily large contiguous block per allocation request.  A classic
binary-buddy allocator supports all three:

* ``alloc_block(order)`` returns a naturally aligned 2^order-frame block —
  THP uses order 9 (2 MB).
* ``alloc_contiguous(n)`` carves an arbitrary-length run out of a covering
  power-of-two block and returns the tail to the free lists — eager paging
  uses this, and the natural alignment of the covering block guarantees
  the 2 MB alignment RMM needs to lay huge pages inside the range.
* ``alloc_frame()`` returns single frames drawn from a *shuffled* pool, so
  demand-paged 4 KB mappings are physically non-contiguous the way an aged
  system's would be (otherwise a fresh buddy allocator hands out ascending
  frames and 4 KB paging would accidentally produce perfect ranges).

Free lists use a heap per order with lazy deletion, so allocation is
deterministic (lowest address wins) and O(log n), which matters when a
1.7 GB mcf-sized footprint demand-faults ~450 K frames at setup.
"""

from __future__ import annotations

import heapq
import random

from ..errors import AddressSpaceError
from ..stateful import require, rng_state_from_json, rng_state_to_json

#: Frames handed to the scatter pool per refill (order-12 block = 16 MB).
_SCATTER_REFILL_ORDER = 12


class OutOfMemoryError(Exception):
    """The allocator cannot satisfy a request."""


def _covering_order(npages: int) -> int:
    """Smallest order whose block covers ``npages`` frames."""
    return max(npages - 1, 0).bit_length()


class PhysicalMemory:
    """Binary-buddy allocator over a flat physical frame space.

    Parameters
    ----------
    total_bytes:
        Size of physical memory; must be a multiple of 4 KB.
    seed:
        Seed for the scatter pool's shuffle (single-frame allocations).
    """

    # Free-frame count is rebuilt from the serialized free lists on load.
    _CHECKPOINT_DERIVED = ("_frames_free",)

    def __init__(self, total_bytes: int = 32 << 30, seed: int = 0) -> None:
        if total_bytes <= 0 or total_bytes % 4096 != 0:
            raise AddressSpaceError("total_bytes must be a positive multiple of 4096")
        self.total_frames = total_bytes >> 12
        self.max_order = _covering_order(self.total_frames)
        # Per order: heap of block starts + membership set (lazy deletion).
        self._heaps: list[list[int]] = [[] for _ in range(self.max_order + 1)]
        self._free: list[set[int]] = [set() for _ in range(self.max_order + 1)]
        self._frames_free = 0
        self._rng = random.Random(seed)
        self._scatter_pool: list[int] = []
        # Seed the free lists with the power-of-two decomposition of the
        # arena (handles non-power-of-two sizes).
        self._free_run(0, self.total_frames)

    # ------------------------------------------------------------------
    # Free-list primitives
    # ------------------------------------------------------------------
    def _push(self, pfn: int, order: int) -> None:
        heapq.heappush(self._heaps[order], pfn)
        self._free[order].add(pfn)
        self._frames_free += 1 << order

    def _pop_order(self, order: int) -> int:
        """Pop the lowest-address free block of exactly this order."""
        heap = self._heaps[order]
        live = self._free[order]
        while heap:
            pfn = heapq.heappop(heap)
            if pfn in live:
                live.remove(pfn)
                self._frames_free -= 1 << order
                return pfn
        raise OutOfMemoryError(f"no free block of order {order}")

    def _remove_specific(self, pfn: int, order: int) -> bool:
        """Remove a specific block from its free list (for buddy merging)."""
        if pfn in self._free[order]:
            self._free[order].remove(pfn)
            self._frames_free -= 1 << order
            return True
        return False

    # ------------------------------------------------------------------
    # Block allocation
    # ------------------------------------------------------------------
    def alloc_block(self, order: int) -> int:
        """Allocate a naturally aligned block of 2^order frames.

        A request larger than the whole arena raises
        :class:`OutOfMemoryError` (policies treat it like any other
        allocation failure and degrade); a negative order is a bug.
        """
        if order < 0:
            raise AddressSpaceError(f"order {order} must be non-negative")
        if order > self.max_order:
            raise OutOfMemoryError(
                f"order {order} exceeds the arena (max order {self.max_order})"
            )
        found = None
        for candidate in range(order, self.max_order + 1):
            if self._free[candidate]:
                found = candidate
                break
        if found is None:
            raise OutOfMemoryError(f"no free block of order >= {order}")
        pfn = self._pop_order(found)
        # Split down, returning upper halves to the free lists.
        while found > order:
            found -= 1
            self._push(pfn + (1 << found), found)
        return pfn

    def free_block(self, pfn: int, order: int) -> None:
        """Free a block, merging with its buddy as far as possible."""
        if pfn % (1 << order) != 0:
            raise AddressSpaceError(f"block {pfn:#x} not aligned to order {order}")
        while order < self.max_order:
            buddy = pfn ^ (1 << order)
            if buddy + (1 << order) > self.total_frames:
                break
            if not self._remove_specific(buddy, order):
                break
            pfn = min(pfn, buddy)
            order += 1
        self._push(pfn, order)

    # ------------------------------------------------------------------
    # Arbitrary-length contiguous allocation (eager paging)
    # ------------------------------------------------------------------
    def alloc_contiguous(self, npages: int) -> int:
        """Allocate ``npages`` physically contiguous frames.

        The run starts at a block aligned to the covering power of two, so
        any 2 MB-aligned offset into the run is itself 2 MB aligned in
        physical memory (required for laying huge pages inside a range).
        The unused tail is returned to the free lists immediately.
        """
        if npages <= 0:
            raise AddressSpaceError("npages must be positive")
        order = _covering_order(npages)
        pfn = self.alloc_block(order)
        self._free_run(pfn + npages, (1 << order) - npages)
        return pfn

    def free_contiguous(self, pfn: int, npages: int) -> None:
        """Free a run previously returned by :meth:`alloc_contiguous`."""
        self._free_run(pfn, npages)

    def _free_run(self, pfn: int, npages: int) -> None:
        """Free an arbitrary frame run via maximal aligned power-of-two blocks."""
        while npages > 0:
            order = min(
                (pfn & -pfn).bit_length() - 1 if pfn else self.max_order,
                npages.bit_length() - 1,
            )
            self.free_block(pfn, order)
            pfn += 1 << order
            npages -= 1 << order

    # ------------------------------------------------------------------
    # Scattered single-frame allocation (demand 4 KB paging)
    # ------------------------------------------------------------------
    def alloc_frame(self) -> int:
        """Allocate one frame from the shuffled scatter pool."""
        if not self._scatter_pool:
            self._refill_scatter_pool()
        return self._scatter_pool.pop()

    def alloc_frames(self, n: int) -> list[int]:
        """Allocate ``n`` scattered frames."""
        return [self.alloc_frame() for _ in range(n)]

    def free_frame(self, pfn: int) -> None:
        """Return a single frame to the buddy free lists."""
        self.free_block(pfn, 0)

    def _refill_scatter_pool(self) -> None:
        """Split off a chunk of frames and shuffle them into the pool."""
        order = _SCATTER_REFILL_ORDER
        while order >= 0:
            try:
                base = self.alloc_block(order)
                break
            except OutOfMemoryError:
                order -= 1
        else:
            raise OutOfMemoryError("physical memory exhausted")
        frames = list(range(base, base + (1 << order)))
        self._rng.shuffle(frames)
        self._scatter_pool.extend(frames)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def frames_free(self) -> int:
        """Frames currently free (scatter-pool frames count as allocated)."""
        return self._frames_free

    @property
    def scatter_pool_frames(self) -> int:
        """Frames parked in the scatter pool (allocated but not handed out)."""
        return len(self._scatter_pool)

    @property
    def frames_used(self) -> int:
        """Frames handed out (including those parked in the scatter pool)."""
        return self.total_frames - self._frames_free

    def fragment(self, fraction: float, seed: int | None = None) -> list[int]:
        """Artificially age the allocator by pinning random single frames.

        Allocates ``fraction`` of free memory as scattered frames and
        returns them (callers may free a subset to create holes).  Used by
        the THP-fragmentation ablation to make 2 MB allocations fail.
        """
        if not 0.0 <= fraction <= 1.0:
            raise AddressSpaceError("fraction must be in [0, 1]")
        if seed is not None:
            self._rng = random.Random(seed)
        count = int(self._frames_free * fraction)
        return [self.alloc_frame() for _ in range(count)]

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pure-JSON allocator state.

        Free lists serialize as the sorted *live* block starts per order —
        lazily deleted heap entries are dropped, which is behaviour-
        identical because :meth:`_pop_order` always returns the lowest
        live address either way.
        """
        return {
            "total_frames": self.total_frames,
            "free": [sorted(live) for live in self._free],
            "scatter_pool": list(self._scatter_pool),
            "rng": rng_state_to_json(self._rng.getstate()),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the allocator onto a same-sized arena."""
        require(
            state["total_frames"] == self.total_frames,
            f"allocator snapshot covers {state['total_frames']} frames, "
            f"expected {self.total_frames}",
        )
        require(
            len(state["free"]) == len(self._free),
            f"allocator snapshot has {len(state['free'])} orders, "
            f"expected {len(self._free)}",
        )
        self._frames_free = 0
        for order, starts in enumerate(state["free"]):
            self._free[order] = set(starts)
            heap = sorted(starts)
            heapq.heapify(heap)
            self._heaps[order] = heap
            self._frames_free += len(starts) << order
        self._scatter_pool = list(state["scatter_pool"])
        self._rng.setstate(rng_state_from_json(state["rng"]))
