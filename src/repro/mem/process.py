"""Process abstraction tying together the OS memory-management substrate.

A :class:`Process` owns an address space, a page table, a range table, and
a reference to physical memory, and applies a paging policy when regions
are mapped.  Workload models build a process per run; the simulator
translates the workload's reference stream against the process's page and
range tables.
"""

from __future__ import annotations

import random

from ..errors import AddressSpaceError
from ..mmu.page_table import PageTable
from ..mmu.translation import PageSize, Translation
from ..stateful import rng_state_from_json, rng_state_to_json
from .paging import DemandPaging, PagingPolicy
from .physical import PhysicalMemory
from .range_table import RangeTable
from .vma import VMA, AddressSpace


class Process:
    """One simulated process: address space + page/range tables + policy."""

    def __init__(
        self,
        physical: PhysicalMemory | None = None,
        policy: PagingPolicy | None = None,
        seed: int = 0,
    ) -> None:
        self.physical = physical if physical is not None else PhysicalMemory()
        self.policy = policy if policy is not None else DemandPaging()
        self.address_space = AddressSpace()
        self.page_table = PageTable()
        self.range_table = RangeTable()
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------
    def mmap(
        self,
        num_pages: int,
        name: str = "anon",
        at_vpn: int | None = None,
        thp_eligible: bool = True,
        policy: PagingPolicy | None = None,
        alignment: int | None = None,
    ) -> VMA:
        """Map a region of ``num_pages`` 4 KB pages and populate it.

        The populate step installs all physical backing immediately (see
        :mod:`repro.mem.paging` for why).  A per-call ``policy`` overrides
        the process default, letting mixed layouts be built for tests;
        ``alignment`` overrides the placement alignment (1 GB-backed
        regions pass the 1 GB page count).
        """
        vma = self.address_space.mmap(
            num_pages,
            name=name,
            at_vpn=at_vpn,
            thp_eligible=thp_eligible,
            alignment=alignment,
        )
        (policy or self.policy).populate(self, vma)
        return vma

    def mmap_bytes(self, nbytes: int, name: str = "anon", **kwargs) -> VMA:
        """Map a region sized in bytes (rounded up to whole pages)."""
        num_pages = (nbytes + 4095) >> 12
        return self.mmap(num_pages, name=name, **kwargs)

    def munmap(self, vma: VMA) -> None:
        """Tear down a VMA: page tables, ranges, and physical frames."""
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            leaf = self.page_table.unmap(vpn)
            if leaf.page_size is PageSize.SIZE_4KB:
                self.physical.free_frame(leaf.pfn)
            else:
                self.physical.free_contiguous(leaf.pfn, int(leaf.page_size))
            vpn += int(leaf.page_size)
        # Eager paging may have split the VMA into several ranges under
        # fragmentation; remove every range inside it.
        stale = [
            rng
            for rng in list(self.range_table)
            if vma.start_vpn <= rng.base_vpn and rng.limit_vpn <= vma.end_vpn
        ]
        for rng in stale:
            self.range_table.remove(rng)
        self.address_space.munmap(vma)

    # ------------------------------------------------------------------
    # Huge-page breakdown (memory-pressure response, paper Section 4.2.2)
    # ------------------------------------------------------------------
    def break_huge_page(self, vpn4k: int) -> Translation:
        """Split the 2 MB page covering ``vpn4k`` into 512 4 KB mappings.

        Models the kernel responding to memory pressure by demoting a
        transparent huge page; the physical frames stay in place, only
        the page-table representation changes (so the range table, if
        any, remains valid).  Returns the demoted 2 MB leaf.  The caller
        is responsible for the TLB shootdown
        (:meth:`repro.core.hierarchy.BaseHierarchy.shootdown_huge_page`).
        """
        leaf = self.page_table.walk(vpn4k)
        if leaf.page_size is not PageSize.SIZE_2MB:
            raise AddressSpaceError(
                f"vpn {vpn4k:#x} is backed by a {leaf.page_size.label()} page"
            )
        self.page_table.unmap(leaf.vpn)
        for offset in range(int(PageSize.SIZE_2MB)):
            self.page_table.map(
                Translation(leaf.vpn + offset, leaf.pfn + offset, PageSize.SIZE_4KB)
            )
        return leaf

    def break_huge_pages(self, fraction: float, seed: int | None = None) -> int:
        """Demote a random fraction of all 2 MB pages; returns the count.

        Victim selection draws from the process's own seeded RNG (set at
        construction) so repeated runs with the same ``Process`` seed are
        deterministic; an explicit ``seed`` pins the draw independently of
        how many random decisions the process made before this call.
        """
        if not 0.0 <= fraction <= 1.0:
            raise AddressSpaceError("fraction must be in [0, 1]")
        huge = [
            leaf.vpn
            for leaf in self.page_table.iter_translations()
            if leaf.page_size is PageSize.SIZE_2MB
        ]
        rng = self._rng if seed is None else random.Random(seed)
        victims = rng.sample(huge, round(len(huge) * fraction))
        for vpn in victims:
            self.break_huge_page(vpn)
        return len(victims)

    # ------------------------------------------------------------------
    # Translation ground truth
    # ------------------------------------------------------------------
    def translate(self, vpn4k: int) -> int:
        """Physical frame of a virtual page, straight from the page table."""
        return self.page_table.translate(vpn4k)

    def leaf_for(self, vpn4k: int) -> Translation:
        """Leaf page-table entry covering a page (raises PageFault)."""
        return self.page_table.walk(vpn4k)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def page_size_histogram(self) -> dict[PageSize, int]:
        """Count of leaf entries per page size (layout sanity checks)."""
        histogram: dict[PageSize, int] = {size: 0 for size in PageSize}
        for leaf in self.page_table.iter_translations():
            histogram[leaf.page_size] += 1
        return histogram

    def describe(self) -> str:
        """One-line summary for logs and examples."""
        mapped_mb = self.address_space.mapped_pages * 4096 / (1 << 20)
        return (
            f"Process[{self.policy.describe()}]: "
            f"{len(self.address_space)} VMAs, {mapped_mb:.1f} MB mapped, "
            f"{len(self.range_table)} ranges"
        )

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pure-JSON mutable OS state.

        The address space (VMA layout) is deliberately absent: it is
        construction geometry — workload builders lay it out
        deterministically from the workload seed, and nothing in the
        simulation loop mutates VMAs.  What does change mid-run (huge-page
        demotions, allocator churn, RNG draws) is captured here.
        """
        return {
            "seed": self.seed,
            "physical": self.physical.state_dict(),
            "page_table": self.page_table.state_dict(),
            "range_table": self.range_table.state_dict(),
            "rng": rng_state_to_json(self._rng.getstate()),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore onto a canonically rebuilt (same-workload) process."""
        self.seed = state["seed"]
        self.physical.load_state_dict(state["physical"])
        self.page_table.load_state_dict(state["page_table"])
        self.range_table.load_state_dict(state["range_table"])
        self._rng.setstate(rng_state_from_json(state["rng"]))
