"""Software-managed range table (RMM).

RMM stores each process's range translations in an OS-managed table that
the hardware range-table walker searches on a range-TLB miss.  The
original design organises it as a B-tree keyed by virtual address; we keep
a sorted array with binary search, which has identical lookup semantics,
and model the *walk cost* (memory references the background hardware walk
performs) as the depth of the equivalent B-tree node path.

Range-table walks happen in the background and add no cycles (Section 5),
but their memory references are charged dynamic energy.
"""

from __future__ import annotations

import bisect
import math

from ..mmu.translation import RangeTranslation

#: Fanout of the modelled B-tree (entries per node), from the RMM design
#: where a node fills a cache line's worth of range records.
BTREE_FANOUT = 4


class RangeTableError(Exception):
    """Raised on overlapping inserts or missing removals."""


class RangeTable:
    """Sorted, non-overlapping collection of range translations."""

    # Bisect index is rebuilt from the serialized ranges on load.
    _CHECKPOINT_DERIVED = ("_starts",)

    def __init__(self) -> None:
        self._ranges: list[RangeTranslation] = []
        self._starts: list[int] = []

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self):
        return iter(self._ranges)

    def insert(self, rng: RangeTranslation) -> None:
        """Add a range; refuses virtual overlap with an existing range."""
        index = bisect.bisect_left(self._starts, rng.base_vpn)
        for neighbour in self._ranges[max(index - 1, 0) : index + 1]:
            if neighbour.overlaps(rng):
                raise RangeTableError(f"{rng} overlaps existing {neighbour}")
        self._ranges.insert(index, rng)
        self._starts.insert(index, rng.base_vpn)

    def remove(self, rng: RangeTranslation) -> None:
        """Remove a previously inserted range."""
        index = bisect.bisect_left(self._starts, rng.base_vpn)
        if index >= len(self._ranges) or self._ranges[index] != rng:
            raise RangeTableError(f"{rng} not in range table")
        del self._ranges[index]
        del self._starts[index]

    def lookup(self, vpn4k: int) -> RangeTranslation | None:
        """Range containing the page, or ``None`` (binary search)."""
        index = bisect.bisect_right(self._starts, vpn4k) - 1
        if index >= 0:
            rng = self._ranges[index]
            if rng.covers(vpn4k):
                return rng
        return None

    def walk_memory_refs(self) -> int:
        """Memory references of one background range-table walk.

        Modelled as the root-to-leaf node count of a B-tree with fanout
        :data:`BTREE_FANOUT` holding the current number of ranges (at
        least one reference — the walker always reads at least the root).
        """
        count = len(self._ranges)
        if count <= 1:
            return 1
        return 1 + math.ceil(math.log(count, BTREE_FANOUT))

    def total_pages(self) -> int:
        """Pages covered by all ranges (range-reach report)."""
        return sum(rng.num_pages for rng in self._ranges)

    def state_dict(self) -> dict:
        """Pure-JSON ranges in ascending virtual order."""
        return {
            "ranges": [
                [rng.base_vpn, rng.limit_vpn, rng.base_pfn] for rng in self._ranges
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild the sorted arrays from :meth:`state_dict` output."""
        self._ranges = [
            RangeTranslation(base, limit, pfn) for base, limit, pfn in state["ranges"]
        ]
        self._starts = [rng.base_vpn for rng in self._ranges]
