"""Virtual memory areas and the per-process address-space map.

A :class:`VMA` is a named, contiguous virtual region (heap segment, mmap'd
arena, stack, ...).  The :class:`AddressSpace` keeps VMAs sorted and
non-overlapping and hands out 2 MB-aligned placements by default, so that
transparent huge pages and eager-paging ranges can use huge mappings with
congruent virtual/physical alignment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import AddressSpaceError, MappingLookupError
from ..mmu.translation import PAGES_PER_2MB


@dataclass(frozen=True, slots=True)
class VMA:
    """One virtual memory area, in 4 KB-page units."""

    start_vpn: int
    num_pages: int
    name: str = "anon"
    thp_eligible: bool = True

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise AddressSpaceError("VMA must cover at least one page")
        if self.start_vpn < 0:
            raise AddressSpaceError("VMA start must be non-negative")

    @property
    def end_vpn(self) -> int:
        """One past the last page (half-open interval)."""
        return self.start_vpn + self.num_pages

    @property
    def bytes(self) -> int:
        """Region size in bytes."""
        return self.num_pages << 12

    def contains(self, vpn4k: int) -> bool:
        """True if the page lies inside this VMA."""
        return self.start_vpn <= vpn4k < self.end_vpn

    def overlaps(self, other: "VMA") -> bool:
        """True if two VMAs share any page."""
        return self.start_vpn < other.end_vpn and other.start_vpn < self.end_vpn


@dataclass
class AddressSpace:
    """Sorted, non-overlapping collection of VMAs.

    ``base_vpn`` is where automatic placement starts (default 0x10000,
    i.e. VA 0x10000000, clear of the null region), and ``alignment`` is
    the default placement alignment in pages (512 = 2 MB).
    """

    base_vpn: int = 0x10000
    alignment: int = PAGES_PER_2MB
    _vmas: list[VMA] = field(default_factory=list)
    _starts: list[int] = field(default_factory=list)

    def mmap(
        self,
        num_pages: int,
        name: str = "anon",
        at_vpn: int | None = None,
        thp_eligible: bool = True,
        alignment: int | None = None,
    ) -> VMA:
        """Create a VMA, either at a fixed address or auto-placed.

        Auto-placement appends after the last VMA at the configured
        alignment with one guard huge-page gap, which keeps distinct VMAs
        from coalescing into a single range translation.  ``alignment``
        overrides the default placement alignment for this call (e.g.
        1 GB-page-backed regions need 1 GB-aligned virtual addresses).
        """
        alignment = alignment or self.alignment
        if at_vpn is None:
            if self._vmas:
                at_vpn = self._vmas[-1].end_vpn + alignment
            else:
                at_vpn = self.base_vpn
            remainder = at_vpn % alignment
            if remainder:
                at_vpn += alignment - remainder
        vma = VMA(at_vpn, num_pages, name=name, thp_eligible=thp_eligible)
        index = bisect.bisect_left(self._starts, vma.start_vpn)
        for neighbour in self._vmas[max(index - 1, 0) : index + 1]:
            if neighbour.overlaps(vma):
                raise AddressSpaceError(f"{vma} overlaps existing {neighbour}")
        self._vmas.insert(index, vma)
        self._starts.insert(index, vma.start_vpn)
        return vma

    def munmap(self, vma: VMA) -> None:
        """Remove a VMA (mappings must be torn down by the caller)."""
        index = bisect.bisect_left(self._starts, vma.start_vpn)
        if index >= len(self._vmas) or self._vmas[index] != vma:
            raise MappingLookupError(f"{vma} not in address space")
        del self._vmas[index]
        del self._starts[index]

    def find(self, vpn4k: int) -> VMA | None:
        """VMA containing the page, or ``None``."""
        index = bisect.bisect_right(self._starts, vpn4k) - 1
        if index >= 0 and self._vmas[index].contains(vpn4k):
            return self._vmas[index]
        return None

    def __iter__(self):
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    @property
    def mapped_pages(self) -> int:
        """Total pages covered by all VMAs."""
        return sum(vma.num_pages for vma in self._vmas)
