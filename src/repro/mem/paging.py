"""Paging policies: demand 4 KB, transparent huge pages, eager paging.

Each paper configuration assumes a specific OS memory-allocation policy:

* **4KB** — demand paging with 4 KB pages only, scattered frames.
* **THP** — transparent huge pages: 2 MB-aligned, fully covered chunks of
  an eligible VMA are backed by 2 MB frames; the rest by 4 KB pages.  The
  ``coverage`` knob models memory fragmentation breaking huge-page
  allocation (1.0 = pristine system, the paper's assumption).
* **Eager paging (RMM)** — each allocation request is backed by one
  physically contiguous block at request time, producing a range
  translation; page tables are still populated *redundantly* so that page
  TLBs and walks keep working (the "redundant" in RMM).  Inside the block
  pages are laid out either as THP (the paper's RMM configuration) or as
  4 KB only (the RMM_Lite configuration, which drops the L1-2MB TLB).

Policies populate mappings eagerly at ``mmap`` time.  That matches the
paper's methodology: its traces come from pagemap snapshots of already-
faulted processes, so fault-time behaviour is not part of any experiment.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..errors import AddressSpaceError
from ..mmu.translation import PAGES_PER_2MB, PageSize, RangeTranslation, Translation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .process import Process
    from .vma import VMA


class PagingPolicy:
    """Interface: installs the physical backing for a fresh VMA."""

    def populate(self, process: "Process", vma: "VMA") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """Short label used in reports."""
        return type(self).__name__


class DemandPaging(PagingPolicy):
    """4 KB pages only, one scattered frame per page."""

    def populate(self, process: "Process", vma: "VMA") -> None:
        page_table = process.page_table
        physical = process.physical
        for vpn in range(vma.start_vpn, vma.end_vpn):
            page_table.map(Translation(vpn, physical.alloc_frame(), PageSize.SIZE_4KB))

    def describe(self) -> str:
        return "4KB demand paging"


def _map_thp_region(process: "Process", start: int, end: int, use_huge, *, pfn_for=None) -> None:
    """Map [start, end) with 2 MB pages where aligned/covered, else 4 KB.

    ``use_huge(chunk_vpn)`` decides per 2 MB chunk (coverage/fragmentation
    policy).  ``pfn_for(vpn)`` overrides frame selection for eager paging
    (contiguous block); when ``None`` frames come from the allocator.

    When physical memory is too fragmented to supply a 2 MB block, the
    chunk silently degrades to 4 KB pages — exactly what a real THP
    allocation does under fragmentation (single frames remain available
    through buddy splitting as long as any memory is free).
    """
    from .physical import OutOfMemoryError

    page_table = process.page_table
    physical = process.physical
    vpn = start
    while vpn < end:
        chunk = PageSize.SIZE_2MB.align_down(vpn)
        if (
            chunk == vpn
            and vpn + PAGES_PER_2MB <= end
            and use_huge(vpn)
            and (pfn_for is None or pfn_for(vpn) % PAGES_PER_2MB == 0)
        ):
            try:
                pfn = pfn_for(vpn) if pfn_for else physical.alloc_block(9)
            except OutOfMemoryError:
                pfn = None  # fragmentation: degrade this chunk to 4 KB
            if pfn is not None:
                page_table.map(Translation(vpn, pfn, PageSize.SIZE_2MB))
                vpn += PAGES_PER_2MB
                continue
        pfn = pfn_for(vpn) if pfn_for else physical.alloc_frame()
        page_table.map(Translation(vpn, pfn, PageSize.SIZE_4KB))
        vpn += 1


class TransparentHugePaging(PagingPolicy):
    """THP: huge pages on aligned, covered, eligible chunks.

    ``coverage`` is the probability a chunk successfully gets a 2 MB
    frame; chunks that fail fall back to 4 KB pages, modelling
    fragmentation or khugepaged lag.
    """

    def __init__(self, coverage: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise AddressSpaceError("coverage must be in [0, 1]")
        self.coverage = coverage
        self._rng = random.Random(seed)

    def populate(self, process: "Process", vma: "VMA") -> None:
        if not vma.thp_eligible:
            DemandPaging().populate(process, vma)
            return
        _map_thp_region(
            process,
            vma.start_vpn,
            vma.end_vpn,
            lambda _vpn: self.coverage >= 1.0 or self._rng.random() < self.coverage,
        )

    def describe(self) -> str:
        return f"THP (coverage={self.coverage:g})"


class HugeTLBFSPaging(PagingPolicy):
    """Explicitly reserved huge pages (Linux hugetlbfs semantics).

    Backs aligned, fully covered stretches of a VMA with pages of the
    requested size — including 1 GB pages, which transparent huge pages
    never produce.  This is what exercises the baseline hierarchy's
    L1-1GB TLB (Figure 1) and the walker's two-reference 1 GB walks.
    Head/tail remainders cascade to the next smaller size (1 GB → 2 MB →
    4 KB), like a hugetlbfs mapping padded by ordinary memory.

    The caller must place the VMA at a virtual address aligned to the
    page size (``Process.mmap(..., alignment=int(page_size))``).
    """

    def __init__(self, page_size: PageSize = PageSize.SIZE_1GB) -> None:
        if page_size is PageSize.SIZE_4KB:
            raise AddressSpaceError("use DemandPaging for 4 KB mappings")
        self.page_size = page_size

    def populate(self, process: "Process", vma: "VMA") -> None:
        if vma.start_vpn % int(self.page_size) != 0:
            raise AddressSpaceError(
                f"{vma} not aligned to {self.page_size.label()} "
                f"(mmap with alignment={int(self.page_size)})"
            )
        page_table = process.page_table
        physical = process.physical
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            placed = False
            for size in (self.page_size, PageSize.SIZE_2MB):
                if int(size) > int(self.page_size):
                    continue
                if vpn % int(size) == 0 and vpn + int(size) <= vma.end_vpn:
                    order = int(size).bit_length() - 1
                    page_table.map(Translation(vpn, physical.alloc_block(order), size))
                    vpn += int(size)
                    placed = True
                    break
            if not placed:
                page_table.map(
                    Translation(vpn, physical.alloc_frame(), PageSize.SIZE_4KB)
                )
                vpn += 1

    def describe(self) -> str:
        return f"hugetlbfs ({self.page_size.label()} pages)"


class EagerPaging(PagingPolicy):
    """RMM eager paging: one contiguous block + range translation per VMA.

    ``page_layout`` selects the redundant page-table layout inside the
    block: ``"thp"`` (paper's RMM config) or ``"4kb"`` (RMM_Lite).  The
    paper's configurations assume *perfect* eager paging — every request
    is satisfied contiguously — which is what a fresh buddy allocator
    provides; fragmented scenarios can be built by pre-fragmenting
    :class:`repro.mem.physical.PhysicalMemory`.
    """

    def __init__(self, page_layout: str = "thp", min_range_pages: int = 64) -> None:
        if page_layout not in ("thp", "4kb"):
            raise AddressSpaceError("page_layout must be 'thp' or '4kb'")
        if min_range_pages < 1:
            raise AddressSpaceError("min_range_pages must be >= 1")
        self.page_layout = page_layout
        self.min_range_pages = min_range_pages

    def populate(self, process: "Process", vma: "VMA") -> None:
        self._populate_range(process, vma, vma.start_vpn, vma.end_vpn)

    def _populate_range(self, process: "Process", vma: "VMA", start: int, end: int) -> None:
        """Back [start, end) with one contiguous block, splitting on demand.

        When physical memory is too fragmented for the whole request, the
        interval is halved and each half gets its own (smaller) range —
        the RMM design's range demotion under memory pressure.  Below
        ``min_range_pages`` the allocator's failure propagates (memory is
        genuinely exhausted).
        """
        from .physical import OutOfMemoryError

        num_pages = end - start
        try:
            base_pfn = process.physical.alloc_contiguous(num_pages)
        except OutOfMemoryError:
            if num_pages <= self.min_range_pages:
                raise
            middle = start + num_pages // 2
            self._populate_range(process, vma, start, middle)
            self._populate_range(process, vma, middle, end)
            return
        process.range_table.insert(RangeTranslation(start, end, base_pfn))
        offset = base_pfn - start
        huge_ok = self.page_layout == "thp" and vma.thp_eligible
        use_huge = (lambda _vpn: True) if huge_ok else (lambda _vpn: False)
        _map_thp_region(
            process,
            start,
            end,
            use_huge,
            pfn_for=lambda vpn: vpn + offset,
        )

    def describe(self) -> str:
        return f"eager paging ({self.page_layout} pages)"
