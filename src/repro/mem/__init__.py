"""OS memory-management substrate: frames, VMAs, paging policies, ranges."""

from .paging import (
    DemandPaging,
    EagerPaging,
    HugeTLBFSPaging,
    PagingPolicy,
    TransparentHugePaging,
)
from .physical import OutOfMemoryError, PhysicalMemory
from .process import Process
from .range_table import RangeTable, RangeTableError
from .vma import VMA, AddressSpace

__all__ = [
    "PhysicalMemory",
    "OutOfMemoryError",
    "VMA",
    "AddressSpace",
    "RangeTable",
    "RangeTableError",
    "PagingPolicy",
    "DemandPaging",
    "TransparentHugePaging",
    "EagerPaging",
    "HugeTLBFSPaging",
    "Process",
]
