"""The unit of lint output: one :class:`Finding` per violated contract.

Findings are deliberately line-number-*carrying* but line-number-
*independent* in identity: the :meth:`Finding.fingerprint` used by the
baseline is ``(rule, path, message)``, so unrelated edits that shift a
file's lines do not invalidate a baselined finding, while changing the
offending code (which changes the message's embedded context) does.

Project-phase findings (whole-program rules, RL007+) additionally carry
the fully qualified ``symbol`` they are about (e.g.
``repro.tlb.set_assoc.SetAssociativeTLB``).  For those, the fingerprint
substitutes the symbol for the path, so the baseline survives relocating
the package on disk or linting from a different root (where every
path-keyed entry would go stale), while renaming the class or moving it
to another module — a new contract surface — correctly invalidates it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is by descending urgency."""

    ERROR = 0  # breaks reproducibility or accounting identities
    WARNING = 1  # weakens a contract; migrate when the code is touched

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``message`` should name the offending construct and its enclosing
    function/class (not its line) so the fingerprint survives reflowing;
    ``hint`` says how to fix it.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    symbol: str = ""
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity for baseline matching (line numbers excluded).

        File-scoped findings key on their path; project-scoped findings
        (``symbol`` set) key on the qualified symbol instead, so they
        survive relocating the package on disk or linting from another
        root.
        """
        return (self.rule, self.symbol or self.path, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def render(self) -> str:
        """One text line: ``path:line:col: RL00x error: message [hint]``."""
        tag = " (baselined)" if self.baselined else ""
        text = f"{self.location()}: {self.rule} {self.severity.label()}{tag}: {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label(),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "symbol": self.symbol,
            "baselined": self.baselined,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))
