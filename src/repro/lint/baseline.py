"""Ratchet baseline: pre-existing findings tolerated, new ones fatal.

The baseline file (``.reprolint-baseline.json``) stores fingerprints —
``(rule, scope, message)`` with an occurrence count — not line numbers,
so it survives unrelated edits to the same file.  The scope (persisted
under the historical ``path`` key) is the repo-relative path for
file-phase findings and the fully qualified symbol (e.g.
``repro.core.lite.LiteController``) for project-phase findings, which
therefore survive relocating the package or linting from another root.  ``--strict`` mode
fails only on findings *not* covered by the baseline; fixing a baselined
finding never breaks the build (the ratchet only tightens when
``--update-baseline`` rewrites the file).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import replace
from pathlib import Path

from ..errors import ReproError
from .findings import Finding

BASELINE_VERSION = 1


class BaselineError(ReproError, ValueError):
    """The baseline file is unreadable or structurally invalid."""


class Baseline:
    """Fingerprint multiset of tolerated findings."""

    def __init__(self, entries: Counter | None = None) -> None:
        #: fingerprint -> number of tolerated occurrences
        self.entries: Counter = Counter(entries or {})

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(f"cannot read baseline {path}: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported format "
                f"(expected version {BASELINE_VERSION})"
            )
        entries: Counter = Counter()
        for item in payload.get("entries", []):
            try:
                fingerprint = (item["rule"], item["path"], item["message"])
                count = int(item.get("count", 1))
            except (TypeError, KeyError) as error:
                raise BaselineError(f"malformed baseline entry: {item!r}") from error
            if count < 1:
                raise BaselineError(f"baseline count must be >= 1: {item!r}")
            entries[fingerprint] += count
        return cls(entries)

    def save(self, path: Path) -> None:
        """Write the baseline sorted by (path, rule) for stable diffs."""
        items = [
            {"rule": rule, "path": rel, "message": message, "count": count}
            for (rule, rel, message), count in sorted(self.entries.items())
        ]
        items.sort(key=lambda item: (item["path"], item["rule"], item["message"]))
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "reprolint ratchet: pre-existing findings tolerated by "
                "--strict. Regenerate with `python -m repro lint "
                "--update-baseline`; shrink it by fixing findings."
            ),
            "entries": items,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(finding.fingerprint() for finding in findings))

    def partition(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined).

        Occurrences of a fingerprint beyond its baselined count are new:
        adding a second copy of an already-tolerated violation fails.
        """
        remaining = Counter(self.entries)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint()
            if remaining[fingerprint] > 0:
                remaining[fingerprint] -= 1
                baselined.append(replace(finding, baselined=True))
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.entries.values())
