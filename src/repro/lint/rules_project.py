"""The whole-program reprolint rules (RL007–RL010).

RL007–RL009 are :class:`~repro.lint.engine.ProjectRule` passes over the
phase-1 :class:`~repro.lint.project.ProjectContext`; RL010 is a plain
file rule that ships with this batch because it completes the exception-
taxonomy work RL002 started.

These rules pin the two contracts PRs 4 and 6 left hand-maintained:

* a component's ``state_dict()``/``load_state_dict()`` must cover every
  mutable attribute (RL007) — the "added a counter, forgot the
  checkpoint" bug that otherwise only ``bisect-divergence`` catches,
  hours later, at runtime;
* everything crossing the supervisor's process boundary must be
  picklable (RL009) — a lambda in a task payload dies inside
  ``ctx.Process`` with an error pointing at multiprocessing internals,
  not at the call site.

RL008 extends RL003's hot-path purity one level of honesty further: an
allocation can't hide by moving one frame down into a helper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, LintRule, ProjectRule
from .findings import Finding, Severity
from .project import (
    ClassInfo,
    FunctionInfo,
    ProjectContext,
    _is_abstract,
    dotted_name,
    self_attribute_of,
)
from .rules import _HOT_METHODS, iter_purity_violations

# ---------------------------------------------------------------------------
# RL007 — checkpoint coverage
# ---------------------------------------------------------------------------

#: methods whose ``self.*`` writes do *not* make an attribute "mutable
#: state" — construction and the checkpoint protocol itself.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "state_dict", "load_state_dict"}
)


def _chain_functions(
    cls: ClassInfo, method: str
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Transitive closure of ``method`` plus the self-methods it calls.

    Starts from *every* MRO definition of ``method`` (so ``super()``
    chains are covered) and follows ``self.helper()`` calls, resolving
    each helper against the analysed class's MRO — dynamic dispatch, so
    ``BaseHierarchy.state_dict`` calling ``self.all_structures()`` picks
    up each subclass's own override.
    """
    queue = [func for _, func in cls.method_chain(method)]
    seen: set[int] = {id(func) for func in queue}
    closure: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    while queue:
        func = queue.pop()
        closure.append(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if not (
                isinstance(node.func.value, ast.Name) and node.func.value.id == "self"
            ):
                continue
            resolved = cls.resolve_method(node.func.attr)
            if resolved is not None and id(resolved[1]) not in seen:
                seen.add(id(resolved[1]))
                queue.append(resolved[1])
    return closure


def _attrs_read(functions: list[ast.AST]) -> set[str]:
    """Every ``self.X`` attribute touched anywhere in ``functions``."""
    read: set[str] = set()
    for func in functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id == "self":
                    read.add(node.attr)
    return read


def _attrs_restored(functions: list[ast.AST]) -> set[str]:
    """Attributes assigned or mutated-through in a load chain.

    Covers ``self.x = ...``, tuple unpacking, ``self.x[...] = ...``,
    ``self.x += ...``, and call-receiver restores like
    ``self.stats.load_state_dict(...)`` or ``self.raw.extend(...)``.
    """
    restored: set[str] = set()

    def add_target(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
            return
        if isinstance(target, ast.Starred):
            add_target(target.value)
            return
        attr = self_attribute_of(target)
        if attr is not None:
            restored.add(attr)

    for func in functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    add_target(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                add_target(node.target)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = self_attribute_of(node.func.value)
                if attr is not None:
                    restored.add(attr)
    return restored


def _keys_produced(functions: list[ast.AST]) -> set[str]:
    """Constant string keys the state-dict side emits.

    Dict literals (``{"sets": ...}``) and subscript stores
    (``state["sets"] = ...``) both count, at any nesting depth.
    """
    keys: set[str] = set()
    for func in functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
                index = node.slice
                if isinstance(index, ast.Constant) and isinstance(index.value, str):
                    keys.add(index.value)
            elif isinstance(node, ast.Call):
                # dict(sets=..., ways=...)
                name = dotted_name(node.func)
                if name == "dict":
                    keys.update(kw.arg for kw in node.keywords if kw.arg)
    return keys


def _keys_consumed(functions: list[ast.AST]) -> set[str]:
    """Constant string keys the load side reads (``state["k"]``, ``.get("k")``)."""
    keys: set[str] = set()
    for func in functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                index = node.slice
                if isinstance(index, ast.Constant) and isinstance(index.value, str):
                    keys.add(index.value)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("get", "pop") and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(first.value, str):
                        keys.add(first.value)
    return keys


class CheckpointCoverageRule(ProjectRule):
    """RL007: ``state_dict``/``load_state_dict`` cover every mutable attr.

    For every class implementing the ``repro.stateful`` protocol (both
    methods resolvable along its MRO, neither abstract), the rule
    computes the class's *mutable surface* — each ``self.*`` attribute
    written outside construction and outside the protocol methods
    themselves, over the whole inheritance chain — and demands that the
    ``state_dict`` call chain reads it and the ``load_state_dict`` chain
    writes it back.  It also demands the two chains agree on the literal
    checkpoint keys, so a key emitted but never restored (or vice versa)
    is flagged even when the attribute checks pass.

    Serialization through helpers is followed (``self.all_structures()``
    indirection, ``super().state_dict()`` chains, codec methods), so the
    blessed idioms in ``tlb/set_assoc.py`` and ``core/hierarchy.py``
    lint clean without suppressions.

    *Derived* caches — attributes deterministically rebuilt from primary
    state inside ``load_state_dict`` (a free-frame count, a bisect
    index) — are declared via a class-level ``_CHECKPOINT_DERIVED =
    ("_attr", ...)`` tuple: the rule then exempts them from the
    serialize-side check but still requires the load chain to rebuild
    them, so a declaration can't silently rot.
    """

    rule_id = "RL007"
    title = "checkpoint coverage"
    severity = Severity.ERROR
    hint = "serialize the attribute in state_dict() and restore it in load_state_dict()"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for cls in project.classes.values():
            yield from self._check_class(cls)

    def _check_class(self, cls: ClassInfo) -> Iterator[Finding]:
        sd = cls.resolve_method("state_dict")
        ld = cls.resolve_method("load_state_dict")
        if sd is None or ld is None:
            return
        if _is_abstract(sd[1]) or _is_abstract(ld[1]):
            return
        sd_chain = _chain_functions(cls, "state_dict")
        ld_chain = _chain_functions(cls, "load_state_dict")
        read = _attrs_read(sd_chain)
        restored = _attrs_restored(ld_chain) | _attrs_read(ld_chain)

        mutable: dict[str, list[str]] = {}
        for attr, writers in sorted(cls.attribute_writes(include_bases=True).items()):
            outside = sorted(
                writer
                for writer in writers
                if writer.rsplit(".", 1)[-1] not in _CONSTRUCTION_METHODS
            )
            if outside:
                mutable[attr] = outside

        derived: set[str] = set()
        for ancestor in cls.mro():
            derived |= ancestor.derived_attrs

        ctx = cls.module.ctx
        for attr, writers in mutable.items():
            where = ", ".join(writers[:3])
            if attr not in read and attr not in derived:
                yield self.finding(
                    ctx,
                    cls.node,
                    f"state_dict() of {cls.name} never reads mutable "
                    f"attribute {attr!r} (written in {where})",
                    symbol=cls.qualname,
                )
            if attr not in restored:
                yield self.finding(
                    ctx,
                    cls.node,
                    f"load_state_dict() of {cls.name} never restores mutable "
                    f"attribute {attr!r} (written in {where})",
                    symbol=cls.qualname,
                )

        produced = _keys_produced(sd_chain)
        consumed = _keys_consumed(ld_chain)
        if produced and consumed:
            for key in sorted(produced - consumed):
                yield self.finding(
                    ctx,
                    cls.node,
                    f"checkpoint key {key!r} produced by {cls.name}.state_dict() "
                    "is never consumed by load_state_dict()",
                    symbol=cls.qualname,
                )
            for key in sorted(consumed - produced):
                yield self.finding(
                    ctx,
                    cls.node,
                    f"checkpoint key {key!r} consumed by {cls.name}."
                    "load_state_dict() is never produced by state_dict()",
                    symbol=cls.qualname,
                )


# ---------------------------------------------------------------------------
# RL008 — interprocedural hot-path purity
# ---------------------------------------------------------------------------


class InterproceduralPurityRule(ProjectRule):
    """RL008: helpers reached from the hot path obey RL003's purity rules.

    RL003 checks ``access``/``lookup``/``fill``/``insert`` bodies
    directly; this rule walks the call graph out of those methods —
    through ``self.helper()``, module functions, ``self.attr.method()``
    dispatch, ``functools.partial`` and callback references — and runs
    the same body checks on every reachable helper.  Callees that are
    themselves hot-named are skipped (RL003 already owns them), so each
    violation is reported exactly once.
    """

    rule_id = "RL008"
    title = "interprocedural hot-path purity"
    severity = Severity.ERROR
    hint = "hoist work out of the helper or out of the per-access path"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        reported: set[tuple[int, int]] = set()
        for cls in project.classes.values():
            for name, func in cls.methods.items():
                if name not in _HOT_METHODS:
                    continue
                root = f"{cls.name}.{name}"
                yield from self._walk(project, func, root, reported)

    def _walk(
        self,
        project: ProjectContext,
        entry: ast.FunctionDef | ast.AsyncFunctionDef,
        root: str,
        reported: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        queue: list[FunctionInfo] = []
        seen: set[int] = {id(entry)}
        for edge in project.callees(entry):
            queue.append(edge.target)
        while queue:
            helper = queue.pop()
            if id(helper.node) in seen:
                continue
            seen.add(id(helper.node))
            if helper.name in _HOT_METHODS:
                continue  # RL003's territory
            ctx = helper.module.ctx
            for node, description in iter_purity_violations(helper.node):
                key = (id(helper.node), getattr(node, "lineno", 0))
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    ctx,
                    node,
                    f"{description} in {helper.name}() reached from hot path {root}",
                    symbol=helper.qualname,
                )
            for edge in project.callees(helper.node):
                if id(edge.target.node) not in seen:
                    queue.append(edge.target)


# ---------------------------------------------------------------------------
# RL009 — process-boundary safety
# ---------------------------------------------------------------------------

#: thread-synchronization constructors that cannot cross a pickle boundary.
_THREADING_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore", "Barrier"}
)

#: receiver-name fragments that mark a pipe/queue send.
_CHANNEL_FRAGMENTS = ("conn", "queue", "pipe", "chan")


def _returns_mp_context(func: ast.AST) -> bool:
    """Does ``func`` return ``multiprocessing.get_context(...)``?"""
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            name = dotted_name(node.value.func) or ""
            if name.rsplit(".", 1)[-1] == "get_context":
                return True
    return False


class ProcessSafetyRule(ProjectRule):
    """RL009: no unpicklable values cross the supervisor process boundary.

    Payloads handed to ``multiprocessing`` — ``Process(target=...,
    args=...)`` spawns (including through contexts obtained from
    ``get_context()``), ``conn.send(...)`` / ``queue.put(...)``, and
    pool ``submit``/``apply_async`` — are pickled in the parent and
    unpickled in the child.  Lambdas, generator expressions, open file
    handles, thread locks, and functions nested inside another function
    all fail that pickling at runtime, with a traceback pointing into
    multiprocessing internals rather than at the call site.  The repo's
    own simulator ``Process`` class (``mem/process.py``) is recognised
    via import resolution and exempt.
    """

    rule_id = "RL009"
    title = "process-boundary safety"
    severity = Severity.ERROR
    hint = "pass module-level functions and plain data; open resources inside the worker"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module in project.modules.values():
            ctx = module.ctx
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                # Only top-of-nesting functions: nested defs are walked as
                # part of their parent (locals resolve there).
                if ctx.enclosing_function(node) is not None:
                    continue
                yield from self._check_function(project, module, ctx, node)

    # ------------------------------------------------------------------
    def _check_function(
        self,
        project: ProjectContext,
        module,
        ctx: FileContext,
        func: ast.AST,
    ) -> Iterator[Finding]:
        locals_: dict[str, ast.AST] = {}
        nested: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                nested.add(node.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    locals_[target.id] = node.value
        where = ctx.qualified_context(func)
        symbol = f"{module.name}.{where}" if module.name else where

        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            payloads = self._boundary_payloads(project, module, node, locals_)
            if payloads is None:
                continue
            for payload in payloads:
                for bad, label in self._unpicklables(
                    ctx, payload, locals_, nested
                ):
                    yield self.finding(
                        ctx,
                        bad,
                        f"unpicklable {label} crosses the process boundary "
                        f"in {where}",
                        symbol=symbol,
                    )

    def _boundary_payloads(
        self,
        project: ProjectContext,
        module,
        call: ast.Call,
        locals_: dict[str, ast.AST],
    ) -> list[ast.AST] | None:
        """The expressions pickled by ``call``, or None if not a boundary."""
        func = call.func
        name = dotted_name(func) or ""
        leaf = name.rsplit(".", 1)[-1]
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        if leaf == "Process" and self._is_mp_process(project, module, name, locals_):
            return arguments
        if leaf in ("submit", "apply_async", "map", "starmap") and isinstance(
            func, ast.Attribute
        ):
            base = dotted_name(func.value) or ""
            if any(frag in base.lower() for frag in ("pool", "executor")):
                return arguments
        if leaf in ("send", "put", "put_nowait") and isinstance(func, ast.Attribute):
            base = dotted_name(func.value) or ""
            if any(frag in base.lower() for frag in _CHANNEL_FRAGMENTS):
                return arguments
        return None

    def _is_mp_process(
        self,
        project: ProjectContext,
        module,
        name: str,
        locals_: dict[str, ast.AST],
    ) -> bool:
        """Is ``name`` (ending in ``.Process``/``Process``) multiprocessing's?"""
        head = name.split(".", 1)[0]
        if "." not in name:
            # Bare ``Process(...)`` — check the import provenance; the
            # repo's own simulator Process resolves to a project class.
            target = module.imports.get(head, "")
            if target.startswith("multiprocessing"):
                return True
            resolved = project.resolve_local(module, head)
            return resolved is None and target == ""  # unknown origin: skip
        if head in ("multiprocessing", "mp"):
            return True
        # ``ctx.Process(...)`` — trace the local through get_context().
        value = locals_.get(head)
        if isinstance(value, ast.Call):
            value_name = dotted_name(value.func) or ""
            if value_name.rsplit(".", 1)[-1] == "get_context":
                return True
            resolved = project.resolve_local(module, value_name)
            if isinstance(resolved, FunctionInfo) and _returns_mp_context(resolved.node):
                return True
        return False

    def _unpicklables(
        self,
        ctx: FileContext,
        payload: ast.AST,
        locals_: dict[str, ast.AST],
        nested: set[str],
        _depth: int = 0,
    ) -> Iterator[tuple[ast.AST, str]]:
        """Yield ``(node, label)`` for unpicklable values inside ``payload``."""
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield node, "lambda"
            elif isinstance(node, ast.GeneratorExp):
                yield node, "generator expression"
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                leaf = name.rsplit(".", 1)[-1]
                if name == "open":
                    yield node, "open file handle"
                elif leaf in _THREADING_PRIMITIVES and (
                    name.startswith("threading.") or name == leaf
                ):
                    # bare names only count when imported from threading —
                    # handled via the one-level local resolution below, so
                    # require the dotted form here to stay conservative.
                    if name.startswith("threading."):
                        yield node, f"threading.{leaf}"
            elif isinstance(node, ast.Name) and _depth == 0:
                if node.id in nested:
                    yield node, f"nested function {node.id!r} (closure)"
                elif node.id in locals_:
                    # one level of local resolution: x = lambda ...; send(x)
                    yield from self._unpicklables(
                        ctx, locals_[node.id], locals_, nested, _depth=1
                    )


# ---------------------------------------------------------------------------
# RL010 — exception chaining
# ---------------------------------------------------------------------------


class ExceptionChainingRule(LintRule):
    """RL010: re-raises inside ``except`` blocks chain their cause.

    ``raise NewError(...)`` inside an ``except Old as err:`` block
    without ``from err`` severs the causal chain: the sweep supervisor's
    quarantine records and the CLI's error rendering both lose the
    original traceback.  Bare ``raise`` and re-raising a caught
    exception object are exempt, as is the deliberate ``from None``.
    """

    rule_id = "RL010"
    title = "exception chaining"
    severity = Severity.WARNING
    hint = "re-raise with `raise NewError(...) from err` (or `from None` to suppress)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None or node.cause is not None:
                continue
            if not isinstance(node.exc, ast.Call):
                continue  # `raise err` re-raises the object itself
            if self._enclosing_handler(ctx, node) is None:
                continue
            name = dotted_name(node.exc.func) or "<exception>"
            yield self.finding(
                ctx,
                node,
                f"raise {name}(...) inside an except block without `from` in "
                f"{ctx.qualified_context(node)}",
            )

    @staticmethod
    def _enclosing_handler(ctx: FileContext, node: ast.AST) -> ast.ExceptHandler | None:
        """Nearest except handler, without crossing a function boundary."""
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.ExceptHandler):
                return current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return None
            current = ctx.parent(current)
        return None


# ---------------------------------------------------------------------------

PROJECT_RULES: tuple[type[LintRule], ...] = (
    CheckpointCoverageRule,
    InterproceduralPurityRule,
    ProcessSafetyRule,
    ExceptionChainingRule,
)
