"""Phase-1 whole-program context: modules, classes, attributes, calls.

One :class:`ProjectContext` is built per lint run from every parsed
:class:`repro.lint.engine.FileContext` and answers the questions the
cross-module rules (RL007–RL009) ask:

* **module/symbol index** — which dotted module does each file implement,
  and what does ``repro.resilience.SweepJournal`` actually resolve to
  once ``__init__`` re-export chains are followed;
* **class table** — every class with its base classes resolved across
  modules, its per-method ``self.*`` attribute-write sets (inherited
  sets included, so a subclass inherits its base's mutable surface), and
  best-effort attribute *types* recovered from ``self.x = ClassName(...)``
  constructor assignments and annotated ``__init__`` parameters;
* **call graph** — intraprocedural resolution of each function's
  outgoing calls onto project functions and methods, including
  ``self.helper()`` dispatch through the MRO, one level of
  ``self.attr.method()`` dispatch via the recovered attribute types,
  ``functools.partial(f, ...)`` wrapping, and bare method/function
  references passed as callbacks.

Everything here is deliberately *syntactic* resolution, not type
inference: the simulator's structure is static enough (components are
constructed once, wired by name) that this recovers the real graph, and
where it cannot resolve a call it simply drops the edge — rules built on
top over-look rather than over-report.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext

#: method names whose *call* mutates the receiver in place — the
#: conservative set RL007 uses to decide an attribute is mutable state.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "pop", "popleft",
        "popitem", "remove", "clear", "update", "add", "discard",
        "setdefault", "sort", "reverse", "setstate", "reset",
    }
)

#: method-name prefixes treated like MUTATOR_METHODS.  The RL004 stats
#: discipline routes counter bumps through owner methods named
#: ``record_*`` (``self.stats.record_walk(...)``), so such a call marks
#: the receiver as mutable state.
MUTATOR_PREFIXES = ("record",)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attribute_of(node: ast.AST) -> str | None:
    """The first attribute above ``self`` in an access chain, else None.

    ``self.stats.hits`` → ``stats``; ``self._sets[i]`` → ``_sets``;
    ``other.stats`` → ``None``.
    """
    attr: str | None = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attr = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        return attr
    return None


def _unwrap_annotation(node: ast.AST) -> ast.AST:
    """Strip ``X | None`` / ``Optional[X]`` / string quotes down to X."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left, right = node.left, node.right
        if isinstance(right, ast.Constant) and right.value is None:
            return _unwrap_annotation(left)
        if isinstance(left, ast.Constant) and left.value is None:
            return _unwrap_annotation(right)
        return node
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value) or ""
        if base.rsplit(".", 1)[-1] == "Optional":
            return _unwrap_annotation(node.slice)
    return node


def _is_abstract(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the body is only a docstring and/or ``raise NotImplementedError``."""
    for decorator in func.decorator_list:
        name = dotted_name(decorator) or ""
        if name.rsplit(".", 1)[-1] == "abstractmethod":
            return True
    real = [
        stmt
        for stmt in func.body
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        and not isinstance(stmt, ast.Pass)
    ]
    if not real:
        return True
    if len(real) == 1 and isinstance(real[0], ast.Raise):
        exc = real[0].exc
        name = dotted_name(exc.func if isinstance(exc, ast.Call) else exc) if exc else None
        return name == "NotImplementedError"
    return False


class FunctionInfo:
    """One function or method, with its resolved outgoing call edges."""

    __slots__ = ("node", "module", "owner", "name", "qualname")

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        module: "ModuleInfo",
        owner: "ClassInfo | None",
    ) -> None:
        self.node = node
        self.module = module
        self.owner = owner
        self.name = node.name
        prefix = owner.qualname if owner is not None else module.name
        self.qualname = f"{prefix}.{node.name}" if prefix else node.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One class: methods, resolved bases, attribute writes and types."""

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = f"{module.name}.{node.name}" if module.name else node.name
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        #: resolved project-internal bases, in definition order (filled by
        #: ProjectContext once every module is indexed).
        self.bases: list[ClassInfo] = []
        #: method name -> set of ``self.*`` attributes that method writes
        #: (direct assignment, subscript store, or mutator-method call).
        self.method_writes: dict[str, set[str]] = {
            name: _self_writes(func) for name, func in self.methods.items()
        }
        #: attribute -> qualified class-name string, recovered from
        #: ``self.x = ClassName(...)`` and annotated ``__init__`` params.
        self.attr_type_names: dict[str, str] = _attr_type_names(self)
        #: attrs declared via ``_CHECKPOINT_DERIVED = (...)`` as rebuilt
        #: from primary state in load_state_dict, not serialized (RL007).
        self.derived_attrs: set[str] = _derived_attrs(node)

    # ------------------------------------------------------------------
    def mro(self) -> list["ClassInfo"]:
        """Self plus resolved bases, depth-first, left-to-right, deduped."""
        order: list[ClassInfo] = []
        seen: set[int] = set()
        stack: list[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if id(cls) in seen:
                continue
            seen.add(id(cls))
            order.append(cls)
            stack = list(cls.bases) + stack
        return order

    def resolve_method(
        self, name: str
    ) -> tuple["ClassInfo", ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """First definition of ``name`` along the MRO, or None."""
        for cls in self.mro():
            if name in cls.methods:
                return cls, cls.methods[name]
        return None

    def method_chain(
        self, name: str
    ) -> list[tuple["ClassInfo", ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Every MRO definition of ``name`` (covers ``super()`` chains)."""
        return [(cls, cls.methods[name]) for cls in self.mro() if name in cls.methods]

    def attribute_writes(self, include_bases: bool = True) -> dict[str, set[str]]:
        """attr -> methods writing it, optionally over the whole MRO.

        Method names are qualified as ``Class.method`` so a rule (or a
        human reading a finding) can see where an inherited write came
        from.
        """
        classes = self.mro() if include_bases else [self]
        writes: dict[str, set[str]] = {}
        for cls in classes:
            for method, attrs in cls.method_writes.items():
                for attr in attrs:
                    writes.setdefault(attr, set()).add(f"{cls.name}.{method}")
        return writes

    def attribute_types(self) -> dict[str, str]:
        """attr -> qualified type name over the MRO (subclass wins)."""
        types: dict[str, str] = {}
        for cls in reversed(self.mro()):
            types.update(cls.attr_type_names)
        return types

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.qualname}>"


def _self_writes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """``self.*`` attributes mutated anywhere in ``func``."""
    writes: set[str] = set()

    def add_target(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
            return
        if isinstance(target, ast.Starred):
            add_target(target.value)
            return
        attr = self_attribute_of(target)
        if attr is not None:
            writes.add(attr)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                add_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            add_target(node.target)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            name = node.func.attr
            if name in MUTATOR_METHODS or name.startswith(MUTATOR_PREFIXES):
                attr = self_attribute_of(node.func.value)
                if attr is not None:
                    writes.add(attr)
        elif isinstance(node, (ast.Delete,)):
            for target in node.targets:
                add_target(target)
    return writes


def _derived_attrs(node: ast.ClassDef) -> set[str]:
    """String constants from a class-level ``_CHECKPOINT_DERIVED`` tuple."""
    derived: set[str] = set()
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "_CHECKPOINT_DERIVED" for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    derived.add(element.value)
    return derived


def _attr_type_names(cls: ClassInfo) -> dict[str, str]:
    """Recover ``self.attr`` -> class-name strings from the constructor."""
    init = cls.methods.get("__init__")
    types: dict[str, str] = {}
    if init is None:
        return types
    # Parameter annotations: ``def __init__(self, walker: PageWalker)``.
    params: dict[str, str] = {}
    args = list(init.args.posonlyargs) + list(init.args.args) + list(
        init.args.kwonlyargs
    )
    for arg in args:
        if arg.annotation is not None:
            name = dotted_name(_unwrap_annotation(arg.annotation))
            if name is not None:
                params[arg.arg] = name
    for node in ast.walk(init):
        if isinstance(node, ast.AnnAssign):
            attr = self_attribute_of(node.target)
            if attr is not None and node.annotation is not None:
                name = dotted_name(_unwrap_annotation(node.annotation))
                if name is not None:
                    types[attr] = name
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = self_attribute_of(node.targets[0])
            if attr is None:
                continue
            value = node.value
            if isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name is not None and name[:1].isupper() or (
                    name is not None and name.rsplit(".", 1)[-1][:1].isupper()
                ):
                    types[attr] = name
            elif isinstance(value, ast.Name) and value.id in params:
                types[attr] = params[value.id]
            elif isinstance(value, ast.IfExp):
                # ``x if x is not None else Fallback()`` — common default.
                for branch in (value.body, value.orelse):
                    if isinstance(branch, ast.Call):
                        name = dotted_name(branch.func)
                        if name and name.rsplit(".", 1)[-1][:1].isupper():
                            types[attr] = name
                    elif isinstance(branch, ast.Name) and branch.id in params:
                        types[attr] = params[branch.id]
    return types


class ModuleInfo:
    """One parsed file as a module: bindings and import targets."""

    def __init__(self, ctx: FileContext, name: str) -> None:
        self.ctx = ctx
        self.name = name
        #: package the module's relative imports resolve against.
        if ctx.path.name == "__init__.py":
            self.package = name
        else:
            self.package = name.rsplit(".", 1)[0] if "." in name else ""
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: local binding -> fully qualified imported target.
        self.imports: dict[str, str] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = ClassInfo(self, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _import_base(self, stmt: ast.ImportFrom) -> str | None:
        """Absolute dotted prefix a ``from X import`` pulls names from."""
        if stmt.level == 0:
            return stmt.module
        parts = self.package.split(".") if self.package else []
        drop = stmt.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if stmt.module:
            parts.append(stmt.module)
        return ".".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleInfo {self.name}>"


class CallEdge:
    """One resolved outgoing call/reference from a function."""

    __slots__ = ("target", "kind", "line")

    def __init__(self, target: FunctionInfo, kind: str, line: int) -> None:
        self.target = target
        self.kind = kind  # 'call' | 'partial' | 'ref'
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallEdge {self.kind} -> {self.target.qualname}>"


class ProjectContext:
    """The whole-program index phase-2 rules run against."""

    def __init__(self, contexts: list[FileContext]) -> None:
        self.contexts = list(contexts)
        self.modules: dict[str, ModuleInfo] = {}
        for ctx in self.contexts:
            module = ModuleInfo(ctx, _module_name(ctx))
            # Last write wins on duplicate names (shadowed fixtures); the
            # repo package itself never collides.
            self.modules[module.name] = module
        #: qualified class name -> ClassInfo
        self.classes: dict[str, ClassInfo] = {}
        for module in self.modules.values():
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
        self._resolve_bases()
        #: FunctionInfo per function/method ast node (id-keyed).
        self.functions: dict[int, FunctionInfo] = {}
        for module in self.modules.values():
            for func in module.functions.values():
                info = FunctionInfo(func, module, None)
                self.functions[id(func)] = info
            for cls in module.classes.values():
                for func in cls.methods.values():
                    self.functions[id(func)] = FunctionInfo(func, module, cls)
        self._edges: dict[int, list[CallEdge]] = {}
        for info in list(self.functions.values()):
            self._edges[id(info.node)] = list(self._resolve_calls(info))

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def resolve(self, qualified: str, _seen: frozenset[str] = frozenset()):
        """Resolve a dotted name to a ModuleInfo/ClassInfo/FunctionInfo.

        Follows re-export chains (``from .sweep import SweepJournal`` in a
        package ``__init__`` makes ``repro.resilience.SweepJournal``
        resolve to ``repro.resilience.sweep.SweepJournal``).  Returns
        ``None`` for names outside the analysed project.
        """
        if qualified in _seen:
            return None
        parts = qualified.split(".")
        module: ModuleInfo | None = None
        split = 0
        for index in range(len(parts), 0, -1):
            candidate = ".".join(parts[:index])
            if candidate in self.modules:
                module = self.modules[candidate]
                split = index
                break
        if module is None:
            return None
        rest = parts[split:]
        if not rest:
            return module
        head = rest[0]
        if head in module.classes:
            cls = module.classes[head]
            if len(rest) == 1:
                return cls
            resolved = cls.resolve_method(rest[1])
            return self.functions[id(resolved[1])] if resolved else None
        if head in module.functions:
            return self.functions[id(module.functions[head])]
        if head in module.imports:
            target = module.imports[head]
            if rest[1:]:
                target += "." + ".".join(rest[1:])
            return self.resolve(target, _seen | {qualified})
        return None

    def resolve_local(self, module: ModuleInfo, name: str):
        """Resolve a module-local (possibly dotted) binding."""
        head, _, tail = name.partition(".")
        if not tail:
            if head in module.classes:
                return module.classes[head]
            if head in module.functions:
                return self.functions[id(module.functions[head])]
        if head in module.imports:
            target = module.imports[head] + (f".{tail}" if tail else "")
            return self.resolve(target)
        if tail and head in module.classes:
            # ClassName.method reference
            resolved = module.classes[head].resolve_method(tail)
            if resolved is not None:
                return self.functions[id(resolved[1])]
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def callees(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[CallEdge]:
        """Resolved outgoing edges of one function node."""
        return self._edges.get(id(func), [])

    def callees_of(self, qualname: str) -> list[str]:
        """Qualified names a function calls/references (test convenience)."""
        resolved = self.resolve(qualname)
        if isinstance(resolved, FunctionInfo):
            return [edge.target.qualname for edge in self.callees(resolved.node)]
        if isinstance(resolved, ClassInfo):
            return []
        return []

    def function_info(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionInfo | None:
        return self.functions.get(id(func))

    # ------------------------------------------------------------------
    def _resolve_bases(self) -> None:
        for cls in self.classes.values():
            for base in cls.node.bases:
                name = dotted_name(base)
                if name is None:
                    continue
                resolved = self.resolve_local(cls.module, name)
                if isinstance(resolved, ClassInfo):
                    cls.bases.append(resolved)

    def _resolve_calls(self, info: FunctionInfo) -> Iterator[CallEdge]:
        module = info.module
        owner = info.owner
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_callee(node.func, module, owner)
            if target is not None:
                kind = "call"
                yield CallEdge(target, kind, node.lineno)
            # functools.partial(f, ...) and callback references in args.
            func_name = dotted_name(node.func) or ""
            is_partial = func_name.rsplit(".", 1)[-1] == "partial"
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for position, argument in enumerate(arguments):
                referenced = self._resolve_callee(argument, module, owner)
                if referenced is None:
                    continue
                kind = "partial" if is_partial and position == 0 else "ref"
                yield CallEdge(referenced, kind, node.lineno)

    def _resolve_callee(
        self, expr: ast.AST, module: ModuleInfo, owner: ClassInfo | None
    ) -> FunctionInfo | None:
        """Resolve a call/reference expression to a project function."""
        if isinstance(expr, ast.Name):
            resolved = self.resolve_local(module, expr.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        name = dotted_name(expr)
        if name is None:
            return None
        parts = name.split(".")
        if parts[0] == "self" and owner is not None:
            if len(parts) == 2:
                resolved = owner.resolve_method(parts[1])
                return self.functions[id(resolved[1])] if resolved else None
            if len(parts) == 3:
                # self.attr.method() through the recovered attribute type.
                type_name = owner.attribute_types().get(parts[1])
                if type_name is None:
                    return None
                target = self.resolve_local(owner.module, type_name)
                if not isinstance(target, ClassInfo):
                    target = self.resolve(type_name)
                if isinstance(target, ClassInfo):
                    resolved = target.resolve_method(parts[2])
                    if resolved is not None:
                        return self.functions[id(resolved[1])]
            return None
        resolved = self.resolve_local(module, name)
        if isinstance(resolved, FunctionInfo):
            return resolved
        return None


def _module_name(ctx: FileContext) -> str:
    """Dotted module name, walking up while ``__init__.py`` marks packages."""
    path = ctx.path
    parts: list[str] = []
    if path.name == "__init__.py":
        parts.append(path.parent.name)
        directory = path.parent.parent
    else:
        parts.append(path.stem)
        directory = path.parent
        if (directory / "__init__.py").exists():
            parts.append(directory.name)
            directory = directory.parent
        else:
            return parts[0]
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        directory = directory.parent
    return ".".join(reversed(parts))
