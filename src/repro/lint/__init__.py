"""reprolint — two-phase static analysis enforcing simulator invariants.

The runtime :class:`repro.resilience.auditor.InvariantAuditor` re-derives
accounting identities *during* a run; this package catches the same class
of bugs *before* any simulation runs by analysing the source.  The
paper's headline numbers (TLB_Lite −23%, RMM_Lite −71% dynamic energy)
are only reproducible if every run is deterministic and every
energy/stat identity holds, so the contracts are pinned at lint time.

Phase 1 runs one AST visitor per file-local contract; phase 2 builds a
:class:`~repro.lint.project.ProjectContext` over the whole package
(symbol index, class table, call graph) and runs the cross-module rules:

=====  ==============================================================
rule   contract
=====  ==============================================================
RL001  determinism — no unseeded or module-level RNG, no time-derived
       seeds
RL002  exception taxonomy — raises use the :mod:`repro.errors`
       hierarchy, not raw built-ins
RL003  hot-path purity — no allocation-heavy constructs, logging, or
       broad exception handlers inside ``access``/``lookup``/``fill``
       fast paths
RL004  stats discipline — counter attributes of ``stats`` objects are
       only mutated by their owning sync/reset methods
RL005  power-of-two guards — way/bank/set counts are validated at
       construction
RL006  no mutable default arguments
RL007  checkpoint coverage — ``state_dict``/``load_state_dict`` round-
       trip every mutable attribute, with symmetric key sets
RL008  interprocedural hot-path purity — RL003 followed through the
       call graph into helpers
RL009  process-boundary safety — no unpicklable payloads handed to the
       supervisor's worker processes
RL010  exception chaining — ``raise X(...) from err`` inside except
       blocks
=====  ==============================================================

Pre-existing findings live in ``.reprolint-baseline.json`` (ratchet:
they may be fixed but not added to); individual lines opt out with a
``# reprolint: disable=RL00x`` comment, which covers the whole statement
it is attached to (decorators and multi-line headers included).  Run it
with::

    python -m repro lint [paths...] [--format=text|json] [--strict]
                         [--update-baseline] [--changed] [--explain RLxxx]
"""

from .baseline import Baseline
from .engine import FileContext, LintRule, PassManager, ProjectRule, lint_paths
from .findings import Finding, Severity
from .project import ProjectContext
from .rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "LintRule",
    "PassManager",
    "ProjectContext",
    "ProjectRule",
    "Severity",
    "default_rules",
    "lint_paths",
]
