"""reprolint — AST-based static analysis enforcing simulator invariants.

The runtime :class:`repro.resilience.auditor.InvariantAuditor` re-derives
accounting identities *during* a run; this package catches the same class
of bugs *before* any simulation runs by analysing the source.  The
paper's headline numbers (TLB_Lite −23%, RMM_Lite −71% dynamic energy)
are only reproducible if every run is deterministic and every
energy/stat identity holds, so the contracts are pinned at lint time:

=====  ==============================================================
rule   contract
=====  ==============================================================
RL001  determinism — no unseeded or module-level RNG, no time-derived
       seeds
RL002  exception taxonomy — raises use the :mod:`repro.errors`
       hierarchy, not raw built-ins
RL003  hot-path purity — no allocation-heavy constructs, logging, or
       broad exception handlers inside ``access``/``lookup``/``fill``
       fast paths
RL004  stats discipline — counter attributes of ``stats`` objects are
       only mutated by their owning sync/reset methods
RL005  power-of-two guards — way/bank/set counts are validated at
       construction
RL006  no mutable default arguments
=====  ==============================================================

Pre-existing findings live in ``.reprolint-baseline.json`` (ratchet:
they may be fixed but not added to); individual lines opt out with a
``# reprolint: disable=RL00x`` comment.  Run it with::

    python -m repro lint [paths...] [--format=text|json] [--strict]
                         [--update-baseline]
"""

from .baseline import Baseline
from .engine import FileContext, LintRule, PassManager, lint_paths
from .findings import Finding, Severity
from .rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "LintRule",
    "PassManager",
    "Severity",
    "default_rules",
    "lint_paths",
]
