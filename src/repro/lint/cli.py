"""The ``python -m repro lint`` subcommand.

Exit codes: 0 — clean (or informational non-strict report), 1 — strict
mode found findings not covered by the baseline or inline suppressions,
2 — the lint run itself failed (bad paths, unreadable baseline).

Modes
-----
default
    Report *every* finding (baselined ones tagged) — the burn-down view.
``--strict``
    Apply the baseline; fail only on new findings.  This is what CI runs.
``--update-baseline``
    Rewrite the baseline from the current findings and exit 0.
``--changed``
    Git-aware fast path: analyse the whole package (the project rules
    need the whole program) but report only findings in files the
    working tree changed relative to ``--changed-base`` (default HEAD).
``--explain RLxxx``
    Print the rule's full documentation (what it pins, how to fix) and
    exit.
"""

from __future__ import annotations

import argparse
import inspect
import json
import subprocess
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import PassManager
from .rules import default_rules

DEFAULT_BASELINE = ".reprolint-baseline.json"


def default_lint_path() -> Path:
    """The installed ``repro`` package directory (``src/repro`` in-repo)."""
    return Path(__file__).resolve().parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on findings not covered by the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(DEFAULT_BASELINE),
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        metavar="RLXXX",
        default=None,
        help="print a rule's documentation and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report only findings in files changed vs --changed-base "
        "(the whole package is still analysed)",
    )
    parser.add_argument(
        "--changed-base",
        default="HEAD",
        help="git revision --changed diffs against (default: HEAD)",
    )


def explain_rule(rule_id: str) -> int:
    """Print one rule's documentation; exit 2 for unknown ids."""
    rules = {rule.rule_id: rule for rule in default_rules()}
    rule = rules.get(rule_id.strip().upper())
    if rule is None:
        print(
            f"unknown rule id: {rule_id} (known: {', '.join(sorted(rules))})",
            file=sys.stderr,
        )
        return 2
    doc = inspect.cleandoc(type(rule).__doc__ or "(undocumented)")
    print(f"{rule.rule_id} — {rule.title} [{rule.severity.label()}]")
    print()
    print(doc)
    if rule.hint:
        print()
        print(f"fix: {rule.hint}")
    return 0


def changed_report_paths(base: str) -> set[str] | None:
    """Repo-relative posix paths of files changed vs ``base``.

    Returns ``None`` (meaning: report everything) when git is
    unavailable or the revision cannot be diffed — the fast path
    degrades to the full report rather than hiding findings.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    root = Path(toplevel.stdout.strip())
    cwd = Path.cwd().resolve()
    paths: set[str] = set()
    for line in diff.stdout.splitlines() + untracked.stdout.splitlines():
        if not line.strip():
            continue
        # git paths are toplevel-relative; findings are cwd-relative.
        absolute = (root / line.strip()).resolve()
        try:
            paths.add(absolute.relative_to(cwd).as_posix())
        except ValueError:
            paths.add(absolute.as_posix())
    return paths


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if getattr(args, "explain", None):
        return explain_rule(args.explain)
    rules = default_rules()
    if args.rules:
        wanted = {rule_id.strip().upper() for rule_id in args.rules.split(",")}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown rule ids: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    paths = args.paths or [default_lint_path()]
    report_paths = None
    if getattr(args, "changed", False):
        report_paths = changed_report_paths(args.changed_base)
    manager = PassManager(rules)
    findings = manager.lint_paths(paths, Path.cwd(), report_paths=report_paths)

    if args.update_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{args.baseline}"
        )
        return 0

    baseline = Baseline.load(args.baseline)
    new, baselined = baseline.partition(findings)

    reportable = new + baselined if not args.strict else new
    if args.format == "json":
        payload = {
            "findings": [finding.to_json() for finding in reportable],
            "counts": _rule_counts(reportable),
            "new": len(new),
            "baselined": len(baselined),
            "parse_failures": [
                {"path": path, "error": error}
                for path, error in manager.parse_failures
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in sorted(reportable, key=lambda f: (f.path, f.line, f.column)):
            print(finding.render())
        for path, error in manager.parse_failures:
            print(f"{path}: parse failure: {error}", file=sys.stderr)
        print(_summary_line(len(new), len(baselined), strict=args.strict))

    if manager.parse_failures:
        return 2
    if args.strict and new:
        return 1
    return 0


def _rule_counts(findings) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def _summary_line(new: int, baselined: int, strict: bool) -> str:
    if strict:
        if new:
            return f"reprolint: FAILED — {new} new finding(s) ({baselined} baselined)"
        return f"reprolint: ok — no new findings ({baselined} baselined)"
    total = new + baselined
    return (
        f"reprolint: {total} finding(s) — {new} new, {baselined} baselined"
    )


# Smoke: `python -m repro.lint.cli src/repro --strict`
def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin shim
    parser = argparse.ArgumentParser(prog="reprolint")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
