"""The per-file reprolint rules (RL001–RL006).

Each rule is one AST visitor pinning one contract the runtime
InvariantAuditor can only check after the fact.  The rules are grounded
in hazards this repo actually had: the PageTable VPN-wraparound bug was
found by fault injection, unthreaded RNGs hid in ``mem/process.py``, and
the energy model silently under-counts if a structure's counters bypass
``TLBStats``.

The whole-program rules (RL007–RL010) live in
:mod:`repro.lint.rules_project`; :func:`default_rules` registers both
sets.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, LintRule
from .findings import Finding, Severity

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the file binds to ``module`` (``import random as rnd`` → rnd)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _imported_names(tree: ast.Module, module: str) -> dict[str, str]:
    """``from module import x as y`` → {y: x}."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


# ---------------------------------------------------------------------------
# RL001 — determinism
# ---------------------------------------------------------------------------

#: ``random.<fn>`` calls that use the hidden module-level RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "randbytes", "getrandbits",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "betavariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "seed",
    }
)

#: ``numpy.random.<fn>`` legacy calls that use the hidden global state.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "zipf", "poisson", "exponential",
    }
)

#: wall-clock reads that must never feed an RNG or a seed.
_TIME_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.now", "datetime.utcnow",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    }
)

#: Seeded named-stream constructors (the fuzzer's blessed idiom): the
#: helper derives an independent ``default_rng`` from an explicit seed
#: plus crc32'd path elements, so calls *with* arguments are
#: deterministic by construction.  A call with no seed material at all,
#: or with a wall-clock read inside its arguments, defeats that and is
#: flagged like any other RNG constructor.
_STREAM_HELPERS = frozenset({"rng_stream"})


class DeterminismRule(LintRule):
    """RL001: every random draw must come from an explicitly seeded RNG.

    Flags (a) module-level ``random.*`` / legacy ``numpy.random.*``
    calls, which share hidden global state between unrelated components;
    (b) ``random.Random()`` / ``default_rng()`` constructed without a
    seed argument; (c) wall-clock reads feeding an RNG constructor or a
    ``*seed*`` variable.  ``random.Random(seed)`` threaded from the
    owning object's parameters (the ``core/lite.py`` pattern) is the
    blessed idiom; so is ``rng_stream(seed, *path)``
    (:func:`repro.resilience.fuzz.rng_stream`), the fuzzer's seeded
    named-stream constructor — recognized here so fuzz code lints clean,
    while an ``rng_stream()`` call with no seed material (or with a
    wall-clock read in its arguments) is still flagged.
    """

    rule_id = "RL001"
    title = "determinism"
    severity = Severity.ERROR
    hint = "thread an explicit seed from params into a local random.Random/default_rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        random_aliases = _module_aliases(ctx.tree, "random")
        from_random = _imported_names(ctx.tree, "random")
        numpy_aliases = _module_aliases(ctx.tree, "numpy") | _module_aliases(
            ctx.tree, "numpy.random"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, node, random_aliases, from_random, numpy_aliases
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_seed_assignment(ctx, node)

    # -- helpers --------------------------------------------------------
    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        random_aliases: set[str],
        from_random: dict[str, str],
        numpy_aliases: set[str],
    ) -> Iterator[Finding]:
        func = node.func
        where = ctx.qualified_context(node)
        # from random import choice; choice(...)
        if isinstance(func, ast.Name) and from_random.get(func.id) in _GLOBAL_RANDOM_FNS:
            yield self.finding(
                ctx,
                node,
                f"module-level random.{from_random[func.id]}() in {where} "
                "uses the hidden global RNG",
            )
            return
        # rng_stream(seed, *path) — the fuzzer's seeded stream helper.
        helper = None
        if isinstance(func, ast.Name) and func.id in _STREAM_HELPERS:
            helper = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _STREAM_HELPERS:
            helper = func.attr
        if helper is not None:
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    f"seeded stream helper {helper}() called without seed "
                    f"material in {where}",
                )
            else:
                yield from self._check_time_seed(ctx, node, where)
            return
        if not isinstance(func, ast.Attribute):
            return
        base = dotted_name(func.value)
        # random.choice(...) on the module object
        if base in random_aliases:
            if func.attr in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"module-level random.{func.attr}() in {where} "
                    "uses the hidden global RNG",
                )
            elif func.attr in ("Random", "SystemRandom") and not node.args:
                yield self.finding(
                    ctx,
                    node,
                    f"unseeded random.{func.attr}() in {where}",
                )
            elif func.attr == "Random" and node.args:
                yield from self._check_time_seed(ctx, node, where)
            return
        # numpy.random.* — legacy global-state fns, unseeded default_rng
        if base is not None and (
            base in {f"{alias}.random" for alias in numpy_aliases}
            or base in numpy_aliases and func.attr == "default_rng"
        ):
            if func.attr in _NUMPY_GLOBAL_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"legacy numpy.random.{func.attr}() in {where} "
                    "uses the hidden global state",
                )
            elif func.attr == "default_rng":
                if not node.args:
                    yield self.finding(
                        ctx, node, f"unseeded numpy default_rng() in {where}"
                    )
                else:
                    yield from self._check_time_seed(ctx, node, where)

    def _check_time_seed(
        self, ctx: FileContext, call: ast.Call, where: str
    ) -> Iterator[Finding]:
        """Wall-clock reads anywhere inside an RNG constructor's arguments."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    name = dotted_name(sub.func)
                    if name in _TIME_CALLS:
                        yield self.finding(
                            ctx,
                            sub,
                            f"time-derived RNG seed ({name}()) in {where}",
                        )

    def _check_seed_assignment(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        """``seed = time.time()``-style nondeterministic seed material."""
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and node.value is not None:
            targets = [node.target]
        named_seed = any(
            isinstance(t, ast.Name) and "seed" in t.id.lower()
            or isinstance(t, ast.Attribute) and "seed" in t.attr.lower()
            for t in targets
        )
        if not named_seed or node.value is None:
            return
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name in _TIME_CALLS:
                    yield self.finding(
                        ctx,
                        sub,
                        f"seed derived from wall clock ({name}()) in "
                        f"{ctx.qualified_context(node)}",
                    )


# ---------------------------------------------------------------------------
# RL002 — exception taxonomy
# ---------------------------------------------------------------------------

#: built-ins that should be a ReproError subclass inside the package.
_RAW_EXCEPTIONS = frozenset(
    {
        "ValueError", "KeyError", "RuntimeError", "TypeError", "IndexError",
        "Exception", "OSError", "IOError", "FileNotFoundError", "LookupError",
        "ArithmeticError", "OverflowError", "ZeroDivisionError",
    }
)


class ExceptionTaxonomyRule(LintRule):
    """RL002: raises inside the package use the ``repro.errors`` taxonomy.

    Structured errors let the CLI, the resilient sweep runner, and test
    harnesses react by *kind*; a raw ``ValueError`` can only be
    string-matched.  ``NotImplementedError`` (abstract methods) and bare
    ``raise`` (re-raise) stay legal.
    """

    rule_id = "RL002"
    title = "exception taxonomy"
    severity = Severity.WARNING
    hint = "raise a ReproError subclass from repro.errors (double-derive for compat)"

    #: files exempt from the rule (the taxonomy itself).
    exempt_suffixes = ("repro/errors.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath.endswith(self.exempt_suffixes):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call):
                name = dotted_name(exc.func)
            else:
                name = dotted_name(exc)
            if name in _RAW_EXCEPTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"raise {name} outside the ReproError taxonomy in "
                    f"{ctx.qualified_context(node)}",
                )


# ---------------------------------------------------------------------------
# RL003 — hot-path purity
# ---------------------------------------------------------------------------

#: method names that form the simulator's per-access fast path.
_HOT_METHODS = frozenset({"access", "lookup", "fill", "insert"})

#: allocation-heavy builtins priced once per *call*, fatal once per access.
_HOT_ALLOC_CALLS = frozenset({"sorted", "list", "dict", "set", "tuple", "deepcopy"})

#: telemetry call leaves banned from the per-access path: timers and
#: span plumbing move at boundary granularity (one bump per drain
#: segment — see docs/observability.md), never per access.
_TELEMETRY_LEAVES = frozenset({"trace_span", "perf_counter", "monotonic"})

#: dotted-name segments that mark a call as telemetry plumbing
#: (``self.obs.begin(...)``, ``observability.span(...)``, ...).
_TELEMETRY_SEGMENTS = frozenset({"obs", "observability", "telemetry"})


def iter_purity_violations(func: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for every purity violation in ``func``.

    Shared by RL003 (direct hot methods) and RL008 (helpers reached from
    hot methods); the caller formats the location context around the
    description.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.ExceptHandler):
            caught = dotted_name(node.type) if node.type is not None else None
            if node.type is None or caught in ("Exception", "BaseException"):
                label = caught or "bare except"
                yield node, f"broad exception handler ({label})"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            yield node, f"allocation-heavy {type(node).__name__}"
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            head = name.split(".", 1)[0]
            leaf = name.rsplit(".", 1)[-1]
            if name == "print" or head in ("logging", "logger", "log"):
                yield node, f"logging/printing ({name})"
            elif leaf in _HOT_ALLOC_CALLS and "." not in name:
                yield node, f"allocation-heavy call ({name}())"
            elif leaf in _TELEMETRY_LEAVES or _TELEMETRY_SEGMENTS & set(
                name.split(".")
            ):
                yield node, f"telemetry in the per-access path ({name})"


class HotPathPurityRule(LintRule):
    """RL003: the per-access fast path stays allocation- and I/O-free.

    ``Simulator.run`` drains every trace reference through
    ``hierarchy.access`` → TLB ``lookup``/``fill``; one comprehension or
    log call there executes hundreds of thousands of times per run.
    Broad ``except Exception`` handlers are also banned — fault
    tolerance belongs to the simulator's ``on_fault="record"`` loop,
    which records faults per access; a swallow inside the structure
    silently corrupts the energy accounting instead.
    """

    rule_id = "RL003"
    title = "hot-path purity"
    severity = Severity.ERROR
    hint = "hoist work out of the per-access path (batch into sync_stats) or disable with justification"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in _HOT_METHODS:
                continue
            if ctx.enclosing_class(node) is None:
                continue
            yield from self._check_body(ctx, node)

    def _check_body(self, ctx: FileContext, func: ast.FunctionDef) -> Iterator[Finding]:
        where = ctx.qualified_context(func)
        for node, description in iter_purity_violations(func):
            yield self.finding(ctx, node, f"{description} in hot path {where}")


# ---------------------------------------------------------------------------
# RL004 — stats discipline
# ---------------------------------------------------------------------------

#: methods allowed to write through a ``stats`` object.
_STATS_WRITER_METHODS = frozenset(
    {"sync_stats", "reset_stats", "reset", "snapshot", "__init__"}
)


class StatsDisciplineRule(LintRule):
    """RL004: counters on ``stats`` objects are written only by owners.

    The energy accountant prices accesses from ``TLBStats`` histograms;
    a counter bumped from arbitrary code bypasses the pending-count
    batching (``sync_stats``) and silently skews ``E = A·E_read +
    M·E_write``.  Writes through ``*.stats.*`` are legal only inside
    ``sync_stats``/``reset_stats``/``reset``/``snapshot``/``__init__``
    or inside a ``*Stats`` class itself.
    """

    rule_id = "RL004"
    title = "stats discipline"
    severity = Severity.WARNING
    hint = "accumulate pending counts locally and flush them in sync_stats()"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if self._writes_through_stats(target) and not self._allowed(ctx, node):
                        yield self.finding(
                            ctx,
                            node,
                            f"stats counter mutated outside its owner in "
                            f"{ctx.qualified_context(node)}",
                        )
                        break

    @staticmethod
    def _writes_through_stats(target: ast.expr) -> bool:
        """True when the assignment target routes through ``<x>.stats``."""
        node: ast.AST = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
            if isinstance(node, ast.Attribute) and node.attr == "stats":
                return True
            if isinstance(node, ast.Name) and node.id == "stats":
                return True
        return False

    @staticmethod
    def _allowed(ctx: FileContext, node: ast.AST) -> bool:
        func = ctx.enclosing_function(node)
        if func is not None and func.name in _STATS_WRITER_METHODS:
            return True
        cls = ctx.enclosing_class(node)
        return cls is not None and cls.name.endswith("Stats")


# ---------------------------------------------------------------------------
# RL005 — power-of-two configuration guards
# ---------------------------------------------------------------------------

#: constructor parameters that must be validated as powers of two.
_POW2_PARAMS = frozenset({"ways", "banks", "num_sets", "sets"})

#: callable names that count as validation when passed the parameter.
_VALIDATOR_HINTS = ("power_of_two", "validate", "check")


class PowerOfTwoGuardRule(LintRule):
    """RL005: way/bank/set counts are validated at construction.

    Way-disabling halves associativity in powers of two and bank/set
    selection masks address bits, so a non-power-of-two count corrupts
    indexing silently (entries alias or vanish).  A constructor taking
    ``ways``/``banks``/``num_sets`` must mention the parameter in an
    ``if``/``assert`` test or pass it to a ``*power_of_two*``-style
    validator before trusting it.
    """

    rule_id = "RL005"
    title = "power-of-two config guards"
    severity = Severity.WARNING
    hint = "guard with _is_power_of_two(...) and raise ConfigurationError at construction"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.FunctionDef) and node.name == "__init__"):
                continue
            if ctx.enclosing_class(node) is None:
                continue
            params = {
                arg.arg
                for arg in list(node.args.args) + list(node.args.kwonlyargs)
                if arg.arg in _POW2_PARAMS
            }
            if not params:
                continue
            validated = self._validated_names(node)
            for param in sorted(params - validated):
                yield self.finding(
                    ctx,
                    node,
                    f"constructor parameter {param!r} of "
                    f"{ctx.qualified_context(node)} is never validated as a "
                    "power of two",
                )

    @staticmethod
    def _validated_names(func: ast.FunctionDef) -> set[str]:
        """Parameter names that appear in a validation context in ``func``."""
        validated: set[str] = set()

        def names_in(node: ast.AST) -> Iterator[str]:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    yield sub.id

        for node in ast.walk(func):
            if isinstance(node, ast.If):
                validated.update(names_in(node.test))
            elif isinstance(node, ast.Assert):
                validated.update(names_in(node.test))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if any(hint in name.lower() for hint in _VALIDATOR_HINTS):
                    for arg in node.args:
                        validated.update(names_in(arg))
        return validated


# ---------------------------------------------------------------------------
# RL006 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "Counter", "defaultdict"})


class MutableDefaultRule(LintRule):
    """RL006: no mutable default arguments.

    A default evaluated once at ``def`` time is shared by every call;
    for simulator components that means state leaking between runs —
    the exact failure mode the determinism contract exists to prevent.
    """

    rule_id = "RL006"
    title = "mutable default arguments"
    severity = Severity.ERROR
    hint = "default to None and construct the container inside the function"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and dotted_name(default.func) in _MUTABLE_CALLS
                ):
                    kind = (
                        f"{dotted_name(default.func)}()"
                        if isinstance(default, ast.Call)
                        else type(default).__name__
                    )
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument ({kind}) in "
                        f"{ctx.qualified_context(node)}",
                    )


# ---------------------------------------------------------------------------

ALL_RULES: tuple[type[LintRule], ...] = (
    DeterminismRule,
    ExceptionTaxonomyRule,
    HotPathPurityRule,
    StatsDisciplineRule,
    PowerOfTwoGuardRule,
    MutableDefaultRule,
)


def default_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, in id order.

    Includes the whole-program rules (RL007–RL010) from
    :mod:`repro.lint.rules_project`; imported late because that module
    needs the shared helpers defined here.
    """
    from .rules_project import PROJECT_RULES

    return [rule() for rule in ALL_RULES + PROJECT_RULES]
