"""Two-phase pass manager: per-file visitors, then whole-program rules.

The framework mirrors classic compiler-pass collections (one cheap
visitor per invariant, all driven off a shared parse) rather than a
general dataflow engine — most contracts being enforced are syntactic
enough that a single AST walk per rule is exact, fast, and easy to
extend.

Phase 1 parses every file once into a :class:`FileContext` and runs the
per-file rules (RL001–RL006, RL010) over each.  Phase 2 assembles all
the parsed contexts into a :class:`repro.lint.project.ProjectContext`
(module/symbol index, class table with resolved bases and per-class
attribute-write sets, call graph) and runs the :class:`ProjectRule`
passes (RL007–RL009) on top of it — the contracts those pin (checkpoint
coverage, interprocedural purity, process-boundary safety) span files
and inheritance chains, so no single-file visitor can see them.

``FileContext`` carries everything a rule may need: the parsed tree, the
raw source lines (for suppression comments), the repo-relative path, and
a parent map so visitors can ask "which function/class am I inside?"
without threading state through every ``visit_*`` method.
"""

from __future__ import annotations

import ast
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import ReproError
from .findings import Finding, Severity, sort_findings

#: ``# reprolint: disable=RL001,RL002`` or ``disable=all``.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_*,\s]+)")


class LintConfigError(ReproError, ValueError):
    """The lint run itself is misconfigured (bad paths, bad rule set)."""


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions = self._parse_suppressions()

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> dict[int, set[str]]:
        """Map line number -> rule ids disabled there.

        A suppression comment covers the *whole statement* it is attached
        to: its own physical line, every line of a multi-line simple
        statement, and — for ``def``/``class`` — the decorator lines and
        the header (signature) lines, but never the body.  A *standalone*
        comment line covers the statement starting on the following line
        (or just the following line when no statement starts there).
        """
        raw: dict[int, set[str]] = {}
        standalone: set[int] = set()
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = {
                token.strip().upper().replace("ALL", "*")
                for token in match.group(1).split(",")
                if token.strip()
            }
            raw.setdefault(number, set()).update(rules)
            if text.lstrip().startswith("#"):
                standalone.add(number)
        suppressed: dict[int, set[str]] = {
            number: set(rules) for number, rules in raw.items()
        }
        if not raw:
            return suppressed
        for number in standalone:
            suppressed.setdefault(number + 1, set()).update(raw[number])
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            start, end = self._statement_span(node)
            active: set[str] = set()
            for line in range(start, end + 1):
                active |= raw.get(line, set())
            if start - 1 in standalone:
                active |= raw[start - 1]
            if active:
                for line in range(start, end + 1):
                    suppressed.setdefault(line, set()).update(active)
        return suppressed

    @staticmethod
    def _statement_span(node: ast.stmt) -> tuple[int, int]:
        """Line range a suppression on ``node`` covers.

        Simple statements cover their full extent; compound statements
        (``def``, ``class``, ``if``, ...) cover decorators plus the
        header only, so a disable on a ``def`` line does not blanket the
        entire body.
        """
        start = node.lineno
        decorators = getattr(node, "decorator_list", None) or []
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = max(start, node.end_lineno or start)
        return start, end

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and ("*" in rules or rule.upper() in rules)

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing(self, node: ast.AST, *kinds: type) -> ast.AST | None:
        """Nearest ancestor of one of ``kinds`` (FunctionDef, ClassDef, ...)."""
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = self._parents.get(current)
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)

    def enclosing_class(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(node, ast.ClassDef)

    def qualified_context(self, node: ast.AST) -> str:
        """Human-readable ``Class.method`` context for messages."""
        parts: list[str] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                parts.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(parts)) or "<module>"


class LintRule:
    """Base class of every reprolint rule.

    Subclasses set ``rule_id``/``title``/``severity``/``hint`` and
    implement :meth:`check`, yielding one :class:`Finding` per violation
    (use :meth:`finding` so paths/ids stay consistent).
    """

    rule_id = "RL000"
    title = "untitled rule"
    severity = Severity.WARNING
    hint = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        hint: str | None = None,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
            symbol=symbol,
        )


class ProjectRule(LintRule):
    """A phase-2 rule: runs once over the whole-program context.

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`check` is a no-op so project rules can share the registry with
    file rules.  Findings should carry the qualified ``symbol`` they are
    about (via :meth:`LintRule.finding`'s ``symbol`` argument) so the
    baseline keys them by symbol rather than by file.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings over a :class:`repro.lint.project.ProjectContext`."""
        raise NotImplementedError


class PassManager:
    """Runs a rule set over files in two phases, applying suppressions.

    Phase 1 parses every file and runs the per-file rules; phase 2 builds
    one :class:`~repro.lint.project.ProjectContext` from all parsed files
    and runs the :class:`ProjectRule` set over it.  Inline suppressions
    apply uniformly: a project finding anchored at a class's definition
    line is silenced by a ``# reprolint: disable=`` on that line.
    """

    def __init__(self, rules: Iterable[LintRule]) -> None:
        self.rules = list(rules)
        seen: set[str] = set()
        for rule in self.rules:
            if rule.rule_id in seen:
                raise LintConfigError(f"duplicate rule id {rule.rule_id}")
            seen.add(rule.rule_id)
        #: files the manager could not parse, as (relpath, error) pairs.
        self.parse_failures: list[tuple[str, str]] = []

    @property
    def file_rules(self) -> list[LintRule]:
        return [r for r in self.rules if not isinstance(r, ProjectRule)]

    @property
    def project_rules(self) -> list[LintRule]:
        return [r for r in self.rules if isinstance(r, ProjectRule)]

    # ------------------------------------------------------------------
    def parse_file(self, path: Path, root: Path) -> FileContext | None:
        """Parse one file into a context; record (not raise) failures."""
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            with tokenize.open(path) as handle:  # honours PEP 263 encodings
                source = handle.read()
            return FileContext(path, relpath, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            self.parse_failures.append((relpath, f"{type(error).__name__}: {error}"))
            return None

    def lint_file(self, path: Path, root: Path) -> list[Finding]:
        """Phase-1 only convenience: per-file rules over a single file."""
        ctx = self.parse_file(path, root)
        if ctx is None:
            return []
        findings: list[Finding] = []
        for rule in self.file_rules:
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
        return findings

    def lint_paths(
        self,
        paths: Iterable[Path],
        root: Path,
        report_paths: set[str] | None = None,
    ) -> list[Finding]:
        """Run both phases over ``paths``.

        ``report_paths`` (repo-relative posix paths) restricts which
        files findings are *reported* for without restricting which files
        are *analysed* — the ``--changed`` fast path: whole-program rules
        still see the whole program, the report only covers the diff.
        """
        contexts: list[FileContext] = []
        for path in paths:
            for file in iter_python_files(path):
                ctx = self.parse_file(file, root)
                if ctx is not None:
                    contexts.append(ctx)
        findings: list[Finding] = []
        file_rules = self.file_rules
        for ctx in contexts:
            for rule in file_rules:
                for finding in rule.check(ctx):
                    if not ctx.is_suppressed(finding.rule, finding.line):
                        findings.append(finding)
        project_rules = self.project_rules
        if project_rules:
            from .project import ProjectContext  # late: project imports engine

            project = ProjectContext(contexts)
            by_path = {ctx.relpath: ctx for ctx in contexts}
            for rule in project_rules:
                for finding in rule.check_project(project):
                    ctx = by_path.get(finding.path)
                    if ctx is not None and ctx.is_suppressed(
                        finding.rule, finding.line
                    ):
                        continue
                    findings.append(finding)
        if report_paths is not None:
            findings = [f for f in findings if f.path in report_paths]
        return sort_findings(findings)


def iter_python_files(path: Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``path`` (sorted, caches skipped)."""
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    if not path.exists():
        raise LintConfigError(f"lint path does not exist: {path}")
    for file in sorted(path.rglob("*.py")):
        if "__pycache__" not in file.parts:
            yield file


def lint_paths(
    paths: Iterable[Path | str],
    rules: Iterable[LintRule] | None = None,
    root: Path | str | None = None,
    report_paths: set[str] | None = None,
) -> list[Finding]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default: all).

    ``root`` anchors the repo-relative paths findings carry (and the
    baseline matches on); it defaults to the current directory.
    """
    from .rules import default_rules  # late import: rules import this module

    manager = PassManager(default_rules() if rules is None else rules)
    return manager.lint_paths(
        [Path(p) for p in paths],
        Path(root) if root is not None else Path.cwd(),
        report_paths=report_paths,
    )
