"""Pass manager: one ``ast.parse`` sweep per file, every rule per sweep.

The framework mirrors classic compiler-pass collections (one cheap
visitor per invariant, all driven off a shared parse) rather than a
general dataflow engine — the contracts being enforced are syntactic
enough that a single AST walk per rule is exact, fast, and easy to
extend.

``FileContext`` carries everything a rule may need: the parsed tree, the
raw source lines (for suppression comments), the repo-relative path, and
a parent map so visitors can ask "which function/class am I inside?"
without threading state through every ``visit_*`` method.
"""

from __future__ import annotations

import ast
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import ReproError
from .findings import Finding, Severity, sort_findings

#: ``# reprolint: disable=RL001,RL002`` or ``disable=all``.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_*,\s]+)")


class LintConfigError(ReproError, ValueError):
    """The lint run itself is misconfigured (bad paths, bad rule set)."""


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions = self._parse_suppressions()

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> dict[int, set[str]]:
        """Map line number -> rule ids disabled there.

        A suppression comment covers its own line; a *standalone* comment
        line also covers the following line, so violations can be
        annotated either inline or on the line above.
        """
        suppressed: dict[int, set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = {
                token.strip().upper().replace("ALL", "*")
                for token in match.group(1).split(",")
                if token.strip()
            }
            suppressed.setdefault(number, set()).update(rules)
            if text.lstrip().startswith("#"):
                suppressed.setdefault(number + 1, set()).update(rules)
        return suppressed

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and ("*" in rules or rule.upper() in rules)

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing(self, node: ast.AST, *kinds: type) -> ast.AST | None:
        """Nearest ancestor of one of ``kinds`` (FunctionDef, ClassDef, ...)."""
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = self._parents.get(current)
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)

    def enclosing_class(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(node, ast.ClassDef)

    def qualified_context(self, node: ast.AST) -> str:
        """Human-readable ``Class.method`` context for messages."""
        parts: list[str] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                parts.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(parts)) or "<module>"


class LintRule:
    """Base class of every reprolint rule.

    Subclasses set ``rule_id``/``title``/``severity``/``hint`` and
    implement :meth:`check`, yielding one :class:`Finding` per violation
    (use :meth:`finding` so paths/ids stay consistent).
    """

    rule_id = "RL000"
    title = "untitled rule"
    severity = Severity.WARNING
    hint = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


class PassManager:
    """Runs a rule set over files, applying inline suppressions."""

    def __init__(self, rules: Iterable[LintRule]) -> None:
        self.rules = list(rules)
        seen: set[str] = set()
        for rule in self.rules:
            if rule.rule_id in seen:
                raise LintConfigError(f"duplicate rule id {rule.rule_id}")
            seen.add(rule.rule_id)
        #: files the manager could not parse, as (relpath, error) pairs.
        self.parse_failures: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    def lint_file(self, path: Path, root: Path) -> list[Finding]:
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            with tokenize.open(path) as handle:  # honours PEP 263 encodings
                source = handle.read()
            ctx = FileContext(path, relpath, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            self.parse_failures.append((relpath, f"{type(error).__name__}: {error}"))
            return []
        findings: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
        return findings

    def lint_paths(self, paths: Iterable[Path], root: Path) -> list[Finding]:
        findings: list[Finding] = []
        for path in paths:
            for file in iter_python_files(path):
                findings.extend(self.lint_file(file, root))
        return sort_findings(findings)


def iter_python_files(path: Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``path`` (sorted, caches skipped)."""
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    if not path.exists():
        raise LintConfigError(f"lint path does not exist: {path}")
    for file in sorted(path.rglob("*.py")):
        if "__pycache__" not in file.parts:
            yield file


def lint_paths(
    paths: Iterable[Path | str],
    rules: Iterable[LintRule] | None = None,
    root: Path | str | None = None,
) -> list[Finding]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default: all).

    ``root`` anchors the repo-relative paths findings carry (and the
    baseline matches on); it defaults to the current directory.
    """
    from .rules import default_rules  # late import: rules import this module

    manager = PassManager(default_rules() if rules is None else rules)
    return manager.lint_paths(
        [Path(p) for p in paths], Path(root) if root is not None else Path.cwd()
    )
