"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every registered workload (suite, footprint, intensity) and the
    available TLB configurations.
run
    Simulate one workload under one or more configurations and print the
    headline metrics.
sweep
    Run a workload across all paper configurations, normalised to 4KB —
    a one-workload slice of Figure 10.
describe
    Print a configuration's structure inventory (Figure 9 style).
"""

from __future__ import annotations

import argparse
import sys

from .analysis.experiments import ExperimentSettings, run_workload_config
from .analysis.report import render_table
from .core.organizations import (
    CONFIG_NAMES,
    EXTENDED_CONFIG_NAMES,
    build_organization,
    paging_policy_for,
)
from .mem.physical import PhysicalMemory
from .mem.process import Process
from .mmu.translation import PAGES_PER_2MB
from .workloads.registry import all_workloads, get_workload


def _cmd_list(_args) -> int:
    rows = [
        [
            workload.name,
            workload.suite,
            f"{workload.footprint_mb:.0f} MB",
            "yes" if workload.tlb_intensive else "no",
        ]
        for workload in all_workloads().values()
    ]
    print(render_table(["workload", "suite", "memory", "TLB-intensive"], rows))
    print("\nconfigurations:", ", ".join(EXTENDED_CONFIG_NAMES))
    return 0


def _cmd_run(args) -> int:
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    rows = []
    for config in args.configs:
        result = run_workload_config(workload, config, settings)
        rows.append(
            [
                config,
                result.energy_per_access_pj,
                result.l1_mpki,
                result.l2_mpki,
                result.miss_cycles,
            ]
        )
    print(
        render_table(
            ["config", "pJ/access", "L1 MPKI", "L2 MPKI", "miss cycles"],
            rows,
            title=f"{workload.name} ({workload.footprint_mb:.0f} MB), "
            f"{args.accesses} accesses",
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    rows = []
    baseline = None
    for config in CONFIG_NAMES:
        result = run_workload_config(workload, config, settings)
        if baseline is None:
            baseline = result
        rows.append(
            [
                config,
                result.total_energy_pj / baseline.total_energy_pj,
                result.miss_cycles / max(baseline.miss_cycles, 1),
            ]
        )
    print(
        render_table(
            ["config", "energy vs 4KB", "miss cycles vs 4KB"],
            rows,
            title=f"{workload.name} — Figure 10 slice",
        )
    )
    return 0


def _cmd_describe(args) -> int:
    process = Process(PhysicalMemory(1 << 30, seed=0), paging_policy_for(args.config))
    process.mmap(PAGES_PER_2MB * 2, name="heap")
    organization = build_organization(args.config, process)
    print(organization.summary.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Energy-Efficient Address Translation' (HPCA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    run_parser = sub.add_parser("run", help="simulate one workload")
    run_parser.add_argument("workload")
    run_parser.add_argument(
        "--configs", nargs="+", default=["THP"], choices=EXTENDED_CONFIG_NAMES
    )
    run_parser.add_argument("--accesses", type=int, default=200_000)
    run_parser.add_argument("--seed", type=int, default=42)

    sweep_parser = sub.add_parser("sweep", help="all six paper configurations")
    sweep_parser.add_argument("workload")
    sweep_parser.add_argument("--accesses", type=int, default=200_000)
    sweep_parser.add_argument("--seed", type=int, default=42)

    describe_parser = sub.add_parser("describe", help="show a configuration")
    describe_parser.add_argument("config", choices=EXTENDED_CONFIG_NAMES)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "describe": _cmd_describe,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
