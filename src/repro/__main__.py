"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every registered workload (suite, footprint, intensity) and the
    available TLB configurations.
run
    Simulate one workload under one or more configurations and print the
    headline metrics.
sweep
    Run a workload across all paper configurations, normalised to 4KB —
    a one-workload slice of Figure 10.  Supports ``--journal``/``--resume``
    (checkpointed, resumable execution), ``--checkpoint-every N`` (mid-cell
    snapshots, so ``--resume`` restarts inside an interrupted cell), ``--audit``
    (runtime invariant checking), ``--retries`` and ``--cell-timeout``
    (per-cell isolation).  Cells run under the **process supervisor** by
    default: ``--workers N`` parallel worker processes (``--workers 0``
    falls back to the legacy in-process path), hard SIGKILL timeouts,
    ``--heartbeat-timeout`` hang detection, ``--memory-limit-mb``
    per-worker budgets (structured ``oom`` status),
    ``--quarantine-after`` crash quarantine, and graceful SIGINT/SIGTERM
    shutdown that leaves the journal byte-identically resumable (exit
    code 3).  ``--chaos-kill-prob``/``--chaos-seed`` inject worker
    SIGKILLs at random drain-loop boundaries — fault injection aimed at
    the supervisor itself (the chaos CI job).  ``--print-digest`` prints
    the journal's order-independent row digest for cross-run comparison.
    ``--metrics`` runs every cell with the observability layer and
    aggregates per-cell snapshots into a ``<journal>.metrics.json``
    sidecar (the journal itself stays byte-identical).
metrics
    Observability front-end (``docs/observability.md``).  Run one
    (workload, configuration) cell with the telemetry hub enabled and
    print its metric snapshot as a table (``--format text``), JSON, or
    Prometheus text exposition; ``--chrome-trace PATH`` additionally
    writes the phase-span timeline as a Chrome trace-event file.
    Alternatively ``--journal PATH`` prints the aggregated totals from a
    ``sweep --metrics`` sidecar instead of running anything.
bisect-divergence
    Run one (workload, configuration) cell twice — fresh vs.
    resumed-from-checkpoint by default, or against a second seed
    (``--seed-b``) or a perturbed trace (``--fault``) — and binary-search
    the per-interval golden state digests for the first boundary and
    component where the two runs diverge.  Exit 0 when identical, 1 on
    divergence (the determinism CI gate).
describe
    Print a configuration's structure inventory (Figure 9 style).
audit
    Simulate with the invariant auditor enabled and report the number of
    accounting checks passed (or the first violation).
lint
    Run the two-phase reprolint static-analysis pass (per-file rules
    RL001–RL006, RL010 plus whole-program rules RL007–RL009) over the
    package (or given paths).  ``--strict`` applies the
    ``.reprolint-baseline.json`` ratchet and fails on new findings;
    ``--update-baseline`` rewrites it; ``--explain RLxxx`` documents a
    rule; ``--changed`` reports only on files the working tree touched.
    See ``docs/static_analysis.md``.
fuzz
    Differential fuzzing harness (``fuzz run|replay|minimize``).
    ``run`` samples seeded random cases (hierarchy geometry, Lite knobs,
    page-size mixes, trace patterns + perturbations, OS-event schedules)
    and drives each through the oracle stack — reference-vs-fast digest
    equality, kill-and-resume identity, invariant auditing, taxonomy
    containment — minimizing failures into ``--corpus`` reproducers
    bucketed by fingerprint (``--cases``/``--max-seconds`` budgets; exit
    1 on failures, consistent with ``sweep``).  ``replay`` re-runs every
    corpus reproducer deterministically (exit 1 on any failure);
    ``minimize`` re-shrinks one reproducer file.  See
    ``docs/robustness.md``.

Unknown workload or configuration names exit with a did-you-mean message
instead of a traceback; structured simulator errors print as
``error-class: message``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from .analysis.experiments import ExperimentSettings, prepare_run, run_workload_config
from .analysis.report import render_table
from .core.organizations import (
    CONFIG_NAMES,
    EXTENDED_CONFIG_NAMES,
    build_organization,
    paging_policy_for,
)
from .errors import InvariantViolation, ReproError, UnknownConfigError
from .lint.cli import add_lint_arguments, run_lint
from .mem.physical import PhysicalMemory
from .mem.process import Process
from .mmu.translation import PAGES_PER_2MB
from .resilience.auditor import InvariantAuditor
from .resilience.bisect import (
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
    record_resumed_trail,
)
from .resilience.faults import TRACE_FAULTS, ChaosPolicy
from .resilience.sweep import SweepJournal, run_resilient_sweep
from .workloads.registry import all_workloads, get_workload

#: Journal used by ``sweep --resume`` when ``--journal`` is not given.
DEFAULT_JOURNAL = "repro-sweep.journal"


def _config_name(name: str) -> str:
    """Argparse type for configuration names with did-you-mean errors."""
    if name not in EXTENDED_CONFIG_NAMES:
        error = UnknownConfigError(name, EXTENDED_CONFIG_NAMES)
        raise argparse.ArgumentTypeError(str(error))
    return name


def _cmd_list(_args) -> int:
    rows = [
        [
            workload.name,
            workload.suite,
            f"{workload.footprint_mb:.0f} MB",
            "yes" if workload.tlb_intensive else "no",
        ]
        for workload in all_workloads().values()
    ]
    print(render_table(["workload", "suite", "memory", "TLB-intensive"], rows))
    print("\nconfigurations:", ", ".join(EXTENDED_CONFIG_NAMES))
    return 0


def _cmd_run(args) -> int:
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    auditor = InvariantAuditor() if args.audit else None
    rows = []
    for config in args.configs:
        result = run_workload_config(workload, config, settings, auditor=auditor)
        rows.append(
            [
                config,
                result.energy_per_access_pj,
                result.l1_mpki,
                result.l2_mpki,
                result.miss_cycles,
            ]
        )
    print(
        render_table(
            ["config", "pJ/access", "L1 MPKI", "L2 MPKI", "miss cycles"],
            rows,
            title=f"{workload.name} ({workload.footprint_mb:.0f} MB), "
            f"{args.accesses} accesses",
        )
    )
    if auditor is not None:
        print(f"\nauditor: {auditor.checks_run} invariant checks passed")
    return 0


def _cmd_sweep(args) -> int:
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    journal_path = args.journal
    if journal_path is None and args.resume:
        journal_path = DEFAULT_JOURNAL
    chaos = None
    if args.chaos_kill_prob > 0.0:
        chaos = ChaosPolicy(
            kill_probability=args.chaos_kill_prob, seed=args.chaos_seed
        )
    report = run_resilient_sweep(
        [workload],
        CONFIG_NAMES,
        settings,
        journal_path=journal_path,
        resume=args.resume,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        audit=args.audit,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers if args.workers > 0 else None,
        quarantine_after=args.quarantine_after,
        heartbeat_timeout_s=args.heartbeat_timeout,
        memory_limit_mb=args.memory_limit_mb,
        chaos=chaos,
        metrics=args.metrics,
    )
    baseline_cell = report.cell(workload.name, CONFIG_NAMES[0])
    baseline = baseline_cell.row if baseline_cell and baseline_cell.completed else None
    rows = []
    for config in CONFIG_NAMES:
        cell = report.cell(workload.name, config)
        if cell is not None and cell.completed and baseline is not None:
            row = cell.row
            rows.append(
                [
                    config,
                    row["total_energy_pj"] / baseline["total_energy_pj"],
                    row["miss_cycles"] / max(baseline["miss_cycles"], 1),
                    cell.status,
                ]
            )
        else:
            status = cell.status if cell is not None else "missing"
            rows.append([config, "—", "—", status.upper()])
    print(
        render_table(
            ["config", "energy vs 4KB", "miss cycles vs 4KB", "status"],
            rows,
            title=f"{workload.name} — Figure 10 slice",
        )
    )
    if args.print_digest and journal_path is not None:
        print(f"journal digest: {SweepJournal(journal_path).digest()}")
    if args.metrics and report.metrics is not None:
        totals = report.metrics["totals"]
        counters = totals.get("counters", {})
        drained = counters.get("sim.accesses_drained", 0)
        boundaries = counters.get("sim.boundaries", 0)
        line = (
            f"metrics: {len(report.metrics['cells'])} cells, "
            f"{drained} accesses drained over {boundaries} boundaries"
        )
        if journal_path is not None:
            from .observability import metrics_sidecar_path

            line += f" → {metrics_sidecar_path(journal_path)}"
        print(line)
    if report.interrupted:
        print(
            f"\nsweep interrupted ({report.summary()}); the journal is "
            "resumable with --resume",
            file=sys.stderr,
        )
        return 3
    if report.failed_cells:
        print(f"\nwarning: incomplete sweep ({report.summary()})", file=sys.stderr)
        for cell in report.failed_cells:
            print(f"  {cell.configuration}: {cell.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_bisect(args) -> int:
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    reference = record_digest_trail(
        workload, args.config, settings, digest_every=args.digest_every
    )
    if args.fault is not None:
        comparison = "clean trace vs fault-injected trace " f"({args.fault})"
        other = record_digest_trail(
            workload,
            args.config,
            settings,
            digest_every=args.digest_every,
            trace_fault=args.fault,
            fault_seed=args.fault_seed,
        )
    elif args.seed_b is not None:
        comparison = f"seed {args.seed} vs seed {args.seed_b}"
        settings_b = ExperimentSettings(
            trace_accesses=args.accesses, seed=args.seed_b
        )
        other = record_digest_trail(
            workload, args.config, settings_b, digest_every=args.digest_every
        )
    else:
        comparison = (
            f"fresh run vs run killed after {args.abort_after} boundaries "
            "and resumed from its snapshot"
        )
        with tempfile.TemporaryDirectory(prefix="repro-bisect-") as tmp:
            other = record_resumed_trail(
                workload,
                args.config,
                settings,
                digest_every=args.digest_every,
                abort_after=args.abort_after,
                snapshot_path=Path(tmp) / "cell.ckpt",
            )
    divergence = bisect_divergence(reference.trail, other.trail)
    print(
        f"{workload.name} / {args.config}: {comparison} — "
        f"{len(reference.trail.boundaries)} digested boundaries"
    )
    print(describe_divergence(divergence))
    return 0 if divergence is None else 1


def _cmd_describe(args) -> int:
    process = Process(PhysicalMemory(1 << 30, seed=0), paging_policy_for(args.config))
    process.mmap(PAGES_PER_2MB * 2, name="heap")
    organization = build_organization(args.config, process)
    print(organization.summary.render())
    return 0


def _cmd_fuzz(args) -> int:
    from .resilience.fuzz import (
        corpus_paths,
        load_reproducer,
        minimize_reproducer,
        replay_corpus,
        run_fuzz,
    )

    if args.fuzz_command == "run":
        report = run_fuzz(
            seed=args.seed,
            cases=args.cases,
            max_seconds=args.max_seconds,
            corpus_dir=args.corpus,
            minimize=not args.no_minimize,
            minimize_evaluations=args.minimize_evaluations,
            log=lambda line: print(line, file=sys.stderr),
        )
        budget = " (time budget exhausted)" if report.budget_exhausted else ""
        print(
            f"fuzz: {report.cases_run}/{report.cases_requested} cases, "
            f"{len(report.failures)} failures, seed {report.seed}, "
            f"{report.seconds:.1f}s{budget}"
        )
        for entry in report.failures:
            failure = entry["failure"]
            shrunk = entry["minimized"]
            size = (
                f", minimized {shrunk['original_entries']}→{shrunk['entries']} "
                f"entries in {shrunk['evaluations']} evals"
                if shrunk
                else ""
            )
            print(
                f"  case {entry['index']} ({entry['config']}): "
                f"{failure.oracle}/{failure.kind} [{failure.fingerprint}]{size}"
            )
        for path in report.new_reproducers:
            print(f"  reproducer: {path}")
        return 1 if report.failures else 0

    if args.fuzz_command == "replay":
        paths = (
            [Path(p) for p in args.reproducers]
            if args.reproducers
            else corpus_paths(args.corpus)
        )
        if not paths:
            print(f"fuzz replay: no reproducers under {args.corpus}")
            return 0
        replayed = replay_corpus(paths)
        failed = 0
        for item in replayed:
            if item.status == "pass":
                print(f"  {item.path.name}: pass")
                continue
            failed += 1
            failure = item.outcome.failure
            note = (
                ""
                if item.status == "fail"
                else f" (bucket changed: was {item.fingerprint})"
            )
            print(
                f"  {item.path.name}: FAIL {failure.oracle}/{failure.kind} "
                f"[{failure.fingerprint}]{note} — {failure.detail}"
            )
        print(f"fuzz replay: {len(replayed) - failed}/{len(replayed)} pass")
        return 1 if failed else 0

    # minimize: re-shrink one reproducer file.
    _case, envelope = load_reproducer(args.reproducer)
    destination = minimize_reproducer(
        args.reproducer,
        out_path=args.out,
        max_evaluations=args.minimize_evaluations,
    )
    _case, shrunk = load_reproducer(destination)
    stats = shrunk["found"].get("reminimized", {})
    print(
        f"minimized {args.reproducer} → {destination} "
        f"({stats.get('original_entries', '?')}→{stats.get('entries', '?')} "
        f"entries, {stats.get('evaluations', '?')} evals, "
        f"fingerprint {shrunk['fingerprint']})"
    )
    return 0


def _cmd_metrics(args) -> int:
    from .observability import (
        Observability,
        metrics_sidecar_path,
        read_metrics_sidecar,
        render_totals_prometheus,
    )

    if args.journal is not None:
        document = read_metrics_sidecar(metrics_sidecar_path(args.journal))
        if args.format == "json":
            print(json.dumps(document, indent=2, sort_keys=True))
        elif args.format == "prometheus":
            print(render_totals_prometheus(document), end="")
        else:
            _print_snapshot_table(
                document.get("totals", {}),
                title=f"aggregated over {len(document.get('cells', {}))} cells",
            )
        return 0

    if args.workload is None:
        print(
            "metrics: a workload is required unless --journal is given",
            file=sys.stderr,
        )
        return 2
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    observability = Observability()
    prepared = prepare_run(
        workload,
        args.config,
        settings,
        engine=args.engine,
        observability=observability,
    )
    prepared.run()
    if args.chrome_trace is not None:
        observability.write_chrome_trace(args.chrome_trace)
        print(f"chrome trace: {args.chrome_trace}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(observability.to_json(), indent=2, sort_keys=True))
    elif args.format == "prometheus":
        print(observability.render_prometheus(), end="")
    else:
        _print_snapshot_table(
            observability.snapshot(),
            title=f"{workload.name} / {args.config} ({args.engine} engine)",
        )
    return 0


def _print_snapshot_table(snapshot: dict, title: str) -> None:
    """Text rendering shared by the live and sidecar modes of ``metrics``."""
    rows = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rows.append([name, "counter", value])
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        rows.append([name, "gauge", value])
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        rows.append([name, "histogram", f"n={data['count']} sum={data['sum']:.6f}"])
    if not rows:
        print(f"no metrics recorded ({title})")
        return
    print(render_table(["metric", "kind", "value"], rows, title=title))


def _cmd_audit(args) -> int:
    workload = get_workload(args.workload)
    settings = ExperimentSettings(trace_accesses=args.accesses, seed=args.seed)
    for config in args.configs:
        auditor = InvariantAuditor()
        try:
            result = run_workload_config(workload, config, settings, auditor=auditor)
        except InvariantViolation as violation:
            print(f"{config}: FAILED after {auditor.checks_run} checks")
            print(f"  {violation}")
            return 1
        print(
            f"{config}: ok — {auditor.checks_run} invariant checks over "
            f"{result.accesses} measured accesses"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Energy-Efficient Address Translation' (HPCA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    run_parser = sub.add_parser("run", help="simulate one workload")
    run_parser.add_argument("workload")
    run_parser.add_argument(
        "--configs", nargs="+", default=["THP"], type=_config_name
    )
    run_parser.add_argument("--accesses", type=int, default=200_000)
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument(
        "--audit", action="store_true", help="enable the runtime invariant auditor"
    )

    sweep_parser = sub.add_parser("sweep", help="all six paper configurations")
    sweep_parser.add_argument("workload")
    sweep_parser.add_argument("--accesses", type=int, default=200_000)
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument(
        "--journal",
        default=None,
        help="checkpoint journal path (enables resumable sweeps)",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help=f"resume from the journal (default path: {DEFAULT_JOURNAL})",
    )
    sweep_parser.add_argument(
        "--audit", action="store_true", help="enable the runtime invariant auditor"
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=1, help="retries per failing cell"
    )
    sweep_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per cell",
    )
    sweep_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="snapshot the in-flight cell every N interval boundaries "
        "(with --resume, restarts the interrupted cell mid-trace; "
        "requires --journal)",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-supervised worker count (default 1: serial, "
        "byte-identical journals; 0 falls back to the in-process path "
        "whose timeouts cannot reclaim CPU)",
    )
    sweep_parser.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        metavar="N",
        help="journal a cell as quarantined (and skip it on --resume) "
        "after its worker crashed N times",
    )
    sweep_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SIGKILL a worker whose per-boundary heartbeat goes silent "
        "this long (hang detection ahead of --cell-timeout)",
    )
    sweep_parser.add_argument(
        "--memory-limit-mb",
        type=int,
        default=None,
        metavar="MB",
        help="per-worker address-space budget; a breach becomes the "
        "structured 'oom' cell status instead of a crash",
    )
    sweep_parser.add_argument(
        "--chaos-kill-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="chaos mode: SIGKILL each first-attempt worker with this "
        "per-boundary probability (tests the supervisor itself)",
    )
    sweep_parser.add_argument(
        "--chaos-seed", type=int, default=0, help="seed for --chaos-kill-prob"
    )
    sweep_parser.add_argument(
        "--print-digest",
        action="store_true",
        help="print the journal's order-independent row digest "
        "(requires --journal)",
    )
    sweep_parser.add_argument(
        "--metrics",
        action="store_true",
        help="run every cell with the observability layer; aggregates "
        "land in a <journal>.metrics.json sidecar (the journal itself "
        "stays byte-identical) — inspect with 'python -m repro metrics "
        "--journal'",
    )

    bisect_parser = sub.add_parser(
        "bisect-divergence",
        help="find the first interval and component where two runs diverge",
    )
    bisect_parser.add_argument("workload")
    bisect_parser.add_argument("--config", type=_config_name, default="TLB_Lite")
    bisect_parser.add_argument("--accesses", type=int, default=50_000)
    bisect_parser.add_argument("--seed", type=int, default=42)
    bisect_parser.add_argument(
        "--digest-every",
        type=int,
        default=1,
        metavar="N",
        help="record state digests every N interval boundaries",
    )
    bisect_mode = bisect_parser.add_mutually_exclusive_group()
    bisect_mode.add_argument(
        "--seed-b",
        type=int,
        default=None,
        help="compare against a second run with this trace seed",
    )
    bisect_mode.add_argument(
        "--fault",
        choices=sorted(TRACE_FAULTS),
        default=None,
        help="compare against a run on a perturbed trace",
    )
    bisect_parser.add_argument(
        "--fault-seed", type=int, default=0, help="seed for --fault injection"
    )
    bisect_parser.add_argument(
        "--abort-after",
        type=int,
        default=5,
        metavar="K",
        help="default mode: kill the second run after K boundaries, then "
        "resume it from the snapshot (determinism check)",
    )

    describe_parser = sub.add_parser("describe", help="show a configuration")
    describe_parser.add_argument("config", type=_config_name)

    metrics_parser = sub.add_parser(
        "metrics", help="run one cell with telemetry on and print its metrics"
    )
    metrics_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload to simulate (omit with --journal)",
    )
    metrics_parser.add_argument("--config", type=_config_name, default="TLB_Lite")
    metrics_parser.add_argument("--accesses", type=int, default=50_000)
    metrics_parser.add_argument("--seed", type=int, default=42)
    metrics_parser.add_argument(
        "--engine",
        choices=("reference", "fast"),
        default="reference",
        help="drain engine (the fast engine adds fastpath.* counters)",
    )
    metrics_parser.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="text table, full JSON document, or Prometheus exposition",
    )
    metrics_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="print the aggregated totals from a 'sweep --metrics' "
        "journal's sidecar instead of running a simulation",
    )
    metrics_parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="also write the phase-span timeline as Chrome trace-event "
        "JSON (open in chrome://tracing or Perfetto)",
    )

    audit_parser = sub.add_parser(
        "audit", help="simulate with runtime invariant checking"
    )
    audit_parser.add_argument("workload")
    audit_parser.add_argument(
        "--configs", nargs="+", default=list(CONFIG_NAMES), type=_config_name
    )
    audit_parser.add_argument("--accesses", type=int, default=50_000)
    audit_parser.add_argument("--seed", type=int, default=42)

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential fuzzing with minimization and a corpus"
    )
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="generate random cases and run the oracle stack"
    )
    fuzz_run.add_argument("--cases", type=int, default=100, help="case budget")
    fuzz_run.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_run.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; generation stops when spent (CI mode)",
    )
    fuzz_run.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write one minimized reproducer per new failure bucket here",
    )
    fuzz_run.add_argument(
        "--no-minimize",
        action="store_true",
        help="report raw failing cases without delta-debugging them",
    )
    fuzz_run.add_argument(
        "--minimize-evaluations",
        type=int,
        default=160,
        metavar="N",
        help="oracle re-runs the minimizer may spend per failure",
    )

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-run corpus reproducers deterministically"
    )
    fuzz_replay.add_argument(
        "reproducers",
        nargs="*",
        help="specific reproducer files (default: every *.json in --corpus)",
    )
    fuzz_replay.add_argument(
        "--corpus", default="corpus", metavar="DIR", help="corpus directory"
    )

    fuzz_minimize = fuzz_sub.add_parser(
        "minimize", help="re-shrink one reproducer file"
    )
    fuzz_minimize.add_argument("reproducer", help="reproducer JSON file")
    fuzz_minimize.add_argument(
        "--out", default=None, help="write here instead of in place"
    )
    fuzz_minimize.add_argument(
        "--minimize-evaluations", type=int, default=160, metavar="N"
    )

    lint_parser = sub.add_parser(
        "lint", help="static-analysis pass enforcing simulator invariants"
    )
    add_lint_arguments(lint_parser)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "bisect-divergence": _cmd_bisect,
        "describe": _cmd_describe,
        "metrics": _cmd_metrics,
        "audit": _cmd_audit,
        "fuzz": _cmd_fuzz,
        "lint": run_lint,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"{type(error).__name__}: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
