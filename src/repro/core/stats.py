"""Simulation results: everything a paper experiment reads off one run."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.model import EnergyBreakdown
from ..energy.performance import CycleBreakdown, mpki
from ..tlb.base import TLBStats


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """One access the simulator survived in fault-tolerant mode."""

    index: int  # trace position of the faulting access
    vpn: int
    error: str  # exception class name
    message: str


@dataclass(frozen=True, slots=True)
class TimelineSample:
    """One Figure 4-style window: aggregate L1 MPKI over the window."""

    instructions: int  # cumulative instructions at the window end
    l1_mpki: float
    active_ways: dict[str, int] | None = None  # Lite configuration, if any


@dataclass(slots=True)
class SimulationResult:
    """Measured outcome of one (workload, configuration) simulation."""

    configuration: str
    workload: str
    accesses: int
    instructions: int
    l1_misses: int
    l2_misses: int
    page_walks: int
    page_walk_refs: int
    range_walk_refs: int
    energy: EnergyBreakdown
    cycles: CycleBreakdown
    structure_stats: dict[str, TLBStats]
    hit_attribution: dict[str, int]
    timeline: list[TimelineSample] = field(default_factory=list)
    lite_intervals: int = 0
    # Fault-tolerant mode: accesses that raised and were skipped (count
    # covers the whole trace incl. fast-forward; records are capped).
    faulted_accesses: int = 0
    fault_records: list[FaultRecord] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any access faulted — treat the numbers as flagged."""
        return self.faulted_accesses > 0

    # ------------------------------------------------------------------
    @property
    def l1_mpki(self) -> float:
        """Aggregate L1 TLB misses per thousand instructions."""
        return mpki(self.l1_misses, self.instructions)

    @property
    def l2_mpki(self) -> float:
        """L2 TLB misses (page walks) per thousand instructions."""
        return mpki(self.l2_misses, self.instructions)

    @property
    def total_energy_pj(self) -> float:
        """Total dynamic address-translation energy."""
        return self.energy.total_pj

    @property
    def energy_per_access_pj(self) -> float:
        """Average dynamic energy per memory operation."""
        return self.energy.total_pj / self.accesses if self.accesses else 0.0

    @property
    def miss_cycles(self) -> int:
        """Cycles spent in TLB misses (Table 3 model)."""
        return self.cycles.total_cycles

    # ------------------------------------------------------------------
    def way_lookup_shares(self, structure: str) -> dict[int, float]:
        """Fraction of lookups at each active-way count (Table 5 left).

        Returns an empty dict if the structure was never looked up.
        """
        stats = self.structure_stats[structure]
        total = sum(stats.lookups_by_ways.values())
        if total == 0:
            return {}
        return {
            ways: count / total
            for ways, count in sorted(stats.lookups_by_ways.items(), reverse=True)
        }

    def hit_shares(self) -> dict[str, float]:
        """Fraction of L1 hits served by each structure (Table 5 right)."""
        total = sum(self.hit_attribution.values())
        if total == 0:
            return {name: 0.0 for name in self.hit_attribution}
        return {
            name: count / total for name, count in self.hit_attribution.items()
        }

    def summary_line(self) -> str:
        """Compact one-line digest for logs and examples."""
        return (
            f"{self.configuration:>9s} | {self.workload:<12s} | "
            f"energy {self.energy_per_access_pj:7.3f} pJ/access | "
            f"L1 MPKI {self.l1_mpki:7.3f} | L2 MPKI {self.l2_mpki:7.3f} | "
            f"miss cycles {self.miss_cycles}"
        )
