"""Core: the Lite mechanism, TLB organizations, and the MMU simulator."""

from .counters import LRUDistanceCounters
from .hierarchy import (
    BaseHierarchy,
    ConfigurationError,
    L1Slot,
    MixedTLBHierarchy,
    TLBHierarchy,
)
from .lite import LiteController, LiteIntervalRecord, LiteStats, ResizableUnit
from .organizations import (
    CONFIG_NAMES,
    EXTENDED_CONFIG_NAMES,
    Organization,
    build_4kb,
    build_banked,
    build_fa_lite,
    build_l0_filter,
    build_organization,
    build_rmm,
    build_rmm_lite,
    build_rmm_pp_lite,
    build_semantic,
    build_thp,
    build_tlb_pred,
    build_tlb_lite,
    build_tlb_pp,
    paging_policy_for,
)
from .multiprocess import TimeSharingConfig, run_time_shared
from .params import (
    RMM_LITE_PARAMS,
    TLB_LITE_PARAMS,
    ConfigurationSummary,
    HierarchyParams,
    LiteParams,
    SetAssocParams,
    SimulationParams,
)
from .simulator import Simulator
from .stats import SimulationResult, TimelineSample

__all__ = [
    "LRUDistanceCounters",
    "LiteController",
    "LiteIntervalRecord",
    "LiteStats",
    "ResizableUnit",
    "TLBHierarchy",
    "MixedTLBHierarchy",
    "BaseHierarchy",
    "L1Slot",
    "ConfigurationError",
    "Organization",
    "CONFIG_NAMES",
    "EXTENDED_CONFIG_NAMES",
    "build_organization",
    "build_4kb",
    "build_banked",
    "build_thp",
    "build_tlb_lite",
    "build_rmm",
    "build_tlb_pp",
    "build_rmm_lite",
    "build_fa_lite",
    "build_l0_filter",
    "build_tlb_pred",
    "build_rmm_pp_lite",
    "build_semantic",
    "paging_policy_for",
    "HierarchyParams",
    "SetAssocParams",
    "LiteParams",
    "TLB_LITE_PARAMS",
    "RMM_LITE_PARAMS",
    "SimulationParams",
    "ConfigurationSummary",
    "Simulator",
    "TimeSharingConfig",
    "run_time_shared",
    "SimulationResult",
    "TimelineSample",
]
