"""Multi-programmed simulation: processes time-sharing one core's TLBs.

The paper evaluates one process per core; on a real system the per-core
TLB hierarchy is time-shared, and context switches either flush it (no
address-space tags) or let entries from different processes coexist
(PCID/ASID tagging).  This extension models both:

* every process gets a disjoint *virtual-page namespace* (its address
  space is placed at a distinct multi-terabyte offset).  Namespaced page
  numbers are exactly what an ASID-extended TLB tag is: entries from
  different processes can never alias, and one union page table / range
  table serves the walker the same translations each per-process table
  would;
* with ``pcid=True`` a context switch changes nothing architecturally —
  surviving entries keep hitting (tagged-TLB semantics);
* with ``pcid=False`` every switch flushes all TLBs and MMU caches,
  modelling untagged hardware.

The interesting interaction with the paper's designs: after a flush, an
RMM range TLB refills with *one* entry per VMA (a couple of background
range walks) while page TLBs must re-walk every hot page — range
translations make context switches far cheaper, amplifying RMM_Lite's
advantage as the switch rate grows (`bench_multiprocess.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..mem.physical import PhysicalMemory
from ..mem.process import Process
from ..workloads.base import Workload
from .organizations import Organization, build_organization, paging_policy_for
from .params import HierarchyParams, LiteParams
from .simulator import Simulator
from .stats import SimulationResult

#: Virtual-page-number stride between process namespaces (2^32 pages =
#: 16 TB of VA per process; the 48-bit x86-64 VA space fits 16 of them).
NAMESPACE_STRIDE = 1 << 32

#: Maximum co-scheduled processes (namespace capacity).
MAX_PROCESSES = 16


@dataclass(frozen=True)
class TimeSharingConfig:
    """Knobs of the multi-programmed run."""

    quantum_accesses: int = 20_000
    pcid: bool = True
    accesses_per_process: int = 100_000
    seed: int = 42
    physical_bytes: int = 64 << 30

    def __post_init__(self) -> None:
        if self.quantum_accesses <= 0:
            raise ConfigurationError("quantum_accesses must be positive")
        if self.accesses_per_process <= 0:
            raise ConfigurationError("accesses_per_process must be positive")


def build_system(
    workloads: list[Workload],
    config_name: str,
    sharing: TimeSharingConfig,
    hierarchy_params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
):
    """Build the shared organization, merged trace, and switch events.

    Returns ``(organization, trace, events, instructions_per_access)``.
    The union process holds every workload's mappings in its namespace;
    traces are interleaved round-robin at quantum granularity, and (for
    ``pcid=False``) a flush event is scheduled at every switch boundary.
    """
    if not 1 <= len(workloads) <= MAX_PROCESSES:
        raise ConfigurationError(f"need 1..{MAX_PROCESSES} workloads")
    policy = paging_policy_for(config_name)
    union = Process(
        physical=PhysicalMemory(sharing.physical_bytes, seed=sharing.seed),
        policy=policy,
    )
    traces = []
    for index, workload in enumerate(workloads):
        base_vpn = 0x10000 + index * NAMESPACE_STRIDE
        regions = workload.regions()
        # Recreate the workload's VMAs inside its namespace.
        for spec in workload.vma_specs:
            region = regions[spec.name]
            union.mmap(
                region.num_pages,
                name=f"p{index}:{spec.name}",
                at_vpn=base_vpn + region.start_vpn,
                thp_eligible=spec.thp_eligible,
            )
        trace = workload.trace(sharing.accesses_per_process, seed=sharing.seed + index)
        traces.append(trace.astype(np.int64) + base_vpn)

    merged = _interleave(traces, sharing.quantum_accesses)
    events = []
    if not sharing.pcid:
        switch_positions = range(
            sharing.quantum_accesses, len(merged), sharing.quantum_accesses
        )
        events = [
            (position, lambda org: org.hierarchy.flush_tlbs())
            for position in switch_positions
        ]
    organization = build_organization(
        config_name, union, params=hierarchy_params, lite_params=lite_params
    )
    ipa = sum(w.instructions_per_access for w in workloads) / len(workloads)
    return organization, merged, events, ipa


def _interleave(traces: list[np.ndarray], quantum: int) -> np.ndarray:
    """Round-robin the traces in quantum-sized slices."""
    chunks = []
    offsets = [0] * len(traces)
    remaining = sum(len(trace) for trace in traces)
    while remaining:
        for index, trace in enumerate(traces):
            start = offsets[index]
            if start >= len(trace):
                continue
            stop = min(start + quantum, len(trace))
            chunks.append(trace[start:stop])
            offsets[index] = stop
            remaining -= stop - start
    return np.concatenate(chunks)


def run_time_shared(
    workloads: list[Workload],
    config_name: str,
    sharing: TimeSharingConfig | None = None,
    hierarchy_params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
    fast_forward_fraction: float = 0.1,
) -> SimulationResult:
    """Simulate the time-shared system under one configuration."""
    sharing = sharing or TimeSharingConfig()
    if lite_params is None and config_name in (
        "TLB_Lite",
        "RMM_Lite",
        "FA_Lite",
        "RMM_PP_Lite",
    ):
        # Scale the Lite interval to the run length (~150 intervals), as
        # repro.analysis.experiments does for single-process runs.
        from .params import RMM_LITE_PARAMS, TLB_LITE_PARAMS

        base = (
            TLB_LITE_PARAMS
            if config_name in ("TLB_Lite", "FA_Lite")
            else RMM_LITE_PARAMS
        )
        approx_instructions = len(workloads) * sharing.accesses_per_process * 3
        lite_params = LiteParams(
            interval_instructions=max(10_000, approx_instructions // 150),
            threshold_mode=base.threshold_mode,
            epsilon_relative=base.epsilon_relative,
            epsilon_absolute=base.epsilon_absolute,
            reactivate_probability=base.reactivate_probability,
        )
    organization, trace, events, ipa = build_system(
        workloads, config_name, sharing, hierarchy_params, lite_params
    )
    simulator = Simulator(
        organization,
        workload_name="+".join(w.name for w in workloads),
        instructions_per_access=ipa,
    )
    fast_forward = int(len(trace) * fast_forward_fraction)
    return simulator.run(trace, fast_forward_accesses=fast_forward, events=events)
