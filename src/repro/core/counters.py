"""Lite's LRU-distance counters (paper Section 4.2.1, Figure 6).

For an n-way TLB, Lite keeps ``log2(n) + 1`` counters.  On each hit, the
counter selected by the hit's LRU *stack position* (recency rank, 0 = MRU)
is incremented; ranks are grouped in powers of two — {0}, {1}, {2-3},
{4-7}, … — so the counter index is simply ``rank.bit_length()``.

At the end of an interval, the number of misses that *would have occurred
with only w active ways* is the actual miss count plus every counter whose
rank group lies at or beyond w.  Under true-LRU replacement this
prediction is exact (the stack inclusion property): an access hits a
w-way set if and only if its rank in the full set is below w.

The counter list itself is a plain Python list handed to the TLB (its
``hit_rank_counters`` attribute) so the hot lookup path increments it
inline; this class wraps the list with the decision-side arithmetic.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..stateful import require


def _log2_exact(n: int) -> int:
    if n <= 0 or n & (n - 1):
        raise ConfigurationError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


class LRUDistanceCounters:
    """Utility counters for one TLB monitored by Lite."""

    def __init__(self, max_ways: int) -> None:
        self.max_ways = max_ways
        self.raw: list[int] = [0] * (_log2_exact(max_ways) + 1)

    def record(self, rank: int) -> None:
        """Count one hit at an LRU stack position (tests/manual feeding)."""
        if not 0 <= rank < self.max_ways:
            raise ConfigurationError(f"rank {rank} outside [0, {self.max_ways})")
        self.raw[rank.bit_length()] += 1

    def extra_misses(self, ways: int) -> int:
        """Hits that would have been misses with only ``ways`` active.

        Sums the counters for every rank group at or beyond ``ways``;
        those hits landed in stack positions a ``ways``-way set would not
        hold.
        """
        return sum(self.raw[_log2_exact(ways) + 1 :])

    @property
    def total_hits(self) -> int:
        """Total hits recorded this interval."""
        return sum(self.raw)

    def reset(self) -> None:
        """Zero the counters (start of a new interval)."""
        for index in range(len(self.raw)):
            self.raw[index] = 0

    def state_dict(self) -> list[int]:
        """Pure-JSON counter values (checkpoint protocol)."""
        return list(self.raw)

    def load_state_dict(self, state: list[int]) -> None:
        """Restore counters **in place**.

        The TLB's ``hit_rank_counters`` attribute aliases :attr:`raw`
        (same list object), so restoration must mutate the existing list
        rather than rebind it.
        """
        require(
            len(state) == len(self.raw),
            f"counter snapshot has {len(state)} groups, expected {len(self.raw)}",
        )
        self.raw[:] = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUDistanceCounters({self.raw})"
