"""The Lite mechanism: interval-based TLB way-disabling (paper Section 4.2).

Lite divides execution into fixed instruction-count intervals.  During an
interval it tracks (i) the actual number of L1 TLB misses (the aggregate
``actual-misses-counter``) and (ii) per-TLB LRU-distance counters
(:class:`repro.core.counters.LRUDistanceCounters`).  At each interval end
the decision algorithm (Figure 7) runs:

1. with probability p, re-enable *all* ways of *all* monitored TLBs —
   Lite cannot reason about inactive ways, so random full activation
   discovers upside and breaks pathological phase alignment;
2. otherwise, if this interval's actual MPKI degraded beyond the ε
   threshold relative to the previous interval, re-enable all ways
   (phase change / THP breakdown response);
3. otherwise, for each monitored TLB independently, choose the smallest
   power-of-two way count whose *predicted* MPKI — actual MPKI plus the
   misses the distance counters say the disabled ways would have added —
   stays within ε of the actual MPKI.

Disabling ways invalidates their entries (Section 4.2.3); re-enabled ways
come up empty.  A TLB is resized down to ``min_ways`` (1 in the paper) but
never fully disabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError, SimulationError, UsageError
from ..stateful import require, rng_state_from_json, rng_state_to_json
from .counters import LRUDistanceCounters
from .params import LiteParams


class ResizableUnit:
    """Adapter giving Lite one interface over its two TLB flavours.

    Set-associative TLBs resize by *ways* (``set_active_ways``); fully-
    associative ones (Section 4.4) resize by *entries*
    (``set_active_entries``).  Both expose power-of-two capacities.
    """

    def __init__(self, tlb) -> None:
        self.tlb = tlb
        if hasattr(tlb, "set_active_ways"):
            self.max_units = tlb.ways
            self._setter = tlb.set_active_ways
            self._getter = lambda: tlb.active_ways
        elif hasattr(tlb, "set_active_entries"):
            self.max_units = tlb.entries
            self._setter = tlb.set_active_entries
            self._getter = lambda: tlb.active_entries
        else:
            raise UsageError(f"{tlb!r} is not resizable")
        if self.max_units & (self.max_units - 1):
            raise ConfigurationError(
                f"{tlb.name}: capacity {self.max_units} not a power of two"
            )

    @property
    def name(self) -> str:
        return self.tlb.name

    @property
    def active_units(self) -> int:
        return self._getter()

    def resize(self, units: int) -> None:
        if units != self._getter():
            self._setter(units)


@dataclass(frozen=True, slots=True)
class LiteIntervalRecord:
    """One interval's outcome, for timelines and the sensitivity benches."""

    instructions_seen: int
    actual_mpki: float
    action: str  # 'decide', 'random-reactivate', 'degradation-reactivate'
    active_units: dict[str, int]


@dataclass(slots=True)
class LiteStats:
    """Aggregate counts of the controller's actions."""

    intervals: int = 0
    downsizes: int = 0
    random_reactivations: int = 0
    degradation_reactivations: int = 0

    def record_interval(self, action: str) -> None:
        """Count one finished interval by the action the controller took."""
        self.intervals += 1
        if action == "random-reactivate":
            self.random_reactivations += 1
        elif action == "degradation-reactivate":
            self.degradation_reactivations += 1

    def record_downsize(self) -> None:
        """Count one unit shrunk by the decision algorithm."""
        self.downsizes += 1

    def state_dict(self) -> dict:
        """Pure-JSON counters (checkpoint protocol)."""
        return {
            "intervals": self.intervals,
            "downsizes": self.downsizes,
            "random_reactivations": self.random_reactivations,
            "degradation_reactivations": self.degradation_reactivations,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters from :meth:`state_dict` output."""
        self.intervals = state["intervals"]
        self.downsizes = state["downsizes"]
        self.random_reactivations = state["random_reactivations"]
        self.degradation_reactivations = state["degradation_reactivations"]


class LiteController:
    """Drives Lite over a set of monitored L1-page TLBs.

    The caller (the simulator) invokes :meth:`end_interval` every
    ``params.interval_instructions`` instructions with the aggregate L1
    miss count of the interval just ended.
    """

    def __init__(self, tlbs: list, params: LiteParams, record_history: bool = False) -> None:
        self.params = params
        self.units = [ResizableUnit(tlb) for tlb in tlbs]
        self.counters: dict[str, LRUDistanceCounters] = {}
        for unit in self.units:
            counters = LRUDistanceCounters(unit.max_units)
            unit.tlb.hit_rank_counters = counters.raw
            self.counters[unit.name] = counters
        self._rng = random.Random(params.seed)
        self.previous_mpki: float | None = None
        self.stats = LiteStats()
        self.history: list[LiteIntervalRecord] | None = [] if record_history else None
        self._instructions_seen = 0

    # ------------------------------------------------------------------
    def end_interval(self, l1_misses: int, instructions: int) -> str:
        """Run the decision algorithm; returns the action taken."""
        if instructions <= 0:
            raise SimulationError("interval must cover at least one instruction")
        self._instructions_seen += instructions
        actual_mpki = l1_misses * 1000.0 / instructions
        params = self.params
        if self._rng.random() < params.reactivate_probability:
            action = "random-reactivate"
            self._activate_all()
        elif (
            self.previous_mpki is not None
            and actual_mpki > params.threshold(self.previous_mpki)
        ):
            action = "degradation-reactivate"
            self._activate_all()
        else:
            action = "decide"
            for unit in self.units:
                self._decide(unit, actual_mpki, instructions)
        self.stats.record_interval(action)
        self.previous_mpki = actual_mpki
        for counters in self.counters.values():
            counters.reset()
        if self.history is not None:
            self.history.append(
                LiteIntervalRecord(
                    instructions_seen=self._instructions_seen,
                    actual_mpki=actual_mpki,
                    action=action,
                    active_units={u.name: u.active_units for u in self.units},
                )
            )
        return action

    # ------------------------------------------------------------------
    def _activate_all(self) -> None:
        for unit in self.units:
            unit.resize(unit.max_units)

    def _decide(self, unit: ResizableUnit, actual_mpki: float, instructions: int) -> None:
        """Pick the smallest way count within ε of the actual MPKI.

        The predicted extra misses grow monotonically as ways shrink, so
        the scan halves the way count until the threshold is exceeded.
        """
        counters = self.counters[unit.name]
        threshold = self.params.threshold(actual_mpki)
        chosen = unit.active_units
        candidate = chosen // 2
        while candidate >= self.params.min_ways:
            predicted_mpki = (
                actual_mpki + counters.extra_misses(candidate) * 1000.0 / instructions
            )
            if predicted_mpki > threshold:
                break
            chosen = candidate
            candidate //= 2
        if chosen != unit.active_units:
            self.stats.record_downsize()
            unit.resize(chosen)

    # ------------------------------------------------------------------
    def active_configuration(self) -> dict[str, int]:
        """Current active units per monitored TLB."""
        return {unit.name: unit.active_units for unit in self.units}

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pure-JSON controller state.

        Active unit counts are *not* serialized here: they live in the
        monitored TLBs' own state dicts (restoring a TLB restores its
        ``active_ways``/``active_entries``), so the controller only owns
        the decision-side state — RNG stream, MPKI memory, distance
        counters, aggregate stats, and the optional history.
        """
        return {
            "rng": rng_state_to_json(self._rng.getstate()),
            "previous_mpki": self.previous_mpki,
            "instructions_seen": self._instructions_seen,
            "stats": self.stats.state_dict(),
            "counters": {
                name: counters.state_dict()
                for name, counters in sorted(self.counters.items())
            },
            "history": None
            if self.history is None
            else [
                {
                    "instructions_seen": record.instructions_seen,
                    "actual_mpki": record.actual_mpki,
                    "action": record.action,
                    "active_units": dict(sorted(record.active_units.items())),
                }
                for record in self.history
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore controller state onto a canonically built controller."""
        require(
            sorted(state["counters"]) == sorted(self.counters),
            "Lite snapshot monitors different TLBs than this controller: "
            f"{sorted(state['counters'])} vs {sorted(self.counters)}",
        )
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self.previous_mpki = state["previous_mpki"]
        self._instructions_seen = state["instructions_seen"]
        self.stats.load_state_dict(state["stats"])
        for name, values in state["counters"].items():
            self.counters[name].load_state_dict(values)
        if state["history"] is None:
            self.history = None
        else:
            self.history = [
                LiteIntervalRecord(
                    instructions_seen=record["instructions_seen"],
                    actual_mpki=record["actual_mpki"],
                    action=record["action"],
                    active_units=dict(record["active_units"]),
                )
                for record in state["history"]
            ]
