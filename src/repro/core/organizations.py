"""Builders for the paper's six simulated configurations (Section 5, Fig. 9).

==========  =====================================  ==========================
Name        TLB organization                       OS paging policy
==========  =====================================  ==========================
4KB         L1-4KB ∥ (L1-2MB, L1-1GB: off), L2     demand 4 KB paging
THP         + L1-2MB enabled                       transparent huge pages
TLB_Lite    THP + Lite on the L1-page TLBs         transparent huge pages
RMM         THP + 32-entry L2-range TLB            eager paging (THP layout)
TLB_PP      single mixed L1/L2, perfect predictor  transparent huge pages
RMM_Lite    L1-4KB (Lite) ∥ 4-entry L1-range,      eager paging (4 KB layout)
            L2-4KB ∥ L2-range
==========  =====================================  ==========================

Each builder wires the hierarchy to a populated :class:`repro.mem.Process`
and produces the energy bindings that map every structure's per-way access
histogram onto Table 2 parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.cacti import (
    MMU_CACHE_PDE,
    EnergyParams,
    fully_assoc_params,
    mixed_fa_tlb_params,
    page_tlb_params,
)
from ..energy.model import EnergyBinding
from ..errors import ConfigurationError, UnknownConfigError
from ..mem.paging import DemandPaging, EagerPaging, PagingPolicy, TransparentHugePaging
from ..mem.process import Process
from ..mmu.mmu_cache import MMUCache
from ..mmu.translation import PageSize
from ..mmu.walker import PageWalker
from ..tlb.banked import BankedSetAssociativeTLB
from ..tlb.fully_assoc import FullyAssociativeTLB
from ..tlb.mixed_fa import MixedFullyAssociativeTLB
from ..tlb.range_tlb import RangeTLB
from ..tlb.semantic import SemanticPartitionedTLB, classify_by_vma
from ..tlb.set_assoc import SetAssociativeTLB
from .hierarchy import (
    BaseHierarchy,
    FullyAssociativeL1Hierarchy,
    L0FilterHierarchy,
    L1Slot,
    MixedTLBHierarchy,
    PredictedMixedHierarchy,
    TLBHierarchy,
)
from .lite import LiteController
from .params import (
    RMM_LITE_PARAMS,
    TLB_LITE_PARAMS,
    ConfigurationSummary,
    HierarchyParams,
    LiteParams,
)

#: Canonical configuration order used throughout figures and tables.
CONFIG_NAMES = ("4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite")

#: Extensions beyond the paper's six evaluated configurations:
#: FA_Lite — the Section 4.4 SPARC/AMD-style fully-associative L1 with
#: Lite capacity-resizing; RMM_PP_Lite — the Section 6.1 "orthogonal,
#: combined" design (TLB_PP for pages + L1-range TLB for ranges + Lite).
#: L0_Filter / L0_Lite — the Section 7 related-work baseline (a tiny L0
#: TLB filtering the L1 probes), alone and combined with Lite.
#: TLB_Pred — TLB_PP with a *realistic* (fallible, direct-mapped
#: last-size) predictor, quantifying the cost TLB_PP's idealisation hides.
#: Banked — the Section 7 banked-TLB baseline (probe one bank per access).
EXTENDED_CONFIG_NAMES = CONFIG_NAMES + (
    "FA_Lite",
    "RMM_PP_Lite",
    "L0_Filter",
    "L0_Lite",
    "TLB_Pred",
    "Banked",
    "Semantic",
)


@dataclass(slots=True)
class Organization:
    """A fully wired configuration ready to simulate."""

    name: str
    hierarchy: BaseHierarchy
    bindings: list[EnergyBinding]
    lite: LiteController | None
    summary: ConfigurationSummary


# ----------------------------------------------------------------------
# Energy-binding helpers
# ----------------------------------------------------------------------
def _sa_binding(tlb: SetAssociativeTLB, component: str) -> EnergyBinding:
    """Set-associative TLB: way-disabling keeps sets constant (Table 2)."""
    sets = tlb.num_sets
    return EnergyBinding(
        tlb.name, component, tlb.stats, lambda ways: page_tlb_params(sets * ways, ways)
    )


def _fa_binding(tlb: FullyAssociativeTLB, component: str) -> EnergyBinding:
    return EnergyBinding(
        tlb.name, component, tlb.stats, lambda units: fully_assoc_params(units)
    )


def _range_binding(tlb: RangeTLB, component: str) -> EnergyBinding:
    return EnergyBinding(
        tlb.name,
        component,
        tlb.stats,
        lambda units: fully_assoc_params(units, range_tags=True),
    )


def _constant_binding(structure, component: str, params: EnergyParams) -> EnergyBinding:
    return EnergyBinding(structure.name, component, structure.stats, lambda _units: params)


def _mmu_cache_bindings(mmu_cache: MMUCache) -> list[EnergyBinding]:
    return [
        _constant_binding(mmu_cache.pde, "mmu_cache", MMU_CACHE_PDE),
        _fa_binding(mmu_cache.pdpte, "mmu_cache"),
        _fa_binding(mmu_cache.pml4, "mmu_cache"),
    ]


# ----------------------------------------------------------------------
# Structure factories
# ----------------------------------------------------------------------
def _paged_l1_slots(params: HierarchyParams) -> list[L1Slot]:
    """The Figure 1 baseline: separate L1 TLBs for 4 KB / 2 MB / 1 GB."""
    return [
        L1Slot(
            SetAssociativeTLB("L1-4KB", params.l1_4kb.entries, params.l1_4kb.ways),
            PageSize.SIZE_4KB,
        ),
        L1Slot(
            SetAssociativeTLB("L1-2MB", params.l1_2mb.entries, params.l1_2mb.ways),
            PageSize.SIZE_2MB,
        ),
        L1Slot(
            FullyAssociativeTLB("L1-1GB", params.l1_1gb_entries),
            PageSize.SIZE_1GB,
        ),
    ]


def _l2_page_tlb(params: HierarchyParams) -> SetAssociativeTLB:
    return SetAssociativeTLB("L2-4KB", params.l2_page.entries, params.l2_page.ways)


def _paged_bindings(hierarchy: TLBHierarchy) -> list[EnergyBinding]:
    bindings: list[EnergyBinding] = []
    for slot in hierarchy.l1_slots:
        if isinstance(slot.tlb, SetAssociativeTLB):
            bindings.append(_sa_binding(slot.tlb, "l1_page_tlbs"))
        else:
            bindings.append(_fa_binding(slot.tlb, "l1_page_tlbs"))
    bindings.append(_sa_binding(hierarchy.l2_page, "l2_page_tlb"))
    if hierarchy.l1_range is not None:
        bindings.append(_range_binding(hierarchy.l1_range, "l1_range_tlb"))
    if hierarchy.l2_range is not None:
        bindings.append(_range_binding(hierarchy.l2_range, "l2_range_tlb"))
    bindings.extend(_mmu_cache_bindings(hierarchy.walker.mmu_cache))
    return bindings


# ----------------------------------------------------------------------
# Configuration builders
# ----------------------------------------------------------------------
def build_4kb(process: Process, params: HierarchyParams | None = None) -> Organization:
    """Baseline: 4 KB pages only; huge-page L1 TLBs never enable."""
    params = params or HierarchyParams()
    hierarchy = TLBHierarchy(
        _paged_l1_slots(params), _l2_page_tlb(params), PageWalker(process.page_table)
    )
    summary = ConfigurationSummary(
        "4KB",
        ("4KB",),
        (
            f"L1-4KB {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
        notes="huge-page L1 TLBs statically disabled",
    )
    return Organization("4KB", hierarchy, _paged_bindings(hierarchy), None, summary)


def build_thp(process: Process, params: HierarchyParams | None = None) -> Organization:
    """Transparent huge pages: the state of the practice (Section 5)."""
    params = params or HierarchyParams()
    hierarchy = TLBHierarchy(
        _paged_l1_slots(params), _l2_page_tlb(params), PageWalker(process.page_table)
    )
    summary = ConfigurationSummary(
        "THP",
        ("4KB", "2MB"),
        (
            f"L1-4KB {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L1-2MB {params.l1_2mb.entries}e/{params.l1_2mb.ways}w",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
    )
    return Organization("THP", hierarchy, _paged_bindings(hierarchy), None, summary)


def _lite_controller(
    hierarchy: TLBHierarchy, lite_params: LiteParams, record_history: bool
) -> LiteController:
    """Attach Lite to every resizable L1-page TLB.

    The paper resizes "all L1-page TLBs (4KB, 2MB, and 1GB)"; the 4-entry
    fully-associative L1-1GB TLB is resized by capacity in powers of two
    (Section 4.4 semantics).  For workloads that never touch 1 GB pages
    the structure is statically disabled anyway, so monitoring it is
    free.
    """
    monitored = [slot.tlb for slot in hierarchy.l1_slots]
    return LiteController(monitored, lite_params, record_history=record_history)


def build_tlb_lite(
    process: Process,
    params: HierarchyParams | None = None,
    lite_params: LiteParams = TLB_LITE_PARAMS,
    record_history: bool = False,
) -> Organization:
    """TLB_Lite: THP hierarchy + the Lite way-disabling mechanism."""
    organization = build_thp(process, params)
    lite = _lite_controller(organization.hierarchy, lite_params, record_history)
    summary = ConfigurationSummary(
        "TLB_Lite",
        organization.summary.page_sizes,
        organization.summary.structures,
        lite=(
            f"interval {lite_params.interval_instructions} instr, "
            f"ε {lite_params.threshold_mode}"
        ),
    )
    return Organization(
        "TLB_Lite", organization.hierarchy, organization.bindings, lite, summary
    )


def build_rmm(process: Process, params: HierarchyParams | None = None) -> Organization:
    """RMM: THP hierarchy + 32-entry fully-associative L2-range TLB."""
    params = params or HierarchyParams()
    if len(process.range_table) == 0:
        raise ConfigurationError("RMM needs an eager-paged process (empty range table)")
    hierarchy = TLBHierarchy(
        _paged_l1_slots(params),
        _l2_page_tlb(params),
        PageWalker(process.page_table),
        l2_range=RangeTLB("L2-range", params.l2_range_entries),
        range_table=process.range_table,
    )
    summary = ConfigurationSummary(
        "RMM",
        ("4KB", "2MB", "range"),
        (
            f"L1-4KB {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L1-2MB {params.l1_2mb.entries}e/{params.l1_2mb.ways}w",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
            f"L2-range {params.l2_range_entries}e fully assoc",
        ),
        notes="perfect eager paging",
    )
    return Organization("RMM", hierarchy, _paged_bindings(hierarchy), None, summary)


def build_tlb_pp(process: Process, params: HierarchyParams | None = None) -> Organization:
    """TLB_PP: perfect TLB_Pred — mixed-size L1/L2, free perfect predictor.

    The mixed L1 keeps the L1-4KB geometry (64 entries, 4-way) and is
    charged L1-4KB energy per lookup; the perfect predictor itself costs
    nothing.  As the paper notes, this under-reports TLB_Pred's true cost
    by design ("unrealizable in practice").
    """
    params = params or HierarchyParams()
    huge_chunks = set()
    for translation in process.page_table.iter_translations():
        if translation.page_size is PageSize.SIZE_1GB:
            raise ConfigurationError("TLB_PP models 4KB and 2MB pages only")
        if translation.page_size is PageSize.SIZE_2MB:
            huge_chunks.add(translation.vpn >> 9)
    l1_mixed = SetAssociativeTLB("L1-mixed", params.l1_4kb.entries, params.l1_4kb.ways)
    l2_mixed = SetAssociativeTLB("L2-mixed", params.l2_page.entries, params.l2_page.ways)
    hierarchy = MixedTLBHierarchy(
        l1_mixed, l2_mixed, PageWalker(process.page_table), frozenset(huge_chunks)
    )
    bindings = [
        _sa_binding(l1_mixed, "l1_page_tlbs"),
        _sa_binding(l2_mixed, "l2_page_tlb"),
        *_mmu_cache_bindings(hierarchy.walker.mmu_cache),
    ]
    summary = ConfigurationSummary(
        "TLB_PP",
        ("4KB", "2MB"),
        (
            f"L1-mixed {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L2-mixed {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
        notes="perfect, zero-energy page-size predictor",
    )
    return Organization("TLB_PP", hierarchy, bindings, None, summary)


def build_rmm_lite(
    process: Process,
    params: HierarchyParams | None = None,
    lite_params: LiteParams = RMM_LITE_PARAMS,
    record_history: bool = False,
) -> Organization:
    """RMM_Lite: 4 KB pages + ranges at both levels, Lite on the L1-4KB.

    The huge-page L1 TLBs are replaced by the L1-range TLB (Section 4.3),
    so the process must be eager-paged with a 4 KB redundant layout.
    """
    params = params or HierarchyParams()
    if len(process.range_table) == 0:
        raise ConfigurationError("RMM_Lite needs an eager-paged process (empty range table)")
    l1_4kb = SetAssociativeTLB("L1-4KB", params.l1_4kb.entries, params.l1_4kb.ways)
    hierarchy = TLBHierarchy(
        [L1Slot(l1_4kb, PageSize.SIZE_4KB)],
        _l2_page_tlb(params),
        PageWalker(process.page_table),
        l1_range=RangeTLB("L1-range", params.l1_range_entries),
        l2_range=RangeTLB("L2-range", params.l2_range_entries),
        range_table=process.range_table,
    )
    lite = LiteController([l1_4kb], lite_params, record_history=record_history)
    summary = ConfigurationSummary(
        "RMM_Lite",
        ("4KB", "range"),
        (
            f"L1-4KB {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L1-range {params.l1_range_entries}e fully assoc",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
            f"L2-range {params.l2_range_entries}e fully assoc",
        ),
        lite=f"absolute ε {lite_params.epsilon_absolute} MPKI",
        notes="perfect eager paging; L1 huge-page TLBs replaced by L1-range",
    )
    return Organization(
        "RMM_Lite", hierarchy, _paged_bindings(hierarchy), lite, summary
    )


def build_fa_lite(
    process: Process,
    params: HierarchyParams | None = None,
    lite_params: LiteParams = TLB_LITE_PARAMS,
    fa_entries: int = 64,
    record_history: bool = False,
) -> Organization:
    """FA_Lite: single fully-associative mixed L1 TLB + Lite (Section 4.4).

    The SPARC/AMD-style organization: one masked-CAM L1 holds 4 KB and
    2 MB translations together, so each access probes a single structure;
    Lite resizes its capacity in powers of two.
    """
    params = params or HierarchyParams()
    l1_fa = MixedFullyAssociativeTLB("L1-FA", fa_entries)
    hierarchy = FullyAssociativeL1Hierarchy(
        l1_fa, _l2_page_tlb(params), PageWalker(process.page_table)
    )
    bindings = [
        EnergyBinding(
            l1_fa.name, "l1_page_tlbs", l1_fa.stats, lambda units: mixed_fa_tlb_params(units)
        ),
        _sa_binding(hierarchy.l2_page, "l2_page_tlb"),
        *_mmu_cache_bindings(hierarchy.walker.mmu_cache),
    ]
    lite = LiteController([l1_fa], lite_params, record_history=record_history)
    summary = ConfigurationSummary(
        "FA_Lite",
        ("4KB", "2MB"),
        (
            f"L1-FA {fa_entries}e fully assoc (all page sizes)",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
        lite="capacity resizing in powers of two (Section 4.4)",
    )
    return Organization("FA_Lite", hierarchy, bindings, lite, summary)


def build_rmm_pp_lite(
    process: Process,
    params: HierarchyParams | None = None,
    lite_params: LiteParams = RMM_LITE_PARAMS,
    record_history: bool = False,
) -> Organization:
    """RMM_PP_Lite: the combined design the paper proposes (Section 6.1).

    "RMM_Lite and TLB_PP are orthogonal; a combined approach could use
    the L1-range TLB for range translations, the TLB_PP for pages, and
    the Lite mechanism to disable ways opportunistically."
    """
    params = params or HierarchyParams()
    if len(process.range_table) == 0:
        raise ConfigurationError("RMM_PP_Lite needs an eager-paged process")
    huge_chunks = set()
    for translation in process.page_table.iter_translations():
        if translation.page_size is PageSize.SIZE_2MB:
            huge_chunks.add(translation.vpn >> 9)
    l1_mixed = SetAssociativeTLB("L1-mixed", params.l1_4kb.entries, params.l1_4kb.ways)
    l2_mixed = SetAssociativeTLB("L2-mixed", params.l2_page.entries, params.l2_page.ways)
    hierarchy = MixedTLBHierarchy(
        l1_mixed,
        l2_mixed,
        PageWalker(process.page_table),
        frozenset(huge_chunks),
        l1_range=RangeTLB("L1-range", params.l1_range_entries),
        l2_range=RangeTLB("L2-range", params.l2_range_entries),
        range_table=process.range_table,
    )
    lite = LiteController([l1_mixed], lite_params, record_history=record_history)
    bindings = [
        _sa_binding(l1_mixed, "l1_page_tlbs"),
        _sa_binding(l2_mixed, "l2_page_tlb"),
        _range_binding(hierarchy.l1_range, "l1_range_tlb"),
        _range_binding(hierarchy.l2_range, "l2_range_tlb"),
        *_mmu_cache_bindings(hierarchy.walker.mmu_cache),
    ]
    summary = ConfigurationSummary(
        "RMM_PP_Lite",
        ("4KB", "2MB", "range"),
        (
            f"L1-mixed {params.l1_4kb.entries}e/{params.l1_4kb.ways}w (perfect predictor)",
            f"L1-range {params.l1_range_entries}e fully assoc",
            f"L2-mixed {params.l2_page.entries}e/{params.l2_page.ways}w",
            f"L2-range {params.l2_range_entries}e fully assoc",
        ),
        lite=f"absolute ε {lite_params.epsilon_absolute} MPKI",
        notes="combined TLB_PP + RMM_Lite (paper Section 6.1 future work)",
    )
    return Organization("RMM_PP_Lite", hierarchy, bindings, lite, summary)


def build_l0_filter(
    process: Process,
    params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
    l0_entries: int = 8,
    record_history: bool = False,
) -> Organization:
    """L0_Filter / L0_Lite: TLB filtering (paper Section 7 related work).

    A small fully-associative mixed-size L0 TLB is probed before the L1
    TLBs; only L0 misses pay the parallel L1 probe energy.  With
    ``lite_params`` the Lite mechanism additionally resizes the L1-page
    TLBs behind the filter — the combination the paper argues is possible
    because the approaches are orthogonal.
    """
    params = params or HierarchyParams()
    l0 = MixedFullyAssociativeTLB("L0-filter", l0_entries)
    hierarchy = L0FilterHierarchy(
        _paged_l1_slots(params),
        _l2_page_tlb(params),
        PageWalker(process.page_table),
        l0=l0,
    )
    bindings = _paged_bindings(hierarchy)
    bindings.insert(
        0,
        EnergyBinding(
            l0.name, "l1_page_tlbs", l0.stats, lambda units: mixed_fa_tlb_params(units)
        ),
    )
    lite = None
    name = "L0_Filter"
    if lite_params is not None:
        lite = _lite_controller(hierarchy, lite_params, record_history)
        name = "L0_Lite"
    summary = ConfigurationSummary(
        name,
        ("4KB", "2MB"),
        (
            f"L0-filter {l0_entries}e fully assoc (all page sizes)",
            f"L1-4KB {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L1-2MB {params.l1_2mb.entries}e/{params.l1_2mb.ways}w",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
        lite=None if lite is None else "on the L1-page TLBs behind the filter",
        notes="TLB filtering baseline (Xue et al. / filtering line of work)",
    )
    return Organization(name, hierarchy, bindings, lite, summary)


def build_tlb_pred(
    process: Process,
    params: HierarchyParams | None = None,
    predictor_entries: int = 512,
) -> Organization:
    """TLB_Pred with a realistic predictor (paper Section 6.1 caveat).

    Same mixed L1/L2 geometry as TLB_PP, but the page-size predictor is a
    direct-mapped last-size table: mispredictions cost a second L1 probe
    (energy) and a retry (timing, counted as an L1 miss).
    """
    params = params or HierarchyParams()
    huge_chunks = set()
    for translation in process.page_table.iter_translations():
        if translation.page_size is PageSize.SIZE_1GB:
            raise ConfigurationError("TLB_Pred models 4KB and 2MB pages only")
        if translation.page_size is PageSize.SIZE_2MB:
            huge_chunks.add(translation.vpn >> 9)
    l1_mixed = SetAssociativeTLB("L1-mixed", params.l1_4kb.entries, params.l1_4kb.ways)
    l2_mixed = SetAssociativeTLB("L2-mixed", params.l2_page.entries, params.l2_page.ways)
    hierarchy = PredictedMixedHierarchy(
        l1_mixed,
        l2_mixed,
        PageWalker(process.page_table),
        frozenset(huge_chunks),
        predictor_entries=predictor_entries,
    )
    bindings = [
        _sa_binding(l1_mixed, "l1_page_tlbs"),
        _sa_binding(l2_mixed, "l2_page_tlb"),
        *_mmu_cache_bindings(hierarchy.walker.mmu_cache),
    ]
    summary = ConfigurationSummary(
        "TLB_Pred",
        ("4KB", "2MB"),
        (
            f"L1-mixed {params.l1_4kb.entries}e/{params.l1_4kb.ways}w",
            f"L2-mixed {params.l2_page.entries}e/{params.l2_page.ways}w",
            f"size predictor {predictor_entries}e direct-mapped",
        ),
        notes="realistic (fallible) page-size predictor",
    )
    return Organization("TLB_Pred", hierarchy, bindings, None, summary)


def build_banked(
    process: Process,
    params: HierarchyParams | None = None,
    banks: int = 4,
) -> Organization:
    """Banked baseline (paper Section 7): probe one L1-4KB bank per access.

    The L1-4KB TLB is split into ``banks`` independently probed banks;
    each lookup pays the read energy of the bank-sized structure (a
    quarter of the TLB for 4 banks) at the cost of bank-conflict
    pressure.  The other structures match the THP configuration.
    """
    params = params or HierarchyParams()
    banked = BankedSetAssociativeTLB(
        "L1-4KB", params.l1_4kb.entries, params.l1_4kb.ways, banks
    )
    slots = [
        L1Slot(banked, PageSize.SIZE_4KB),
        L1Slot(
            SetAssociativeTLB("L1-2MB", params.l1_2mb.entries, params.l1_2mb.ways),
            PageSize.SIZE_2MB,
        ),
        L1Slot(FullyAssociativeTLB("L1-1GB", params.l1_1gb_entries), PageSize.SIZE_1GB),
    ]
    hierarchy = TLBHierarchy(slots, _l2_page_tlb(params), PageWalker(process.page_table))
    bank_sets = banked.bank_entries // params.l1_4kb.ways
    bindings = [
        EnergyBinding(
            banked.name,
            "l1_page_tlbs",
            banked.stats,
            lambda ways: page_tlb_params(bank_sets * ways, ways),
        ),
        _sa_binding(slots[1].tlb, "l1_page_tlbs"),
        _fa_binding(slots[2].tlb, "l1_page_tlbs"),
        _sa_binding(hierarchy.l2_page, "l2_page_tlb"),
        *_mmu_cache_bindings(hierarchy.walker.mmu_cache),
    ]
    summary = ConfigurationSummary(
        "Banked",
        ("4KB", "2MB"),
        (
            f"L1-4KB {params.l1_4kb.entries}e/{params.l1_4kb.ways}w in {banks} banks "
            f"({banked.bank_entries}e probed per access)",
            f"L1-2MB {params.l1_2mb.entries}e/{params.l1_2mb.ways}w",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
        notes="banked-TLB baseline (Section 7 related work)",
    )
    return Organization("Banked", hierarchy, bindings, None, summary)


def build_semantic(
    process: Process,
    params: HierarchyParams | None = None,
) -> Organization:
    """Semantic baseline (paper Section 7): partitioned L1-4KB TLB.

    Lee/Ballapuram-style: the 64-entry L1-4KB TLB splits into a 16-entry
    stack partition, a 16-entry globals partition, and a 32-entry heap
    partition; each access probes only its semantic partition (the class
    is known from the region, no prediction needed).  Other structures
    match THP.
    """
    params = params or HierarchyParams()
    partitions = [
        SetAssociativeTLB("L1-4KB-stack", 16, params.l1_4kb.ways),
        SetAssociativeTLB("L1-4KB-globals", 16, params.l1_4kb.ways),
        SetAssociativeTLB("L1-4KB-heap", 32, params.l1_4kb.ways),
    ]
    partitioned = SemanticPartitionedTLB(
        "L1-4KB", partitions, classify_by_vma(process.address_space)
    )
    slots = [
        L1Slot(partitioned, PageSize.SIZE_4KB),
        L1Slot(
            SetAssociativeTLB("L1-2MB", params.l1_2mb.entries, params.l1_2mb.ways),
            PageSize.SIZE_2MB,
        ),
        L1Slot(FullyAssociativeTLB("L1-1GB", params.l1_1gb_entries), PageSize.SIZE_1GB),
    ]
    hierarchy = TLBHierarchy(slots, _l2_page_tlb(params), PageWalker(process.page_table))
    bindings = [
        _sa_binding(partition, "l1_page_tlbs") for partition in partitions
    ] + [
        _sa_binding(slots[1].tlb, "l1_page_tlbs"),
        _fa_binding(slots[2].tlb, "l1_page_tlbs"),
        _sa_binding(hierarchy.l2_page, "l2_page_tlb"),
        *_mmu_cache_bindings(hierarchy.walker.mmu_cache),
    ]
    summary = ConfigurationSummary(
        "Semantic",
        ("4KB", "2MB"),
        (
            "L1-4KB partitioned: stack 16e + globals 16e + heap 32e "
            f"({params.l1_4kb.ways}-way each, one partition probed per access)",
            f"L1-2MB {params.l1_2mb.entries}e/{params.l1_2mb.ways}w",
            f"L2-4KB {params.l2_page.entries}e/{params.l2_page.ways}w",
        ),
        notes="semantic-region partitioning baseline (Section 7 related work)",
    )
    return Organization("Semantic", hierarchy, bindings, None, summary)


# ----------------------------------------------------------------------
# Dispatch table: builder + the OS paging policy each configuration assumes
# ----------------------------------------------------------------------
def paging_policy_for(config_name: str, thp_coverage: float = 1.0) -> PagingPolicy:
    """The OS allocation policy a configuration assumes (Section 5)."""
    if config_name == "4KB":
        return DemandPaging()
    if config_name in ("THP", "TLB_Lite", "TLB_PP"):
        return TransparentHugePaging(coverage=thp_coverage)
    if config_name == "RMM":
        return EagerPaging(page_layout="thp")
    if config_name == "RMM_Lite":
        return EagerPaging(page_layout="4kb")
    if config_name == "FA_Lite":
        return TransparentHugePaging(coverage=thp_coverage)
    if config_name == "RMM_PP_Lite":
        return EagerPaging(page_layout="thp")
    if config_name in ("L0_Filter", "L0_Lite", "TLB_Pred", "Banked", "Semantic"):
        return TransparentHugePaging(coverage=thp_coverage)
    raise UnknownConfigError(config_name, EXTENDED_CONFIG_NAMES)


def build_organization(
    config_name: str,
    process: Process,
    params: HierarchyParams | None = None,
    lite_params: LiteParams | None = None,
    record_history: bool = False,
) -> Organization:
    """Build any named configuration against a populated process."""
    if config_name == "4KB":
        return build_4kb(process, params)
    if config_name == "THP":
        return build_thp(process, params)
    if config_name == "TLB_Lite":
        return build_tlb_lite(
            process, params, lite_params or TLB_LITE_PARAMS, record_history
        )
    if config_name == "RMM":
        return build_rmm(process, params)
    if config_name == "TLB_PP":
        return build_tlb_pp(process, params)
    if config_name == "RMM_Lite":
        return build_rmm_lite(
            process, params, lite_params or RMM_LITE_PARAMS, record_history
        )
    if config_name == "FA_Lite":
        return build_fa_lite(
            process, params, lite_params or TLB_LITE_PARAMS, record_history=record_history
        )
    if config_name == "RMM_PP_Lite":
        return build_rmm_pp_lite(
            process, params, lite_params or RMM_LITE_PARAMS, record_history
        )
    if config_name == "L0_Filter":
        return build_l0_filter(process, params, None, record_history=record_history)
    if config_name == "L0_Lite":
        return build_l0_filter(
            process, params, lite_params or TLB_LITE_PARAMS, record_history=record_history
        )
    if config_name == "TLB_Pred":
        return build_tlb_pred(process, params)
    if config_name == "Banked":
        return build_banked(process, params)
    if config_name == "Semantic":
        return build_semantic(process, params)
    raise UnknownConfigError(config_name, EXTENDED_CONFIG_NAMES)
