"""Trace-driven MMU simulator (the paper's Pin-based infrastructure).

Feeds a virtual-page reference stream through an
:class:`repro.core.organizations.Organization`, handling:

* **fast-forward** — a warm-up prefix that exercises the hierarchy (and
  Lite) but is excluded from all measurements, mirroring the paper's
  50 G-instruction fast-forward;
* **Lite intervals** — the controller's ``end_interval`` fires every
  ``interval_instructions`` (converted to accesses via the workload's
  instructions-per-memory-operation ratio);
* **timeline sampling** — windowed aggregate L1 MPKI for Figure 4-style
  plots, annotated with Lite's active configuration.

Instruction counts derive from the access count times the workload's
``instructions_per_access`` ratio — the reference streams carry no
instruction semantics, only their density relative to memory operations.
"""

from __future__ import annotations

from time import perf_counter

from ..energy.model import EnergyModel
from ..energy.performance import miss_cycles
from ..errors import CheckpointError, SimulationError
from ..mmu.page_table import PageFault
from ..observability import Observability, SimulatorInstrumentation
from .fastpath import ENGINES, FastEngine
from .hierarchy import ConfigurationError
from .organizations import Organization
from .params import SimulationParams
from .stats import FaultRecord, SimulationResult, TimelineSample

#: Exceptions a fault-tolerant run survives per access (``on_fault="record"``).
#: Everything else (programming errors, resource exhaustion) still raises.
FAULT_EXCEPTIONS = (PageFault, ConfigurationError, ValueError, KeyError,
                    IndexError, OverflowError)


class Simulator:
    """Runs reference traces through one configuration.

    ``on_fault`` selects the hot-loop flavour: ``"raise"`` (default) keeps
    the zero-overhead loop and propagates any per-access exception;
    ``"record"`` survives :data:`FAULT_EXCEPTIONS` raised by an access
    (out-of-range or negative VPNs, adversarial events that desync the
    hierarchy), skipping the access and flagging the result via
    ``faulted_accesses``/``fault_records``.

    ``auditor`` optionally enables sanitizer-style invariant checking (see
    :class:`repro.resilience.auditor.InvariantAuditor`): the accounting
    identities are verified at every timeline-sample boundary and once
    more on the finished result.

    ``engine`` selects the drain-loop implementation: ``"reference"``
    (default) iterates the trace through ``hierarchy.access``;
    ``"fast"`` uses the streak-coalescing engine
    (:mod:`repro.core.fastpath`), which produces byte-identical results
    and state digests at every boundary.  Fault-tolerant runs
    (``on_fault="record"``) always use the reference loop — per-access
    fault attribution is incompatible with coalescing.

    ``observability`` optionally attaches a telemetry hub
    (:class:`repro.observability.Observability`).  The hub is resolved
    at construction: a ``None`` or *disabled* hub stores as ``None`` and
    the run takes the bare code path — zero hot-loop overhead, no probe
    statements in the fastpath codegen.  An enabled hub collects
    boundary-granular counters, phase spans, and fast-engine probe
    counts without perturbing any result or state digest (the inertness
    guarantee proven by ``tests/test_observability.py``).
    """

    def __init__(
        self,
        organization: Organization,
        workload_name: str = "workload",
        instructions_per_access: float = 3.0,
        sim_params: SimulationParams | None = None,
        energy_model: EnergyModel | None = None,
        on_fault: str = "raise",
        auditor=None,
        max_fault_records: int = 256,
        engine: str = "reference",
        observability: Observability | None = None,
    ) -> None:
        if instructions_per_access <= 0:
            raise SimulationError("instructions_per_access must be positive")
        if on_fault not in ("raise", "record"):
            raise SimulationError(
                f"on_fault must be 'raise' or 'record', got {on_fault!r}"
            )
        if engine not in ENGINES:
            raise SimulationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        self.organization = organization
        self.workload_name = workload_name
        self.instructions_per_access = instructions_per_access
        self.sim_params = sim_params or SimulationParams()
        self.energy_model = energy_model or EnergyModel(
            walk_l1_hit_ratio=self.sim_params.walk_l1_hit_ratio
        )
        self.on_fault = on_fault
        self.auditor = auditor
        self.max_fault_records = max_fault_records
        self.engine = engine
        self.observability = Observability.resolve(observability)

    # ------------------------------------------------------------------
    def run(
        self,
        trace,
        fast_forward_accesses: int | None = None,
        events: list[tuple[int, object]] | None = None,
        checkpoint_hook=None,
        resume_state: dict | None = None,
    ) -> SimulationResult:
        """Simulate a trace; returns measurements for the post-warmup part.

        ``trace`` is any sequence of 4 KB virtual page numbers (a numpy
        integer array or a list).  ``fast_forward_accesses`` overrides the
        default warm-up fraction.

        ``events`` schedules OS-level actions mid-run: a list of
        ``(access_index, callable)`` pairs, fired once the simulation
        reaches that trace position (e.g. huge-page breakdown under
        memory pressure, or a context-switch TLB flush).  The callable
        receives the organization.

        ``checkpoint_hook``, when given, is called at every *boundary* —
        each point where the drain loop stops (Lite interval end,
        timeline sample, event position, phase edge) — with a pure-JSON
        dict of the loop's own state (position, schedules, accumulated
        timeline/fault records).  :mod:`repro.resilience.checkpoint`
        builds snapshot writers and digest recorders on top of it.

        ``resume_state`` is such a dict: the loop fast-forwards its
        bookkeeping to the recorded position and continues from there.
        The *component* state (hierarchy, Lite, process) must already
        have been restored by the caller — the loop state only carries
        what the loop itself owns.  Events already fired before the
        snapshot are not re-fired.
        """
        # Numpy traces stay arrays: the reference loop materializes only
        # one boundary-to-boundary segment at a time, and the fast engine
        # run-length-encodes the array directly.
        vpns = trace if hasattr(trace, "tolist") else list(trace)
        total = len(vpns)
        if total == 0:
            raise SimulationError("empty trace")
        if fast_forward_accesses is None:
            fast_forward_accesses = int(total * self.sim_params.fast_forward_fraction)
        if not 0 <= fast_forward_accesses < total:
            raise SimulationError("fast-forward must leave accesses to measure")

        hierarchy = self.organization.hierarchy
        lite = self.organization.lite
        access = hierarchy.access
        ipa = self.instructions_per_access
        interval_accesses = (
            max(1, round(lite.params.interval_instructions / ipa)) if lite else None
        )
        interval_instructions = (
            round(interval_accesses * ipa) if interval_accesses else 0
        )

        pending_events = sorted(events or [], key=lambda event: event[0])
        event_index = 0

        def fire_events(position: int) -> None:
            nonlocal event_index
            while (
                event_index < len(pending_events)
                and pending_events[event_index][0] <= position
            ):
                pending_events[event_index][1](self.organization)
                event_index += 1

        def next_event_position() -> int:
            if event_index < len(pending_events):
                return max(pending_events[event_index][0], 1)
            return total + 1

        measured = total - fast_forward_accesses
        window = max(1, measured // self.sim_params.timeline_windows)
        window_instructions = max(1, round(window * ipa))

        # ----- loop state (everything the loop itself owns) -------------
        phase = "fast-forward"
        pos = 0
        boundary = 0
        next_interval = interval_accesses if lite else total + 1
        last_interval_misses = 0
        next_sample = -1
        last_sample_misses = 0
        lite_intervals_before = lite.stats.intervals if lite else 0
        faults: list[FaultRecord] = []
        faulted = 0
        timeline: list[TimelineSample] = []

        if resume_state is not None:
            if (
                resume_state["total"] != total
                or resume_state["fast_forward_accesses"] != fast_forward_accesses
            ):
                raise CheckpointError(
                    "resume state was taken on a different trace: "
                    f"total/ff {resume_state['total']}/"
                    f"{resume_state['fast_forward_accesses']} vs "
                    f"{total}/{fast_forward_accesses}"
                )
            phase = resume_state["phase"]
            pos = resume_state["pos"]
            boundary = resume_state["boundary"]
            event_index = resume_state["event_index"]
            next_interval = resume_state["next_interval"]
            last_interval_misses = resume_state["last_interval_misses"]
            next_sample = resume_state["next_sample"]
            last_sample_misses = resume_state["last_sample_misses"]
            lite_intervals_before = resume_state["lite_intervals_before"]
            faulted = resume_state["faulted"]
            faults = [
                FaultRecord(index, vpn, error, message)
                for index, vpn, error, message in resume_state["faults"]
            ]
            timeline = [
                TimelineSample(instructions, l1_mpki, active_ways)
                for instructions, l1_mpki, active_ways in resume_state["timeline"]
            ]

        def loop_state(phase_name: str) -> dict:
            return {
                "phase": phase_name,
                "pos": pos,
                "total": total,
                "fast_forward_accesses": fast_forward_accesses,
                "boundary": boundary,
                "event_index": event_index,
                "next_interval": next_interval,
                "last_interval_misses": last_interval_misses,
                "next_sample": next_sample,
                "last_sample_misses": last_sample_misses,
                "lite_intervals_before": lite_intervals_before,
                "faulted": faulted,
                "faults": [
                    [record.index, record.vpn, record.error, record.message]
                    for record in faults
                ],
                "timeline": [
                    [sample.instructions, sample.l1_mpki, sample.active_ways]
                    for sample in timeline
                ],
            }

        # ----- hot loop: fast engine, plain, or per-access tolerant -----
        tolerant = self.on_fault == "record"

        # A disabled hub resolved to None at construction, so ``inst is
        # None`` *is* the bare path — no telemetry object exists at all.
        inst = None
        if self.observability is not None:
            inst = SimulatorInstrumentation(
                self.observability,
                workload=self.workload_name,
                configuration=self.organization.name,
                engine=self.engine,
                total=total,
                fast_engine=self.engine == "fast" and not tolerant,
            )

        if self.engine == "fast" and not tolerant:
            engine_probe = inst.probe if inst is not None else None
            drain = FastEngine(hierarchy, vpns, probe=engine_probe).drain
        else:

            def drain(start: int, stop: int) -> None:
                nonlocal faulted
                segment = vpns[start:stop]
                if hasattr(segment, "tolist"):
                    segment = segment.tolist()
                if not tolerant:
                    for vpn in segment:
                        access(vpn)
                    return
                i = 0
                count = stop - start
                while i < count:
                    try:
                        while i < count:
                            access(segment[i])
                            i += 1
                    except FAULT_EXCEPTIONS as exc:
                        if len(faults) < self.max_fault_records:
                            faults.append(
                                FaultRecord(
                                    start + i,
                                    int(segment[i]),
                                    type(exc).__name__,
                                    str(exc),
                                )
                            )
                        faulted += 1
                        i += 1

        # ----- fast-forward (warm structures, Lite live, stats discarded)
        if phase == "fast-forward":
            if inst is not None:
                inst.begin_phase("fast-forward")
            if resume_state is None:
                fire_events(0)
            while pos < fast_forward_accesses:
                stop = min(fast_forward_accesses, next_interval, next_event_position())
                if inst is None:
                    drain(pos, stop)
                else:
                    drain_started = perf_counter()
                    drain(pos, stop)
                    inst.boundary(stop - pos, perf_counter() - drain_started)
                pos = stop
                fire_events(pos)
                if lite is not None and pos == next_interval:
                    misses = hierarchy.l1_misses
                    if inst is None:
                        lite.end_interval(
                            misses - last_interval_misses, interval_instructions
                        )
                    else:
                        inst.lite_interval(
                            lite, misses - last_interval_misses, interval_instructions
                        )
                    last_interval_misses = misses
                    next_interval += interval_accesses
                boundary += 1
                if checkpoint_hook is not None:
                    checkpoint_hook(loop_state("fast-forward"))
            hierarchy.reset_measurement()
            last_interval_misses = 0
            lite_intervals_before = lite.stats.intervals if lite else 0
            if lite is not None:
                next_interval = pos + interval_accesses
            next_sample = pos + window
            last_sample_misses = 0
            phase = "measured"

        # ----- measured run with timeline sampling ----------------------
        if inst is not None:
            inst.begin_phase("measured")
        while pos < total:
            stop = min(total, next_interval, next_sample, next_event_position())
            if inst is None:
                drain(pos, stop)
            else:
                drain_started = perf_counter()
                drain(pos, stop)
                inst.boundary(stop - pos, perf_counter() - drain_started)
            pos = stop
            fire_events(pos)
            if lite is not None and pos == next_interval:
                misses = hierarchy.l1_misses
                if inst is None:
                    lite.end_interval(
                        misses - last_interval_misses, interval_instructions
                    )
                else:
                    inst.lite_interval(
                        lite, misses - last_interval_misses, interval_instructions
                    )
                last_interval_misses = misses
                next_interval += interval_accesses
            if pos == next_sample:
                misses = hierarchy.l1_misses
                delta = misses - last_sample_misses
                timeline.append(
                    TimelineSample(
                        instructions=round((pos - fast_forward_accesses) * ipa),
                        l1_mpki=delta * 1000.0 / window_instructions,
                        active_ways=lite.active_configuration() if lite else None,
                    )
                )
                last_sample_misses = misses
                next_sample += window
                if inst is not None:
                    inst.sample()
                if self.auditor is not None:
                    self.auditor.audit_hierarchy(hierarchy, lite, faulted)
            boundary += 1
            if checkpoint_hook is not None:
                checkpoint_hook(loop_state("measured"))

        # ----- collect results ------------------------------------------
        hierarchy.sync_stats()
        instructions = round(measured * ipa)
        energy = self.energy_model.compute(
            self.organization.bindings,
            page_walk_refs=hierarchy.walker.stats.memory_refs,
            range_walk_refs=hierarchy.range_walk_refs,
        )
        result = SimulationResult(
            configuration=self.organization.name,
            workload=self.workload_name,
            accesses=measured,
            instructions=instructions,
            l1_misses=hierarchy.l1_misses,
            l2_misses=hierarchy.l2_misses,
            page_walks=hierarchy.walker.stats.walks,
            page_walk_refs=hierarchy.walker.stats.memory_refs,
            range_walk_refs=hierarchy.range_walk_refs,
            energy=energy,
            cycles=miss_cycles(hierarchy.l1_misses, hierarchy.l2_misses, instructions),
            structure_stats={
                structure.name: structure.stats.snapshot()
                for structure in hierarchy.all_structures()
            },
            hit_attribution=hierarchy.hit_attribution(),
            timeline=timeline,
            lite_intervals=(lite.stats.intervals - lite_intervals_before) if lite else 0,
            faulted_accesses=faulted,
            fault_records=faults,
        )
        if self.auditor is not None:
            self.auditor.audit_hierarchy(hierarchy, lite, faulted)
            self.auditor.audit_result(
                result, self.organization, self.energy_model
            )
        if inst is not None:
            inst.finish(result, events_fired=event_index)
        return result
