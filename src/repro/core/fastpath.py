"""Streak-coalescing fast-path drain engine (``Simulator(engine="fast")``).

The reference drain loop pays the full Python interpretation cost of
:meth:`repro.core.hierarchy.TLBHierarchy.access` for every reference.
Real reference streams, and the synthetic streams our workload models
produce, are dominated by *streaks*: consecutive accesses to the same
page (the ``burst`` parameter of :mod:`repro.workloads.patterns` is the
page-level image of cache-line streaming).  This engine exploits two
facts about such streams:

1. **Run-length coalescing.**  After the first access of a run, the
   referenced entry sits at the MRU position of every structure that
   holds it (every hitting structure performs its own LRU promotion, and
   a missing structure fills at MRU).  Each of the remaining ``n - 1``
   repeats is therefore a rank-0 hit whose only effect is counter
   arithmetic: per-structure pending hits, attribution, Lite's rank-0
   distance counter, and the aggregate access count.  The engine
   run-length-encodes the trace up front (numpy, vectorised) and replays
   a whole run as one MRU probe plus O(1) counter bumps.

2. **Shape-specialized code generation.**  The per-access pipeline is
   compiled (``exec``) into a drain function specialized to the
   hierarchy's current :meth:`~repro.core.hierarchy.TLBHierarchy.
   drain_shape`: the probe loop over L1 slots is unrolled with each
   slot's ``shift``/set mask baked in as constants, set lists and Lite
   counter lists are hoisted into locals, the L2 probe and L1-4KB fill
   are inlined, and pending counters accumulate in local integers that
   are flushed into the structures' ``_pending_*`` fields when the drain
   returns.  The generated loop breaks whenever an access changes the
   drain shape (a walk enabling a new L1 slot, a fill latching a range
   TLB) and the engine re-specializes.

Legality rules (what makes the transformation exact):

* nothing inside a drain segment reads the pending counters, so local
  accumulation + flush commutes with the reference interleaving;
* streaks never cross a segment boundary — the simulator's drain loop
  splits at every Lite interval end, timeline sample, scheduled event,
  and checkpoint boundary, and this engine additionally splits runs that
  straddle a boundary, replaying the partial run through the reference
  ``access`` path — so ``checkpoint_hook`` observes byte-identical
  pending counts and digests at every boundary;
* a repeat access can only be a rank-0 hit (see above); the generated
  repeat handler still carries a fallback that reverts its local deltas
  and replays the run through the reference path, so a structure
  violating the MRU argument degrades to slow-but-exact;
* hierarchies the generator does not recognize (mixed/predicted/banked
  L1s, Lite monitoring on the L2, fully-associative L1 slots) fall back
  to replaying the raw trace slice through the reference ``access``
  method — same results, reference speed.

Equivalence is proven, not argued: the differential harness
(``tests/test_fastpath.py``, ``scripts/perf_smoke.py``) runs every
configuration under both engines and compares byte-identical
``SimulationResult``s and per-component state digests at every boundary,
with :mod:`repro.resilience.bisect` pinpointing the first divergence on
mismatch.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..mmu.translation import PageSize, Translation
from ..tlb.set_assoc import SetAssociativeTLB
from ..workloads.tracefile import as_vpn_array
from .hierarchy import TLBHierarchy

__all__ = ["ENGINES", "FastEngine", "encode_trace"]

#: Engine names accepted by :class:`repro.core.simulator.Simulator`.
ENGINES = ("reference", "fast")


# ----------------------------------------------------------------------
# Trace preprocessing
# ----------------------------------------------------------------------
def encode_trace(trace) -> tuple[list[int], np.ndarray]:
    """Run-length encode a trace into ``(tokens, cum)``.

    ``tokens`` interleaves page numbers with repeat sentinels: a run of
    ``n >= 2`` equal pages becomes the page number followed by
    ``-(n - 1)`` (page numbers are non-negative, so sign separates the
    two).  ``cum`` has ``len(tokens) + 1`` entries; ``cum[j]`` is the
    number of *accesses* covered by ``tokens[:j]``, which maps access
    positions (the simulator's boundary arithmetic) onto token positions
    via ``searchsorted``.
    """
    pages = as_vpn_array(trace)
    count = len(pages)
    if count == 0:
        return [], np.zeros(1, dtype=np.int64)
    run_start = np.empty(count, dtype=bool)
    run_start[0] = True
    np.not_equal(pages[1:], pages[:-1], out=run_start[1:])
    starts = np.flatnonzero(run_start)
    ends = np.empty(len(starts), dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[-1] = count
    interleaved = np.empty(len(starts) * 2, dtype=np.int64)
    interleaved[0::2] = pages[starts]
    interleaved[1::2] = 1 - (ends - starts)  # -(run length - 1); 0 for singletons
    keep = interleaved != 0
    keep[0::2] = True
    tokens = interleaved[keep]
    cum = np.empty(len(tokens) + 1, dtype=np.int64)
    cum[0] = 0
    np.cumsum(np.maximum(-tokens, 1), out=cum[1:])
    return tokens.tolist(), cum


# ----------------------------------------------------------------------
# The shared miss tail (identical to TLBHierarchy.access's walk path)
# ----------------------------------------------------------------------
def _walk_tail(h: TLBHierarchy, vpn: int) -> None:
    """Full-L2-miss tail of the reference access path, outlined.

    Must mirror the tail of :meth:`TLBHierarchy.access` exactly: the
    walk, slot enabling, L1/L2 fills, and the background range-table
    walk.  The generated drain calls it once per full L2 miss and then
    checks ``drain_shape`` for a required re-specialization.
    """
    h.l2_misses += 1
    result = h.walker.walk(vpn)
    translation = result.translation
    slot = h._slot_by_size.get(translation.page_size)
    if slot is None:
        raise ConfigurationError(
            f"walk returned a {translation.page_size.label()} page but the "
            "hierarchy has no L1 TLB for that size"
        )
    if not slot.enabled:
        slot.enabled = True
        h._active_slots.append(slot)
    slot.tlb.fill(vpn >> slot.shift, translation)
    if translation.page_size is PageSize.SIZE_4KB:
        h.l2_page.fill(vpn, translation)
    range_table = h.range_table
    if range_table is not None:
        h.range_walk_refs += range_table.walk_memory_refs()
        range_entry = range_table.lookup(vpn)
        if range_entry is not None and h.l2_range is not None:
            h.l2_range.fill(range_entry)
            h._l2_range_active = h.l2_range


# ----------------------------------------------------------------------
# Shape-specialized code generation
# ----------------------------------------------------------------------
def _generate_drain(h, probe=None):
    """Compile a drain function specialized to ``h``'s current shape.

    Returns ``None`` when the hierarchy is not a plain
    :class:`TLBHierarchy` with set-associative page TLBs (and no Lite
    monitoring on the L2) — the engine then falls back to the reference
    ``access`` path for that shape.

    The generated function has signature ``drain(tokens, cum, start,
    stop)`` over *token* positions, returns the token position where it
    stopped (``stop``, or earlier after a shape change), and flushes its
    locally accumulated counts into the live structures before
    returning.

    ``probe`` (a :class:`repro.observability.FastPathProbe`) is the
    telemetry hook: when present, per-*segment* probe-bump statements
    are appended to the flush section.  When absent — the default, and
    always the case with telemetry disabled — those statements are never
    emitted, so the generated source is byte-identical to an
    uninstrumented build (assert ``"probe" not in
    drain.__repro_source__``).
    """
    if type(h) is not TLBHierarchy:
        return None
    if type(h.l2_page) is not SetAssociativeTLB or h.l2_page.hit_rank_counters is not None:
        return None
    if type(h._slot_4kb.tlb) is not SetAssociativeTLB:
        return None
    slots = tuple(h._active_slots)
    for slot in slots:
        if type(slot.tlb) is not SetAssociativeTLB:
            return None

    namespace = {
        "h": h,
        "walk_tail": _walk_tail,
        "slow": h.access,
        "Translation": Translation,
        "S4K": PageSize.SIZE_4KB,
        "t2": h.l2_page,
    }
    header, body, rbody, flush = [], [], [], []
    nslots = len(slots)
    last = nslots - 1
    has_range = h._l1_range_active is not None
    has_l2r = h._l2_range_active is not None
    l1r_exists = h.l1_range is not None
    shape = (nslots, has_range, has_l2r)
    slot4 = h._slot_4kb
    slot4_index = None
    for si, slot in enumerate(slots):
        namespace[f"slot{si}"] = slot
        namespace[f"t{si}"] = slot.tlb
        if slot is slot4:
            slot4_index = si
        header.append(f"sets{si} = t{si}._sets; mask{si} = t{si}._set_mask")
        if slot.tlb.hit_rank_counters is not None:
            header.append(f"c{si} = t{si}.hit_rank_counters")
    # The L1-4KB TLB is the fill target of the L2-hit path even before
    # its slot first hits; bind it whether or not it is an active slot.
    namespace["t4"] = slot4.tlb
    if slot4_index is None:
        header.append("sets4 = t4._sets; mask4 = t4._set_mask; aw4 = t4.active_ways")
        fill4 = ("sets4", "mask4", "aw4", "pf4")
    else:
        header.append(f"aw{slot4_index} = t{slot4_index}.active_ways")
        fill4 = (
            f"sets{slot4_index}",
            f"mask{slot4_index}",
            f"aw{slot4_index}",
            f"pf{slot4_index}",
        )
    header.append("sets2 = t2._sets; mask2 = t2._set_mask")
    range_counters = False
    if has_range:
        namespace["r"] = h._l1_range_active
        header.append("rstack = r._stack")
        if h._l1_range_active.hit_rank_counters is not None:
            range_counters = True
            header.append("rc = r.hit_rank_counters")
    if has_l2r:
        namespace["l2r"] = h._l2_range_active

    # ---- repeat-sentinel handler (token < 0: n more hits on pv) -------
    # Every structure that holds pv has it at rank 0 (see module doc), so
    # a repeat is pure counter arithmetic.  The trailing else reverts the
    # optimistic deltas and replays through the reference path.
    rbody.append("n = -vpn")
    rbody.append("hit = -1")
    for si, slot in enumerate(slots):
        shift = slot.shift
        key = "pv" if not shift else "k"
        if shift:
            rbody.append(f"k = pv >> {shift}")
        rbody.append(f"e = sets{si}[{key} & mask{si}]")
        rbody.append(f"if e and e[0][0] == {key}:")
        rbody.append(f"    ph{si} += n")
        if slot.tlb.hit_rank_counters is not None:
            rbody.append(f"    c{si}[0] += n")
        rbody.append(f"    hit = {si}")
        rbody.append("else:")
        rbody.append(f"    pm{si} += n")
    if has_range:
        rbody.append("if rstack:")
        rbody.append("    r0 = rstack[0]")
        rbody.append("    if r0.base_vpn <= pv < r0.limit_vpn:")
        rbody.append("        rph += n; rattr += n")
        rbody.append("        hit = -1")
        if range_counters:
            rbody.append("        rc[0] += n")
        rbody.append("        continue")
        rbody.append("rpm += n")
    for si in range(nslots):
        cond = "if" if si == 0 else "elif"
        rbody.append(f"{cond} hit == {si}:")
        rbody.append(f"    at{si} += n")
        rbody.append("    hit = -1")
    rbody.append("else:")
    for si, slot in enumerate(slots):
        shift = slot.shift
        key = "pv" if not shift else f"(pv >> {shift})"
        rbody.append(f"    e = sets{si}[{key} & mask{si}]")
        rbody.append(f"    if e and e[0][0] == {key}: ph{si} -= n")
        rbody.append(f"    else: pm{si} -= n")
    if has_range:
        rbody.append("    rpm -= n")
    rbody.append("    undone += n")
    rbody.append("    for _ in range(n): slow(pv)")
    rbody.append(f"    if h.drain_shape() != {shape!r}: break")
    rbody.append("continue")

    # ---- per-access pipeline ------------------------------------------
    for si, slot in enumerate(slots):
        shift = slot.shift
        counters = slot.tlb.hit_rank_counters is not None
        key = "vpn" if not shift else "k"
        if shift:
            body.append(f"k = vpn >> {shift}")
        body.append(f"e = sets{si}[{key} & mask{si}]")
        body.append(f"if e and e[0][0] == {key}:")
        body.append(f"    ph{si} += 1")
        if counters:
            body.append(f"    c{si}[0] += 1")
        if si == last and not has_range:
            # Attribution shortcut: with no live range TLB, a last-slot
            # hit is always the attributed hit; the flush adds ph{last}
            # to attributed_hits instead of bumping per access.
            if nslots > 1:
                body.append("    hit = -1")
            body.append("    continue")
        else:
            body.append(f"    hit = {si}")
        body.append("elif e:")
        body.append("    rank = 1; ln = len(e)")
        body.append("    while rank < ln:")
        body.append("        p = e[rank]")
        body.append(f"        if p[0] == {key}:")
        body.append(f"            ph{si} += 1")
        if counters:
            body.append(f"            c{si}[rank.bit_length()] += 1")
        body.append("            del e[rank]; e.insert(0, p)")
        body.append(f"            hit = {si}")
        body.append("            break")
        body.append("        rank += 1")
        body.append("    else:")
        body.append(f"        pm{si} += 1")
        if si == last and not has_range:
            body.append("    if rank < ln:")
            body.append("        hit = -1")
            body.append("        continue")
        body.append("else:")
        body.append(f"    pm{si} += 1")
    if has_range:
        body.append("if rstack:")
        body.append("    r0 = rstack[0]")
        body.append("    if r0.base_vpn <= vpn < r0.limit_vpn:")
        body.append("        rph += 1; rattr += 1")
        if range_counters:
            body.append("        rc[0] += 1")
        body.append("        hit = -1")
        body.append("        continue")
        body.append("    rank = 1; ln = len(rstack); rhit = None")
        body.append("    while rank < ln:")
        body.append("        rng = rstack[rank]")
        body.append("        if rng.base_vpn <= vpn < rng.limit_vpn:")
        body.append("            rhit = rng; break")
        body.append("        rank += 1")
        body.append("    if rhit is not None:")
        body.append("        rph += 1; rattr += 1")
        if range_counters:
            body.append("        rc[rank.bit_length()] += 1")
        body.append("        del rstack[rank]; rstack.insert(0, rhit)")
        body.append("        hit = -1")
        body.append("        continue")
        body.append("    rpm += 1")
        body.append("else:")
        body.append("    rpm += 1")
    if nslots > 1 or has_range:
        body.append("if hit >= 0:")
        attributed = range(nslots) if has_range else range(nslots - 1)
        for si in attributed:
            cond = "if" if si == 0 else "elif"
            body.append(f"    {cond} hit == {si}: at{si} += 1")
        if not has_range:
            body.append(f"    else: at{last} += 1")
        body.append("    hit = -1")
        body.append("    continue")
    # --- L1 miss: inlined parallel L2 probe ----------------------------
    body.append("l1m += 1")
    body.append("e = sets2[vpn & mask2]")
    body.append("pe = None")
    body.append("rank = 0; ln = len(e)")
    body.append("while rank < ln:")
    body.append("    p = e[rank]")
    body.append("    if p[0] == vpn:")
    body.append("        p2h += 1")
    body.append("        if rank:")
    body.append("            del e[rank]; e.insert(0, p)")
    body.append("        pe = p[1]")
    body.append("        break")
    body.append("    rank += 1")
    body.append("else:")
    body.append("    p2m += 1")
    if has_l2r:
        body.append("re_ = l2r.lookup(vpn)")
        if l1r_exists and has_range:
            body.append("if re_ is not None:")
            body.append("    r.fill(re_)")
        elif l1r_exists:
            # First L2-range hit latches the L1-range TLB: shape change.
            body.append("if re_ is not None:")
            body.append("    h.l1_range.fill(re_)")
            body.append("    h._l1_range_active = h.l1_range")
            body.append("    shape_dirty = 1")
    else:
        body.append("re_ = None")
    body.append("if pe is not None:")
    body.append(f"    {fill4[3]} += 1")
    body.append(f"    ef = {fill4[0]}[vpn & {fill4[1]}]")
    body.append("    ef.insert(0, [vpn, pe])")
    body.append(f"    if len(ef) > {fill4[2]}: ef.pop()")
    body.append("elif re_ is not None:")
    body.append(f"    {fill4[3]} += 1")
    body.append(f"    ef = {fill4[0]}[vpn & {fill4[1]}]")
    body.append("    ef.insert(0, [vpn, Translation(vpn, vpn + re_.offset, S4K)])")
    body.append(f"    if len(ef) > {fill4[2]}: ef.pop()")
    body.append("if pe is not None or re_ is not None:")
    body.append("    if shape_dirty: break")
    body.append("    continue")
    # --- full L2 miss: shared walk tail --------------------------------
    body.append("walk_tail(h, vpn)")
    body.append(f"if h.drain_shape() != {shape!r}:")
    body.append("    break")

    # ---- flush locally accumulated counts -----------------------------
    for si in range(nslots):
        flush.append(
            f"    t{si}._pending_hits += ph{si}; t{si}._pending_misses += pm{si}; "
            f"t{si}._pending_fills += pf{si}"
        )
        if si == last and not has_range:
            flush.append(f"    slot{si}.attributed_hits += ph{si}")
        else:
            flush.append(f"    slot{si}.attributed_hits += at{si}")
    if slot4_index is None:
        flush.append("    t4._pending_fills += pf4")
    flush.append("    t2._pending_hits += p2h; t2._pending_misses += p2m")
    if has_range:
        flush.append("    r._pending_hits += rph; r._pending_misses += rpm")
        flush.append("    h.range_attributed_hits += rattr")
    # int(): cum is an int64 array; a leaked np.int64 would poison the
    # pure-JSON state digests.
    flush.append("    h.accesses += int(cum[i] - cum[start]) - undone")
    flush.append("    h.l1_misses += l1m")
    if probe is not None:
        # Telemetry, compiled in only on request: one segment-granular
        # bump per generated-drain return, never per access.
        namespace["probe"] = probe
        flush.append("    probe.coalesced_accesses += int(cum[i] - cum[start]) - undone")
        flush.append("    probe.replayed_accesses += undone")
        flush.append("    probe.drained_segments += 1")

    init = (
        "; ".join(f"ph{si} = pm{si} = at{si} = pf{si} = 0" for si in range(nslots))
        or "pass"
    )
    lines = ["def drain(tokens, cum, start, stop):"]
    lines += ["    " + text for text in header]
    lines.append(f"    {init}")
    lines.append(
        "    rph = rpm = rattr = p2h = p2m = l1m = pf4 = undone = 0"
        "; hit = -1; shape_dirty = 0"
    )
    lines.append("    pv = tokens[start - 1] if start else -1")
    # Recover the stop position from the iterator's length hint instead
    # of carrying an index through the hot loop.
    lines.append("    it = iter(tokens[start:stop])")
    lines.append("    hint = it.__length_hint__")
    lines.append("    for vpn in it:")
    lines.append("        if vpn < 0:")
    lines += ["            " + text for text in rbody]
    lines.append("        pv = vpn")
    lines += ["        " + text for text in body]
    lines.append("    i = stop - hint()")
    lines += flush
    lines.append("    return i")
    source = "\n".join(lines)
    exec(source, namespace)
    drain = namespace["drain"]
    drain.__repro_source__ = source
    return drain


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class FastEngine:
    """Per-run drain engine: owns the encoded trace and its position.

    ``drain(start, stop)`` consumes access positions ``[start, stop)``
    exactly like the reference drain loop; the simulator calls it
    between consecutive boundaries.  Generated drains are cached by the
    identity of the objects they specialize against (active slots, their
    TLBs, the L2, the latched range TLBs), so boundary-heavy runs (Lite
    intervals, dense checkpointing) regenerate nothing.
    """

    __slots__ = ("_hierarchy", "_vpns", "_tokens", "_cum", "_tok", "_pos",
                 "_rep", "_rep_vpn", "_drains", "_probe")

    def __init__(self, hierarchy, trace, probe=None) -> None:
        self._hierarchy = hierarchy
        self._probe = probe
        self._vpns = as_vpn_array(trace)
        if type(hierarchy) is TLBHierarchy:
            self._tokens, self._cum = encode_trace(self._vpns)
        else:
            # The generator specializes only plain TLBHierarchy instances
            # and the type never changes mid-run, so skip encoding and
            # make every drain a pass-through at pure reference cost.
            self._tokens = None
            self._cum = None
        self._tok = 0
        self._pos = 0
        self._rep = 0  # repeats left of a run split by a boundary
        self._rep_vpn = -1
        self._drains: dict = {}

    # ------------------------------------------------------------------
    def drain(self, start: int, stop: int) -> None:
        """Feed accesses ``[start, stop)`` through the hierarchy."""
        if self._tokens is None:
            # Permanently unsupported hierarchy type: reference loop.
            # The tolist matches the reference drain — components store
            # the vpns they are handed, and a leaked np.int64 would
            # poison the pure-JSON state digests.
            if self._probe is not None:
                self._probe.replayed_accesses += stop - start
                self._probe.fallback_spans += 1
            slow = self._hierarchy.access
            for vpn in self._vpns[start:stop].tolist():
                slow(vpn)
            return
        if start != self._pos:
            self._seek(start)
        if stop <= self._pos:
            return
        hierarchy = self._hierarchy
        slow = hierarchy.access
        if self._rep:
            # Finish a run the previous boundary split, reference-exact.
            take = min(self._rep, stop - self._pos)
            vpn = self._rep_vpn
            if self._probe is not None:
                self._probe.replayed_accesses += take
            for _ in range(take):
                slow(vpn)
            self._rep -= take
            self._pos += take
            if self._pos == stop:
                return
        tokens, cum = self._tokens, self._cum
        stop_tok = int(np.searchsorted(cum, stop, side="right")) - 1
        tok = self._tok
        while tok < stop_tok:
            drain = self._drain_for_shape()
            if drain is None:
                tok = self._replay_span(tok, stop_tok)
            else:
                tok = drain(tokens, cum, tok, stop_tok)
        self._tok = tok
        self._pos = int(cum[tok])
        if self._pos < stop:
            # The boundary lands inside the run of tokens[stop_tok]:
            # replay the head of the run slow, bank the tail.
            vpn = tokens[tok - 1]
            take = stop - self._pos
            if self._probe is not None:
                self._probe.replayed_accesses += take
                self._probe.boundary_splits += 1
            for _ in range(take):
                slow(vpn)
            self._rep = -tokens[tok] - take
            self._rep_vpn = vpn
            self._tok = tok + 1
            self._pos = stop

    # ------------------------------------------------------------------
    def _seek(self, pos: int) -> None:
        """Position the token cursor at access ``pos`` (checkpoint resume)."""
        cum = self._cum
        tok = int(np.searchsorted(cum, pos, side="right")) - 1
        if int(cum[tok]) == pos:
            self._tok = tok
            self._rep = 0
        else:
            # pos is inside the run of tokens[tok] (a repeat sentinel).
            self._tok = tok + 1
            self._rep = int(cum[tok + 1]) - pos
            self._rep_vpn = self._tokens[tok - 1]
        self._pos = pos

    def _drain_for_shape(self):
        """Cached specialized drain for the current shape (None = fallback)."""
        hierarchy = self._hierarchy
        if type(hierarchy) is not TLBHierarchy:
            return None
        key = (
            tuple(hierarchy._active_slots),
            hierarchy._l1_range_active,
            hierarchy._l2_range_active,
        )
        try:
            return self._drains[key]
        except KeyError:
            drain = _generate_drain(hierarchy, self._probe)
            if drain is not None and self._probe is not None:
                self._probe.generated_drains += 1
            self._drains[key] = drain
            return drain

    def _replay_span(self, tok: int, stop_tok: int) -> int:
        """Reference-path replay for unsupported hierarchy shapes.

        Replays the raw trace slice rather than decoding tokens, so the
        fallback pays exactly the reference loop's per-access cost.  The
        ``tolist`` matches the reference drain: components store the vpns
        they are handed, and a leaked ``np.int64`` would poison the
        pure-JSON state digests.
        """
        slow = self._hierarchy.access
        cum = self._cum
        if self._probe is not None:
            self._probe.fallback_spans += 1
            self._probe.replayed_accesses += int(cum[stop_tok]) - int(cum[tok])
        for vpn in self._vpns[int(cum[tok]) : int(cum[stop_tok])].tolist():
            slow(vpn)
        return stop_tok
