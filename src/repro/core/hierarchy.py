"""Per-core TLB hierarchies: the translation path of every configuration.

Two hierarchy shapes cover all six simulated configurations:

* :class:`TLBHierarchy` — Intel-style separate L1 TLBs per page size
  (Figure 1), optionally extended with RMM range TLBs (Figure 8).  Used by
  the 4KB, THP, TLB_Lite, RMM, and RMM_Lite configurations.
* :class:`MixedTLBHierarchy` — the TLB_PP configuration: a single
  set-associative L1 (and L2) holding both 4 KB and 2 MB translations,
  indexed with the help of a *perfect* page-size predictor.

Both implement the same access protocol per memory operation:

1. probe every *enabled* L1 structure in parallel (each probe is charged);
2. on an all-miss, probe the L2 structures in parallel (7 cycles);
3. on a full L2 miss, run the hardware page walk (50 cycles) and, when a
   range table exists, the background range-table walk (energy only).

Enabling follows the paper's Section 3.1 static mask: an L1 TLB for a
page size is probed only after the first walk fetches an entry of that
size; range TLBs are probed only after their first fill.  The hierarchy
tracks aggregate L1/L2 miss counts (the performance model's inputs) and
attributes every L1 hit to its serving structure (Table 5's hit shares),
with range hits taking precedence since both mappings are redundant.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..stateful import require
from ..mem.range_table import RangeTable
from ..mmu.translation import PageSize, Translation
from ..mmu.walker import PageWalker
from ..tlb.base import TranslationStructure
from ..tlb.mixed_fa import MixedFullyAssociativeTLB
from ..tlb.range_tlb import RangeTLB
from ..tlb.set_assoc import SetAssociativeTLB

# ConfigurationError used to be defined here; it now lives in the
# repro.errors taxonomy and is re-exported for its historical importers.


class L1Slot:
    """One per-page-size L1 TLB position in the parallel probe."""

    __slots__ = ("tlb", "page_size", "shift", "enabled", "attributed_hits")

    def __init__(self, tlb, page_size: PageSize, enabled: bool = False) -> None:
        self.tlb = tlb
        self.page_size = page_size
        self.shift = int(page_size).bit_length() - 1  # 0 / 9 / 18
        self.enabled = enabled
        self.attributed_hits = 0


class BaseHierarchy:
    """Counters and bookkeeping shared by both hierarchy shapes."""

    def __init__(self, walker: PageWalker) -> None:
        self.walker = walker
        self.accesses = 0
        self.l1_misses = 0
        self.l2_misses = 0
        self.range_walk_refs = 0

    def access(self, vpn: int) -> None:
        raise NotImplementedError

    def all_structures(self) -> list[TranslationStructure]:
        raise NotImplementedError

    def sync_stats(self) -> None:
        """Flush pending counters of every structure."""
        for structure in self.all_structures():
            structure.sync_stats()

    def reset_measurement(self) -> None:
        """Zero all statistics (end of fast-forward) keeping TLB contents."""
        for structure in self.all_structures():
            structure.reset_stats()
        self.walker.stats.reset()
        self.accesses = 0
        self.l1_misses = 0
        self.l2_misses = 0
        self.range_walk_refs = 0

    def hit_attribution(self) -> dict[str, int]:
        raise NotImplementedError

    def flush_tlbs(self) -> None:
        """Invalidate every TLB and MMU-cache entry (context switch)."""
        for structure in self.all_structures():
            structure.flush()

    def shootdown_huge_page(self, base_vpn: int) -> None:
        """Invalidate cached translations of a demoted 2 MB page.

        Called after :meth:`repro.mem.process.Process.break_huge_page`:
        the OS sends a TLB shootdown so no structure serves the stale
        huge-page entry.  Synthesised/installed 4 KB entries for pages
        inside the region still translate to the same frames (the split
        keeps them in place) and need no invalidation.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Pure-JSON hierarchy state; subclasses extend the dict.

        Structures are keyed by name (names are unique within one
        hierarchy), so per-component digests of a snapshot identify the
        diverging structure directly.  Taking a snapshot never mutates
        state (pending hot-path counts are serialized as-is, not synced),
        so checkpointing cannot perturb the run being checkpointed.
        """
        return {
            "accesses": self.accesses,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "range_walk_refs": self.range_walk_refs,
            "walker": self.walker.state_dict(),
            "structures": {
                structure.name: structure.state_dict()
                for structure in self.all_structures()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore onto a canonically rebuilt hierarchy."""
        structures = {s.name: s for s in self.all_structures()}
        require(
            sorted(state["structures"]) == sorted(structures),
            "hierarchy snapshot holds different structures: "
            f"{sorted(state['structures'])} vs {sorted(structures)}",
        )
        self.accesses = state["accesses"]
        self.l1_misses = state["l1_misses"]
        self.l2_misses = state["l2_misses"]
        self.range_walk_refs = state["range_walk_refs"]
        self.walker.load_state_dict(state["walker"])
        for name, structure_state in state["structures"].items():
            structures[name].load_state_dict(structure_state)


class TLBHierarchy(BaseHierarchy):
    """Separate-L1-per-page-size hierarchy, optionally with range TLBs.

    Parameters
    ----------
    l1_slots:
        The per-page-size L1 TLBs in probe order; exactly one must serve
        4 KB pages (it starts enabled, the others enable on first use).
    l2_page:
        The L2 TLB; holds 4 KB translations only (Sandy Bridge baseline).
    walker:
        Page walker bound to the process's page table and MMU cache.
    l1_range / l2_range:
        RMM range TLBs (either may be ``None``; an L1-range TLB without an
        L2-range TLB is rejected since fills flow L2 → L1).
    range_table:
        The process's software range table; enables background range
        walks on L2 misses.
    """

    def __init__(
        self,
        l1_slots: list[L1Slot],
        l2_page: SetAssociativeTLB,
        walker: PageWalker,
        l1_range: RangeTLB | None = None,
        l2_range: RangeTLB | None = None,
        range_table: RangeTable | None = None,
    ) -> None:
        super().__init__(walker)
        if l1_range is not None and l2_range is None:
            raise ConfigurationError("an L1-range TLB requires an L2-range TLB")
        if l2_range is not None and range_table is None:
            raise ConfigurationError("range TLBs require a range table")
        self.l1_slots = l1_slots
        self._slot_by_size = {slot.page_size: slot for slot in l1_slots}
        if PageSize.SIZE_4KB not in self._slot_by_size:
            raise ConfigurationError("hierarchy needs an L1 TLB for 4KB pages")
        self._slot_4kb = self._slot_by_size[PageSize.SIZE_4KB]
        self._slot_4kb.enabled = True
        self._active_slots = [slot for slot in l1_slots if slot.enabled]
        self.l2_page = l2_page
        self.l1_range = l1_range
        self.l2_range = l2_range
        self.range_table = range_table
        # Static-enable latches: range TLBs are probed once first filled.
        self._l1_range_active: RangeTLB | None = None
        self._l2_range_active: RangeTLB | None = None
        self.range_attributed_hits = 0

    # ------------------------------------------------------------------
    def drain_shape(self) -> tuple[int, bool, bool]:
        """Probe-path shape: (active slots, L1-range live, L2-range live).

        The streak-coalescing engine (:mod:`repro.core.fastpath`)
        specializes its drain loop to this shape and must stop and
        re-specialize whenever an access changes it (a walk enabling a
        new L1 slot, a fill latching a range TLB).  Everything else the
        specialized loop touches is mutated strictly in place — per-set
        recency lists, range recency stacks, and Lite's raw counter
        lists keep their identity across fills, resizes, and flushes —
        so the shape triple is the only regeneration trigger.
        """
        return (
            len(self._active_slots),
            self._l1_range_active is not None,
            self._l2_range_active is not None,
        )

    # ------------------------------------------------------------------
    def access(self, vpn: int) -> None:
        """Translate one memory reference, updating all statistics."""
        self.accesses += 1
        page_hit_slot = None
        for slot in self._active_slots:
            if slot.tlb.lookup(vpn >> slot.shift) is not None:
                page_hit_slot = slot
        l1_range = self._l1_range_active
        if l1_range is not None and l1_range.lookup(vpn) is not None:
            self.range_attributed_hits += 1
            return
        if page_hit_slot is not None:
            page_hit_slot.attributed_hits += 1
            return
        # --- L1 miss: parallel L2 lookups (7 cycles) -------------------
        self.l1_misses += 1
        page_entry = self.l2_page.lookup(vpn)
        l2_range = self._l2_range_active
        range_entry = l2_range.lookup(vpn) if l2_range is not None else None
        if range_entry is not None and self.l1_range is not None:
            self.l1_range.fill(range_entry)
            self._l1_range_active = self.l1_range
        if page_entry is not None:
            self._slot_4kb.tlb.fill(vpn, page_entry)
        elif range_entry is not None:
            # As in the original RMM design, a range hit synthesises the
            # 4 KB page translation (PA = VA + offset) and installs it in
            # the L1-4KB TLB; the range hardware cannot know the page-
            # table leaf size without walking, so the granule is 4 KB.
            self._slot_4kb.tlb.fill(
                vpn,
                Translation(vpn, vpn + range_entry.offset, PageSize.SIZE_4KB),
            )
        if page_entry is not None or range_entry is not None:
            return
        # --- full L2 miss: page walk (50 cycles) -----------------------
        self.l2_misses += 1
        result = self.walker.walk(vpn)
        translation = result.translation
        slot = self._slot_by_size.get(translation.page_size)
        if slot is None:
            raise ConfigurationError(
                f"walk returned a {translation.page_size.label()} page but the "
                "hierarchy has no L1 TLB for that size"
            )
        if not slot.enabled:
            slot.enabled = True
            self._active_slots.append(slot)
        slot.tlb.fill(vpn >> slot.shift, translation)
        if translation.page_size is PageSize.SIZE_4KB:
            self.l2_page.fill(vpn, translation)
        range_table = self.range_table
        if range_table is not None:
            # Background range-table walk: energy only, no cycles.
            self.range_walk_refs += range_table.walk_memory_refs()
            range_entry = range_table.lookup(vpn)
            if range_entry is not None and self.l2_range is not None:
                self.l2_range.fill(range_entry)
                self._l2_range_active = self.l2_range

    # ------------------------------------------------------------------
    def all_structures(self) -> list[TranslationStructure]:
        structures: list[TranslationStructure] = [slot.tlb for slot in self.l1_slots]
        structures.append(self.l2_page)
        if self.l1_range is not None:
            structures.append(self.l1_range)
        if self.l2_range is not None:
            structures.append(self.l2_range)
        structures.extend(self.walker.mmu_cache.structures)
        return structures

    def hit_attribution(self) -> dict[str, int]:
        """L1 hits per serving structure (range hits take precedence)."""
        attribution = {
            slot.tlb.name: slot.attributed_hits for slot in self.l1_slots
        }
        if self.l1_range is not None:
            attribution[self.l1_range.name] = self.range_attributed_hits
        return attribution

    def reset_measurement(self) -> None:
        super().reset_measurement()
        for slot in self.l1_slots:
            slot.attributed_hits = 0
        self.range_attributed_hits = 0

    def shootdown_huge_page(self, base_vpn: int) -> None:
        slot = self._slot_by_size.get(PageSize.SIZE_2MB)
        if slot is not None:
            slot.tlb.invalidate(base_vpn >> 9)

    def state_dict(self) -> dict:
        state = super().state_dict()
        # Slot enablement order matters: _active_slots is probed in append
        # order and the *last* hit wins attribution, so the order is part
        # of the state, not just the membership.
        state["enabled_sizes"] = [int(slot.page_size) for slot in self._active_slots]
        state["attributed_hits"] = {
            str(int(slot.page_size)): slot.attributed_hits for slot in self.l1_slots
        }
        state["l1_range_active"] = self._l1_range_active is not None
        state["l2_range_active"] = self._l2_range_active is not None
        state["range_attributed_hits"] = self.range_attributed_hits
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        enabled = [PageSize(size) for size in state["enabled_sizes"]]
        require(
            all(size in self._slot_by_size for size in enabled),
            "snapshot enables an L1 slot this hierarchy does not have",
        )
        for slot in self.l1_slots:
            slot.enabled = slot.page_size in enabled
            slot.attributed_hits = state["attributed_hits"][str(int(slot.page_size))]
        self._active_slots = [self._slot_by_size[size] for size in enabled]
        self._l1_range_active = self.l1_range if state["l1_range_active"] else None
        self._l2_range_active = self.l2_range if state["l2_range_active"] else None
        self.range_attributed_hits = state["range_attributed_hits"]


class L0FilterHierarchy(TLBHierarchy):
    """Related-work baseline (paper §7): a tiny L0 TLB filtering L1 probes.

    Xue et al. [53] and the TLB-filtering line of work [11, 17, 21] save
    dynamic energy by satisfying most lookups from a very small structure
    probed *before* the L1 TLBs; only L0 misses pay the parallel L1 probe
    energy.  The L0 here is a small fully-associative mixed-size TLB
    filled from L1 hits and walk results.  Orthogonal to Lite (the
    paper's claim), which keeps working on the L1-page TLBs behind the
    filter.
    """

    def __init__(self, *args, l0: MixedFullyAssociativeTLB, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.l0 = l0
        self.l0_attributed_hits = 0

    def access(self, vpn: int) -> None:
        """Probe the L0 first; fall through to the normal path on a miss."""
        if self.l0.lookup(vpn) is not None:
            self.accesses += 1
            self.l0_attributed_hits += 1
            return
        before_misses = self.l1_misses
        super().access(vpn)
        # Promote the translation that served (or was just installed for)
        # this access into the L0 filter.
        entry = None
        for slot in self._active_slots:
            entry = slot.tlb.peek(vpn >> slot.shift) or entry
        if entry is None and self._l1_range_active is not None:
            rng = self._l1_range_active.peek(vpn)
            if rng is not None:
                entry = Translation(vpn, vpn + rng.offset, PageSize.SIZE_4KB)
        if entry is not None:
            self.l0.fill(entry)

    def all_structures(self) -> list[TranslationStructure]:
        return [self.l0, *super().all_structures()]

    def hit_attribution(self) -> dict[str, int]:
        attribution = super().hit_attribution()
        attribution[self.l0.name] = self.l0_attributed_hits
        return attribution

    def reset_measurement(self) -> None:
        super().reset_measurement()
        self.l0_attributed_hits = 0

    def shootdown_huge_page(self, base_vpn: int) -> None:
        super().shootdown_huge_page(base_vpn)
        while self.l0.invalidate_covering(base_vpn):
            pass

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["l0_attributed_hits"] = self.l0_attributed_hits
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.l0_attributed_hits = state["l0_attributed_hits"]


class MixedTLBHierarchy(BaseHierarchy):
    """TLB_PP: single mixed-page-size L1/L2 with a perfect size predictor.

    The predictor (an oracle over the process's page table) supplies the
    actual page size before the lookup, selecting the index bits; the
    paper's TLB_PP idealisation charges it no energy and no mispredicts.
    Keys embed the size bit so 4 KB and 2 MB tags never alias.

    Optionally carries RMM range TLBs (the "orthogonal, combined"
    organization Section 6.1 proposes: the L1-range TLB for ranges,
    TLB_PP for pages, Lite on top): an L1-range TLB probed in parallel
    with the mixed L1, an L2-range TLB in parallel with the mixed L2, and
    background range-table walks on full L2 misses.
    """

    def __init__(
        self,
        l1_mixed: SetAssociativeTLB,
        l2_mixed: SetAssociativeTLB,
        walker: PageWalker,
        huge_chunks: frozenset[int],
        l1_range: RangeTLB | None = None,
        l2_range: RangeTLB | None = None,
        range_table: RangeTable | None = None,
    ) -> None:
        super().__init__(walker)
        if l1_range is not None and l2_range is None:
            raise ConfigurationError("an L1-range TLB requires an L2-range TLB")
        if l2_range is not None and range_table is None:
            raise ConfigurationError("range TLBs require a range table")
        self.l1_mixed = l1_mixed
        self.l2_mixed = l2_mixed
        # Mutable: huge-page breakdown events remove chunks at runtime.
        self._huge_chunks = set(huge_chunks)
        self.l1_range = l1_range
        self.l2_range = l2_range
        self.range_table = range_table
        self._l1_range_active: RangeTLB | None = None
        self._l2_range_active: RangeTLB | None = None
        self.range_attributed_hits = 0
        self.attributed_hits_4kb = 0
        self.attributed_hits_2mb = 0

    @staticmethod
    def oracle_key(vpn: int, huge: bool) -> int:
        """Size-disambiguated TLB key for a reference."""
        if huge:
            return ((vpn >> 9) << 1) | 1
        return vpn << 1

    def access(self, vpn: int) -> None:
        """Translate one memory reference through the mixed hierarchy."""
        self.accesses += 1
        huge = (vpn >> 9) in self._huge_chunks
        key = ((vpn >> 9) << 1) | 1 if huge else vpn << 1
        page_hit = self.l1_mixed.lookup(key) is not None
        l1_range = self._l1_range_active
        if l1_range is not None and l1_range.lookup(vpn) is not None:
            self.range_attributed_hits += 1
            return
        if page_hit:
            if huge:
                self.attributed_hits_2mb += 1
            else:
                self.attributed_hits_4kb += 1
            return
        self.l1_misses += 1
        entry = self.l2_mixed.lookup(key)
        l2_range = self._l2_range_active
        range_entry = l2_range.lookup(vpn) if l2_range is not None else None
        if range_entry is not None and self.l1_range is not None:
            self.l1_range.fill(range_entry)
            self._l1_range_active = self.l1_range
        if entry is not None:
            self.l1_mixed.fill(key, entry)
        elif range_entry is not None:
            # Synthesise the 4 KB page entry from the range, as in RMM.
            self.l1_mixed.fill(
                vpn << 1, Translation(vpn, vpn + range_entry.offset, PageSize.SIZE_4KB)
            )
        if entry is not None or range_entry is not None:
            return
        self.l2_misses += 1
        result = self.walker.walk(vpn)
        self.l1_mixed.fill(key, result.translation)
        self.l2_mixed.fill(key, result.translation)
        range_table = self.range_table
        if range_table is not None:
            self.range_walk_refs += range_table.walk_memory_refs()
            range_entry = range_table.lookup(vpn)
            if range_entry is not None and self.l2_range is not None:
                self.l2_range.fill(range_entry)
                self._l2_range_active = self.l2_range

    def all_structures(self) -> list[TranslationStructure]:
        structures: list[TranslationStructure] = [self.l1_mixed, self.l2_mixed]
        if self.l1_range is not None:
            structures.append(self.l1_range)
        if self.l2_range is not None:
            structures.append(self.l2_range)
        structures.extend(self.walker.mmu_cache.structures)
        return structures

    def hit_attribution(self) -> dict[str, int]:
        attribution = {
            "L1-mixed (4KB)": self.attributed_hits_4kb,
            "L1-mixed (2MB)": self.attributed_hits_2mb,
        }
        if self.l1_range is not None:
            attribution[self.l1_range.name] = self.range_attributed_hits
        return attribution

    def reset_measurement(self) -> None:
        super().reset_measurement()
        self.attributed_hits_4kb = 0
        self.attributed_hits_2mb = 0
        self.range_attributed_hits = 0

    def shootdown_huge_page(self, base_vpn: int) -> None:
        chunk = base_vpn >> 9
        key = (chunk << 1) | 1
        self.l1_mixed.invalidate(key)
        self.l2_mixed.invalidate(key)
        # The perfect predictor tracks the page table: the region is now
        # 4 KB-mapped.
        self._huge_chunks.discard(chunk)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["huge_chunks"] = sorted(self._huge_chunks)
        state["attributed_hits_4kb"] = self.attributed_hits_4kb
        state["attributed_hits_2mb"] = self.attributed_hits_2mb
        state["l1_range_active"] = self._l1_range_active is not None
        state["l2_range_active"] = self._l2_range_active is not None
        state["range_attributed_hits"] = self.range_attributed_hits
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._huge_chunks = set(state["huge_chunks"])
        self.attributed_hits_4kb = state["attributed_hits_4kb"]
        self.attributed_hits_2mb = state["attributed_hits_2mb"]
        self._l1_range_active = self.l1_range if state["l1_range_active"] else None
        self._l2_range_active = self.l2_range if state["l2_range_active"] else None
        self.range_attributed_hits = state["range_attributed_hits"]


class PredictedMixedHierarchy(MixedTLBHierarchy):
    """Realistic TLB_Pred: a *fallible* page-size predictor.

    The paper's TLB_PP idealises TLB_Pred [41] with a perfect, zero-energy
    predictor and notes that "these results under report its true costs".
    This variant quantifies the gap: a direct-mapped last-size predictor
    (indexed by VPN bits, as in the original proposal) guesses the page
    size to pick the index bits.  A correct guess costs one probe; a
    misprediction costs a second probe of the other size (charged) and,
    when the re-probe hits, the retried lookup is counted as an L1 miss
    for timing (the retry pipelines like an L2 lookup).
    """

    def __init__(self, *args, predictor_entries: int = 512, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if predictor_entries < 1 or predictor_entries & (predictor_entries - 1):
            raise ConfigurationError("predictor_entries must be a power of two")
        self._predictor = [False] * predictor_entries
        self._predictor_mask = predictor_entries - 1
        self.mispredictions = 0

    def access(self, vpn: int) -> None:
        """Translate one reference with a predicted-size first probe."""
        self.accesses += 1
        chunk = vpn >> 9
        actual_huge = chunk in self._huge_chunks
        index = chunk & self._predictor_mask
        predicted_huge = self._predictor[index]
        first_key = ((chunk << 1) | 1) if predicted_huge else (vpn << 1)
        entry = self.l1_mixed.lookup(first_key)
        if entry is None and predicted_huge != actual_huge:
            # Mispredicted index bits: re-probe with the actual size
            # (extra read energy; retry latency counted as an L1 miss).
            self.mispredictions += 1
            second_key = ((chunk << 1) | 1) if actual_huge else (vpn << 1)
            entry = self.l1_mixed.lookup(second_key)
            self._predictor[index] = actual_huge
            if entry is not None:
                self.l1_misses += 1
                if actual_huge:
                    self.attributed_hits_2mb += 1
                else:
                    self.attributed_hits_4kb += 1
                return
        if entry is not None:
            if actual_huge:
                self.attributed_hits_2mb += 1
            else:
                self.attributed_hits_4kb += 1
            return
        # Genuine L1 miss: L2 and walk path, keyed by the actual size.
        self._predictor[index] = actual_huge
        key = ((chunk << 1) | 1) if actual_huge else (vpn << 1)
        self.l1_misses += 1
        l2_entry = self.l2_mixed.lookup(key)
        if l2_entry is not None:
            self.l1_mixed.fill(key, l2_entry)
            return
        self.l2_misses += 1
        result = self.walker.walk(vpn)
        self.l1_mixed.fill(key, result.translation)
        self.l2_mixed.fill(key, result.translation)

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per access (for reports)."""
        return self.mispredictions / self.accesses if self.accesses else 0.0

    def reset_measurement(self) -> None:
        super().reset_measurement()
        self.mispredictions = 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["predictor"] = list(self._predictor)
        state["mispredictions"] = self.mispredictions
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        require(
            len(state["predictor"]) == len(self._predictor),
            f"predictor snapshot has {len(state['predictor'])} entries, "
            f"expected {len(self._predictor)}",
        )
        self._predictor = list(state["predictor"])
        self.mispredictions = state["mispredictions"]


class FullyAssociativeL1Hierarchy(BaseHierarchy):
    """SPARC/AMD-style organization: one fully-associative mixed L1 TLB.

    Section 4.4: a single fully-associative L1 holds translations of all
    page sizes (one masked CAM search per access), backed by the usual
    4 KB-only L2.  Lite resizes the structure in powers of two through
    ``set_active_entries``, clustering LRU distances "as if there were
    ways".
    """

    def __init__(
        self,
        l1_fa: "MixedFullyAssociativeTLB",
        l2_page: SetAssociativeTLB,
        walker: PageWalker,
    ) -> None:
        super().__init__(walker)
        self.l1_fa = l1_fa
        self.l2_page = l2_page
        self.attributed_hits = 0

    def access(self, vpn: int) -> None:
        """Translate one memory reference through the FA hierarchy."""
        self.accesses += 1
        if self.l1_fa.lookup(vpn) is not None:
            self.attributed_hits += 1
            return
        self.l1_misses += 1
        entry = self.l2_page.lookup(vpn)
        if entry is not None:
            self.l1_fa.fill(entry)
            return
        self.l2_misses += 1
        result = self.walker.walk(vpn)
        self.l1_fa.fill(result.translation)
        if result.translation.page_size is PageSize.SIZE_4KB:
            self.l2_page.fill(vpn, result.translation)

    def all_structures(self) -> list[TranslationStructure]:
        return [self.l1_fa, self.l2_page, *self.walker.mmu_cache.structures]

    def hit_attribution(self) -> dict[str, int]:
        return {self.l1_fa.name: self.attributed_hits}

    def reset_measurement(self) -> None:
        super().reset_measurement()
        self.attributed_hits = 0

    def shootdown_huge_page(self, base_vpn: int) -> None:
        entry = self.l1_fa.peek(base_vpn)
        if entry is not None and entry.page_size is PageSize.SIZE_2MB:
            self.l1_fa.invalidate_covering(base_vpn)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["attributed_hits"] = self.attributed_hits
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.attributed_hits = state["attributed_hits"]
