"""Configuration parameters for TLB organizations (paper Table 1 / Fig. 9).

Defaults model the Intel Sandy Bridge per-core data-TLB hierarchy the
paper uses as its baseline:

* L1-4KB TLB: 64 entries, 4-way
* L1-2MB TLB: 32 entries, 4-way
* L1-1GB TLB: 4 entries, fully associative
* L2-4KB TLB: 512 entries, 4-way (4 KB translations only)
* L2-range TLB (RMM): 32 entries, fully associative
* L1-range TLB (RMM_Lite): 4 entries, fully associative

and the Lite mechanism's knobs (Section 5): 1 M-instruction intervals,
ε = 12.5 % relative (TLB_Lite) or 0.1 MPKI absolute (RMM_Lite), random
full re-activation probability swept over 1/8 … 1/128.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, SettingsError


@dataclass(frozen=True, slots=True)
class SetAssocParams:
    """Geometry of one set-associative TLB."""

    entries: int
    ways: int

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True, slots=True)
class HierarchyParams:
    """Geometry of every structure in the per-core TLB hierarchy."""

    l1_4kb: SetAssocParams = SetAssocParams(64, 4)
    l1_2mb: SetAssocParams = SetAssocParams(32, 4)
    l1_1gb_entries: int = 4
    l2_page: SetAssocParams = SetAssocParams(512, 4)
    l1_range_entries: int = 4
    l2_range_entries: int = 32

    def with_l1_4kb(self, entries: int, ways: int) -> "HierarchyParams":
        """Copy with a different L1-4KB TLB (Figure 4's 64/32/16 sweep)."""
        return HierarchyParams(
            l1_4kb=SetAssocParams(entries, ways),
            l1_2mb=self.l1_2mb,
            l1_1gb_entries=self.l1_1gb_entries,
            l2_page=self.l2_page,
            l1_range_entries=self.l1_range_entries,
            l2_range_entries=self.l2_range_entries,
        )


@dataclass(frozen=True, slots=True)
class LiteParams:
    """Knobs of the Lite mechanism (Sections 4.2 and 5).

    ``threshold_mode`` selects how ε is applied when comparing a predicted
    MPKI against the reference MPKI: ``"relative"`` allows a fractional
    increase (``epsilon_relative``), ``"absolute"`` a fixed MPKI increase
    (``epsilon_absolute``).  The paper uses relative for TLB_Lite and
    absolute for RMM_Lite, whose reference MPKI is near zero.
    """

    interval_instructions: int = 1_000_000
    threshold_mode: str = "relative"
    epsilon_relative: float = 0.125
    epsilon_absolute: float = 0.1
    reactivate_probability: float = 1.0 / 64.0
    min_ways: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threshold_mode not in ("relative", "absolute"):
            raise ConfigurationError(
                "threshold_mode must be 'relative' or 'absolute'"
            )
        if self.interval_instructions <= 0:
            raise ConfigurationError("interval_instructions must be positive")
        if not 0.0 <= self.reactivate_probability <= 1.0:
            raise ConfigurationError("reactivate_probability must be in [0, 1]")
        if self.min_ways < 1:
            raise ConfigurationError("min_ways must be >= 1")

    def threshold(self, reference_mpki: float) -> float:
        """Largest acceptable MPKI given the reference value."""
        if self.threshold_mode == "relative":
            return reference_mpki * (1.0 + self.epsilon_relative)
        return reference_mpki + self.epsilon_absolute


#: Lite parameters the paper uses for TLB_Lite (Section 5).
TLB_LITE_PARAMS = LiteParams(threshold_mode="relative", epsilon_relative=0.125)

#: Lite parameters the paper uses for RMM_Lite (Section 5).
RMM_LITE_PARAMS = LiteParams(threshold_mode="absolute", epsilon_absolute=0.1)


@dataclass(frozen=True, slots=True)
class SimulationParams:
    """Run-level knobs shared by all experiments.

    The paper fast-forwards 50 G instructions and simulates 50 G; the
    synthetic workloads are stationary per phase, so defaults here are
    scaled down (fractions are what matter, see DESIGN.md).  The timeline
    window drives Figure 4-style MPKI-over-time sampling.
    """

    fast_forward_fraction: float = 0.1
    timeline_windows: int = 50
    walk_l1_hit_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fast_forward_fraction < 1.0:
            raise SettingsError("fast_forward_fraction must be in [0, 1)")
        if self.timeline_windows < 1:
            raise SettingsError("timeline_windows must be >= 1")


@dataclass(frozen=True)
class ConfigurationSummary:
    """Printable description of one simulated configuration (Fig. 9)."""

    name: str
    page_sizes: tuple[str, ...]
    structures: tuple[str, ...]
    lite: str | None = None
    notes: str = ""

    def render(self) -> str:
        lines = [f"{self.name}: pages {'+'.join(self.page_sizes)}"]
        for structure in self.structures:
            lines.append(f"  - {structure}")
        if self.lite:
            lines.append(f"  - Lite: {self.lite}")
        if self.notes:
            lines.append(f"  ({self.notes})")
        return "\n".join(lines)
