"""The checkpoint protocol: ``state_dict()`` / ``load_state_dict()``.

Every stateful class in the simulator — TLBs of all organizations,
replacement state, Lite interval counters, page/range tables, the
physical-frame allocator, walker statistics, seeded RNG streams — obeys
one contract:

* ``state_dict()`` returns a **pure-JSON** representation of the mutable
  state: only ``dict`` / ``list`` / ``str`` / ``int`` / ``float`` /
  ``bool`` / ``None``, with deterministic content (no set iteration
  order, no id()-derived values).  Immutable construction geometry
  (entry counts, ways, names) is *not* serialized — a snapshot is always
  restored onto an object rebuilt through the canonical construction
  path — but geometry is re-validated on load.
* ``load_state_dict(state)`` restores that state **in place**, raising
  :class:`repro.errors.CheckpointError` when the target object's
  geometry does not match the snapshot.

Pure-JSON states make the rest of the resilience machinery trivial:
snapshot files are plain JSON (versioned + checksummed by
:mod:`repro.resilience.checkpoint`), and golden state hashes are just
digests of the canonical JSON encoding — identical states produce
identical bytes produce identical digests, on any platform.

This module holds the shared encoding helpers: a tagged codec for the
translation objects TLB entries carry, and converters for
``random.Random`` state and ``collections.Counter`` histograms.
"""

from __future__ import annotations

from collections import Counter

from .errors import CheckpointError

#: Tags of the entry codec (first element of an encoded list).
_TAG_TRANSLATION = "T"
_TAG_RANGE = "R"


def _translation_types():
    # Imported lazily: repro.tlb depends on this module at import time,
    # and repro.mmu imports repro.tlb, so a top-level import here would
    # close a cycle.
    from .mmu.translation import PageSize, RangeTranslation, Translation

    return PageSize, RangeTranslation, Translation


def encode_entry(value):
    """Encode one TLB entry value into pure JSON.

    Page TLBs cache :class:`Translation` objects, range TLBs cache
    :class:`RangeTranslation`, MMU caches cache ``True``; tests also use
    bare ints/strings.  Structured objects become tagged lists, scalars
    pass through unchanged.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    _, RangeTranslation, Translation = _translation_types()
    if isinstance(value, Translation):
        return [_TAG_TRANSLATION, value.vpn, value.pfn, int(value.page_size)]
    if isinstance(value, RangeTranslation):
        return [_TAG_RANGE, value.base_vpn, value.limit_vpn, value.base_pfn]
    raise CheckpointError(f"cannot encode TLB entry of type {type(value).__name__}")


def decode_entry(data):
    """Invert :func:`encode_entry`."""
    if isinstance(data, list):
        PageSize, RangeTranslation, Translation = _translation_types()
        if len(data) == 4 and data[0] == _TAG_TRANSLATION:
            return Translation(data[1], data[2], PageSize(data[3]))
        if len(data) == 4 and data[0] == _TAG_RANGE:
            return RangeTranslation(data[1], data[2], data[3])
        raise CheckpointError(f"unknown encoded entry {data!r}")
    return data


def rng_state_to_json(state) -> list:
    """``random.Random.getstate()`` → JSON (tuples become lists)."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(data):
    """Invert :func:`rng_state_to_json` back into ``setstate()`` form."""
    try:
        version, internal, gauss_next = data
        return (version, tuple(internal), gauss_next)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed RNG state {data!r}") from exc


def counter_to_json(counter: Counter) -> dict:
    """Histogram keyed by ints → JSON object keyed by decimal strings."""
    return {str(key): value for key, value in sorted(counter.items())}


def counter_from_json(data: dict) -> Counter:
    """Invert :func:`counter_to_json`."""
    return Counter({int(key): value for key, value in data.items()})


def require(condition: bool, message: str) -> None:
    """Raise :class:`CheckpointError` when a load-time check fails."""
    if not condition:
        raise CheckpointError(message)
