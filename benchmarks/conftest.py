"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures.  The heavy
part — the (workload × configuration) simulation matrix — is computed once
per session and shared across bench modules (Figures 2, 10, 11 and
Table 5 all read the same matrix, exactly as in the paper).

Rendered tables are written to ``benchmarks/results/*.txt`` and echoed to
the terminal even under pytest's output capture, so
``pytest benchmarks/ --benchmark-only`` leaves a readable record.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentSettings, run_matrix
from repro.core.organizations import CONFIG_NAMES
from repro.workloads.registry import tlb_intensive_workloads

RESULTS_DIR = Path(__file__).parent / "results"

#: Trace length for the main matrix.  Override with REPRO_BENCH_ACCESSES
#: for quicker smoke runs or longer, lower-variance ones.
BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", 600_000))

MAIN_SETTINGS = ExperimentSettings(trace_accesses=BENCH_ACCESSES)

_MATRIX_CACHE: dict | None = None


def main_matrix():
    """The Figure 10 matrix: 8 TLB-intensive workloads × 6 configurations."""
    global _MATRIX_CACHE
    if _MATRIX_CACHE is None:
        _MATRIX_CACHE = run_matrix(
            tlb_intensive_workloads(), CONFIG_NAMES, MAIN_SETTINGS
        )
    return _MATRIX_CACHE


def intensive_names() -> list[str]:
    return [w.name for w in tlb_intensive_workloads()]


def emit(name: str, text: str) -> None:
    """Save a rendered table and echo it past pytest's capture."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    sys.stdout.write(f"\n{text}\n")


@pytest.fixture(autouse=True)
def _echo_captured_output(capfd):
    """Re-emit captured stdout after each bench so tables reach the terminal."""
    yield
    out, _err = capfd.readouterr()
    if out.strip():
        with capfd.disabled():
            sys.stdout.write(out)
