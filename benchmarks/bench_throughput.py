"""Simulator throughput: accesses per second per (trace, config, engine).

Not a paper figure — the performance characteristics of the simulator
itself, which bound experiment sizes (the repro band for this paper notes
"simplified trace simulator; slow on full workloads").  pytest-benchmark
measures the steady-state simulation rate of both drain engines over two
trace regimes:

* ``omnetpp`` — the registry workload whose Zipf/burst mix produces
  short streaks (mean run length ~1.2): the *adversarial* case for the
  streak-coalescing fast engine, which then wins only through its
  shape-specialized per-access pipeline;
* ``stream`` — a paper-motivated spatial-locality regime (Section 3:
  real address streams are dominated by long same-page runs) with
  burst-8 Zipf streaks, where run-length coalescing pays off fully.

Guardrails: the reference engine keeps the historical 20k acc/s floor;
the fast engine is held to per-config floors set ~4x below the rates
measured on a development machine, so a regression that halves fast-path
throughput fails loudly while CI-runner jitter does not.  A third case
re-runs the fast engine with a *disabled* observability hub attached and
holds it to the same floors shaved by 2% — the zero-cost claim of
``docs/observability.md``, benchmarked.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings
from repro.core.fastpath import ENGINES
from repro.core.organizations import build_organization, paging_policy_for
from repro.core.simulator import Simulator
from repro.mem.physical import PhysicalMemory
from repro.observability import Observability
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf
from repro.workloads.registry import get_workload

ACCESSES = 60_000
CONFIGS = ("4KB", "THP", "TLB_Lite", "RMM", "RMM_Lite", "TLB_PP")
TRACES = ("omnetpp", "stream")

#: Fast-engine accesses/second floors per configuration (both traces; the
#: omnetpp rates bound the stream rates from below).
FAST_FLOORS = {
    "4KB": 40_000,
    "THP": 120_000,
    "TLB_Lite": 100_000,
    "RMM": 120_000,
    "RMM_Lite": 50_000,
    "TLB_PP": 100_000,
}
#: The historical single floor, now scoped to the reference engine.
REFERENCE_FLOOR = 20_000

#: Disabled telemetry may cost at most 2% of the fast-engine floors:
#: ``Observability.resolve`` collapses a disabled hub to ``None`` before
#: the drain loop starts, so the instrumented and bare paths are the
#: same code — this gate notices if that ever stops being true.
TELEMETRY_FLOOR_FACTOR = 0.98


def stream_workload() -> Workload:
    """Long-streak bench workload: 512 hot pages, burst-8 Zipf."""
    return Workload(
        "stream",
        "BENCH",
        [VMASpec("stream", 2)],  # 2 MiB = 512 pages
        lambda regions: Zipf(regions["stream"], alpha=1.0, burst=8),
        instructions_per_access=get_workload("omnetpp").instructions_per_access,
        description="spatial-locality regime: long same-page runs",
    )


def bench_workload(trace_name: str) -> Workload:
    return get_workload("omnetpp") if trace_name == "omnetpp" else stream_workload()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("trace_name", TRACES)
def test_throughput(benchmark, trace_name, config, engine):
    workload = bench_workload(trace_name)
    trace = workload.trace(ACCESSES, seed=1)
    settings = ExperimentSettings(trace_accesses=ACCESSES)

    def build():
        process = workload.build_process(
            paging_policy_for(config), PhysicalMemory(settings.physical_bytes, seed=1)
        )
        organization = build_organization(config, process)
        return Simulator(
            organization,
            instructions_per_access=workload.instructions_per_access,
            engine=engine,
        )

    def run_once():
        simulator = build()
        return simulator.run(trace, fast_forward_accesses=0)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.accesses == ACCESSES
    if benchmark.stats is None:  # --benchmark-disable: correctness only
        return
    seconds = benchmark.stats.stats.mean
    rate = ACCESSES / seconds
    floor = FAST_FLOORS[config] if engine == "fast" else REFERENCE_FLOOR
    assert rate > floor, (
        f"{trace_name}/{config}/{engine} simulated at {rate:.0f} acc/s "
        f"(floor {floor})"
    )


@pytest.mark.parametrize("config", CONFIGS)
def test_throughput_telemetry_disabled(benchmark, config):
    """Fast engine with a disabled hub attached holds 98% of its floors."""
    workload = stream_workload()
    trace = workload.trace(ACCESSES, seed=1)
    settings = ExperimentSettings(trace_accesses=ACCESSES)

    def run_once():
        process = workload.build_process(
            paging_policy_for(config), PhysicalMemory(settings.physical_bytes, seed=1)
        )
        organization = build_organization(config, process)
        simulator = Simulator(
            organization,
            instructions_per_access=workload.instructions_per_access,
            engine="fast",
            observability=Observability(enabled=False),
        )
        return simulator.run(trace, fast_forward_accesses=0)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.accesses == ACCESSES
    if benchmark.stats is None:  # --benchmark-disable: correctness only
        return
    rate = ACCESSES / benchmark.stats.stats.mean
    floor = FAST_FLOORS[config] * TELEMETRY_FLOOR_FACTOR
    assert rate > floor, (
        f"stream/{config}/fast with disabled telemetry simulated at "
        f"{rate:.0f} acc/s (floor {floor:.0f})"
    )
