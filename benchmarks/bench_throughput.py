"""Simulator throughput: accesses per second per configuration.

Not a paper figure — the performance characteristics of the simulator
itself, which bound experiment sizes (the repro band for this paper notes
"simplified trace simulator; slow on full workloads").  pytest-benchmark
measures the steady-state simulation rate for each hierarchy shape.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings
from repro.core.organizations import build_organization, paging_policy_for
from repro.core.simulator import Simulator
from repro.mem.physical import PhysicalMemory
from repro.workloads.registry import get_workload

ACCESSES = 120_000
CONFIGS = ("4KB", "THP", "TLB_Lite", "RMM_Lite", "TLB_PP")


@pytest.mark.parametrize("config", CONFIGS)
def test_throughput(benchmark, config):
    workload = get_workload("omnetpp")
    trace = workload.trace(ACCESSES, seed=1)
    settings = ExperimentSettings(trace_accesses=ACCESSES)

    def build():
        process = workload.build_process(
            paging_policy_for(config), PhysicalMemory(settings.physical_bytes, seed=1)
        )
        organization = build_organization(config, process)
        return Simulator(
            organization, instructions_per_access=workload.instructions_per_access
        )

    def run_once():
        simulator = build()
        return simulator.run(trace, fast_forward_accesses=0)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.accesses == ACCESSES
    # Guardrail: the pure-Python simulator should stay above ~100k
    # accesses/second for the simple hierarchies on any modern machine.
    seconds = benchmark.stats.stats.mean
    assert ACCESSES / seconds > 20_000, f"{config} simulated at {ACCESSES/seconds:.0f} acc/s"
