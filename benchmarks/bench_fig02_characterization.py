"""Figure 2: energy characterization of 4KB vs THP vs RMM.

(a) dynamic address-translation energy, normalised to 4KB per workload,
    with the component breakdown that identifies L1 TLBs and page walks
    as the two dominant sources;
(b) cycles spent in TLB misses, normalised to 4KB.

Paper shapes checked: THP cuts miss cycles ~83% on average but *raises*
mean dynamic energy (canneal worst); energy falls only for the walk-bound
cactusADM and mcf; RMM eliminates the walks but keeps L1 energy high.
"""

from conftest import emit, intensive_names, main_matrix

from repro.analysis.normalize import average_ratio, normalized_energy, normalized_miss_cycles
from repro.analysis.report import render_table

CONFIGS = ("4KB", "THP", "RMM")


def test_fig02_energy_and_cycles(benchmark):
    results = benchmark.pedantic(main_matrix, rounds=1, iterations=1)
    names = intensive_names()

    energy_rows = []
    cycle_rows = []
    for name in names:
        energy_rows.append(
            [name]
            + [normalized_energy(results, name, config) for config in CONFIGS]
            + [
                results[(name, "4KB")].energy.fraction("page_walk"),
                results[(name, "4KB")].energy.l1_tlb_pj
                / results[(name, "4KB")].total_energy_pj,
            ]
        )
        cycle_rows.append(
            [name] + [normalized_miss_cycles(results, name, config) for config in CONFIGS]
        )
    energy_rows.append(
        ["average"]
        + [
            average_ratio([normalized_energy(results, n, config) for n in names])
            for config in CONFIGS
        ]
        + [float("nan"), float("nan")]
    )
    cycle_rows.append(
        ["average"]
        + [
            average_ratio([normalized_miss_cycles(results, n, config) for n in names])
            for config in CONFIGS
        ]
    )

    text_a = render_table(
        ["workload", "4KB", "THP", "RMM", "walk frac@4KB", "L1 frac@4KB"],
        energy_rows,
        title="Figure 2a — dynamic energy, normalised to 4KB",
    )
    text_b = render_table(
        ["workload", "4KB", "THP", "RMM"],
        cycle_rows,
        title="Figure 2b — TLB-miss cycles, normalised to 4KB",
    )
    emit("fig02_characterization", text_a + "\n\n" + text_b)

    # Shape assertions (paper Section 3).
    thp_cycles = average_ratio([normalized_miss_cycles(results, n, "THP") for n in names])
    assert thp_cycles < 0.45  # paper: 0.17
    rmm_cycles = average_ratio([normalized_miss_cycles(results, n, "RMM") for n in names])
    assert rmm_cycles < thp_cycles  # RMM beats THP on cycles
    assert normalized_energy(results, "cactusADM", "THP") < 1.0
    assert normalized_energy(results, "mcf", "THP") < 1.0
    assert normalized_energy(results, "canneal", "THP") > 1.0
