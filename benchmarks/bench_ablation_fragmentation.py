"""Ablation: THP coverage (memory fragmentation) sensitivity.

The paper's THP configuration assumes a pristine system where every
eligible 2 MB chunk gets a huge page.  Fragmented systems fail some
promotions; this sweep lowers the THP coverage probability and shows the
4KB-config behaviour re-emerging (more walks, more energy) — the
robustness argument for range translations, which eager paging provides
regardless of 2 MB alignment luck.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.analysis.report import render_table
from repro.workloads.registry import get_workload

WORKLOADS = ("cactusADM", "astar")
COVERAGES = (1.0, 0.75, 0.5, 0.25, 0.0)
ACCESSES = max(BENCH_ACCESSES // 2, 100_000)


def run_all():
    out = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        for coverage in COVERAGES:
            settings = ExperimentSettings(trace_accesses=ACCESSES, thp_coverage=coverage)
            out[(name, coverage)] = run_workload_config(workload, "THP", settings)
        out[(name, "RMM_Lite")] = run_workload_config(
            workload, "RMM_Lite", ExperimentSettings(trace_accesses=ACCESSES)
        )
    return out


def test_ablation_thp_fragmentation(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in WORKLOADS:
        rows.append(
            [name, "L2 MPKI"]
            + [data[(name, coverage)].l2_mpki for coverage in COVERAGES]
            + [data[(name, "RMM_Lite")].l2_mpki]
        )
        rows.append(
            [name, "pJ/access"]
            + [data[(name, coverage)].energy_per_access_pj for coverage in COVERAGES]
            + [data[(name, "RMM_Lite")].energy_per_access_pj]
        )
    emit(
        "ablation_fragmentation",
        render_table(
            ["workload", "metric"]
            + [f"THP {int(c * 100)}%" for c in COVERAGES]
            + ["RMM_Lite"],
            rows,
            title="Ablation — THP under fragmentation (huge-page coverage sweep)",
        ),
    )

    for name in WORKLOADS:
        walks = [data[(name, coverage)].l2_mpki for coverage in COVERAGES]
        # Fragmentation degrades THP monotonically (weakly) toward 4KB-like
        # behaviour...
        assert walks[-1] > walks[0]
        # ...while eager-paged ranges are immune.
        assert data[(name, "RMM_Lite")].l2_mpki < 0.05
