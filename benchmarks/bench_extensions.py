"""Extensions beyond the paper's evaluation.

1. **FA_Lite** (Section 4.4 discussion): the SPARC/AMD-style single
   fully-associative mixed L1 TLB with Lite resizing its capacity in
   powers of two — compared against the Intel-style THP/TLB_Lite split.
2. **RMM_PP_Lite** (Section 6.1 future work): "RMM_Lite and TLB_PP are
   orthogonal; a combined approach could use the L1-range TLB for range
   translations, the TLB_PP for pages, and the Lite mechanism" —
   compared against its two parents.
3. **Static energy** (Section 6.2): leakage with and without power-gating
   the ways Lite disables.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import (
    ExperimentSettings,
    run_workload_config,
    run_workload_config_with_org,
)
from repro.analysis.report import render_table
from repro.energy.static import StaticEnergyModel
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=max(BENCH_ACCESSES // 2, 100_000))
WORKLOADS = ("astar", "cactusADM", "mcf", "omnetpp")


def run_all():
    out = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        for config in ("THP", "TLB_Lite", "FA_Lite", "TLB_PP", "RMM_Lite", "RMM_PP_Lite"):
            out[(name, config)] = run_workload_config(workload, config, SETTINGS)
        for config in ("THP", "TLB_Lite"):
            out[(name, config, "org")] = run_workload_config_with_org(
                workload, config, SETTINGS
            )
    return out


def test_extensions(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # --- FA_Lite and RMM_PP_Lite vs their parents -----------------------
    rows = []
    for name in WORKLOADS:
        thp = data[(name, "THP")].total_energy_pj
        rows.append(
            [name]
            + [
                data[(name, config)].total_energy_pj / thp
                for config in ("TLB_Lite", "FA_Lite", "TLB_PP", "RMM_Lite", "RMM_PP_Lite")
            ]
            + [data[(name, "RMM_PP_Lite")].l1_mpki]
        )
    table_a = render_table(
        ["workload", "TLB_Lite", "FA_Lite", "TLB_PP", "RMM_Lite", "RMM_PP_Lite", "combined L1 MPKI"],
        rows,
        title="Extensions — dynamic energy vs THP (FA_Lite = Section 4.4; "
        "RMM_PP_Lite = Section 6.1 combined design)",
    )

    # --- static energy with power gating (Section 6.2) ------------------
    model = StaticEnergyModel()
    static_rows = []
    for name in WORKLOADS:
        result, org = data[(name, "TLB_Lite", "org")]
        thp_result, thp_org = data[(name, "THP", "org")]
        static_rows.append(
            [
                name,
                model.total_leakage_pj(thp_org, thp_result, power_gating=False) / 1e6,
                model.total_leakage_pj(org, result, power_gating=False) / 1e6,
                model.total_leakage_pj(org, result, power_gating=True) / 1e6,
            ]
        )
    table_b = render_table(
        ["workload", "THP leak µJ", "TLB_Lite leak µJ", "TLB_Lite gated µJ"],
        static_rows,
        title="Extensions — leakage energy; power-gating the ways Lite disables "
        "(Section 6.2)",
    )
    emit("extensions", table_a + "\n\n" + table_b)

    for name in WORKLOADS:
        thp = data[(name, "THP")].total_energy_pj
        # The combined design is at least as good as TLB_PP alone.
        assert data[(name, "RMM_PP_Lite")].total_energy_pj < data[
            (name, "TLB_PP")
        ].total_energy_pj * 1.02
        # FA_Lite competes with the Intel-style TLB_Lite.
        assert data[(name, "FA_Lite")].total_energy_pj < thp * 1.05
    for row in static_rows:
        # Gating never increases leakage.
        assert row[3] <= row[2] + 1e-9
