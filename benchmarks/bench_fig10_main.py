"""Figure 10: the paper's main result.

Dynamic address-translation energy (top) and TLB-miss cycles (bottom) for
all six configurations over the TLB-intensive workloads, normalised to
the 4KB configuration.

Paper shapes checked:

* TLB_Lite cuts dynamic energy vs THP (paper −23%) at near-THP cycles;
* RMM keeps L1 energy THP-like (−8%) while eliminating walks;
* TLB_PP sits well below THP (paper −43%) but above RMM_Lite;
* RMM_Lite wins outright (paper −71% energy vs THP, −99% of L1-miss
  cycles on top of RMM's near-zero L2 misses).
"""

from conftest import emit, intensive_names, main_matrix

from repro.analysis.normalize import average_ratio, normalized_energy, normalized_miss_cycles
from repro.analysis.report import render_table
from repro.core.organizations import CONFIG_NAMES


def test_fig10_energy_and_cycles(benchmark):
    results = benchmark.pedantic(main_matrix, rounds=1, iterations=1)
    names = intensive_names()

    def block(metric):
        rows = [
            [name] + [metric(results, name, config) for config in CONFIG_NAMES]
            for name in names
        ]
        rows.append(
            ["average"]
            + [
                average_ratio([metric(results, name, config) for name in names])
                for config in CONFIG_NAMES
            ]
        )
        return rows

    energy_rows = block(normalized_energy)
    cycle_rows = block(normalized_miss_cycles)
    emit(
        "fig10_main",
        render_table(
            ["workload"] + list(CONFIG_NAMES),
            energy_rows,
            title="Figure 10 (top) — dynamic energy, normalised to 4KB",
        )
        + "\n\n"
        + render_table(
            ["workload"] + list(CONFIG_NAMES),
            cycle_rows,
            title="Figure 10 (bottom) — TLB-miss cycles, normalised to 4KB",
        ),
    )

    avg_energy = {
        config: average_ratio([normalized_energy(results, n, config) for n in names])
        for config in CONFIG_NAMES
    }
    avg_cycles = {
        config: average_ratio([normalized_miss_cycles(results, n, config) for n in names])
        for config in CONFIG_NAMES
    }

    # --- ordering of winners, as in the paper --------------------------
    assert avg_energy["TLB_Lite"] < avg_energy["THP"]
    assert avg_energy["RMM"] < avg_energy["THP"]
    assert avg_energy["TLB_PP"] < avg_energy["TLB_Lite"]
    assert avg_energy["RMM_Lite"] == min(avg_energy.values())

    # --- magnitudes (band: who wins by roughly what factor) ------------
    lite_vs_thp = avg_energy["TLB_Lite"] / avg_energy["THP"]
    assert 0.6 < lite_vs_thp < 0.95  # paper: 0.77
    rmm_lite_vs_thp = avg_energy["RMM_Lite"] / avg_energy["THP"]
    assert rmm_lite_vs_thp < 0.6  # paper: 0.29

    # --- cycles ---------------------------------------------------------
    assert avg_cycles["THP"] < 0.45  # paper: 0.17
    assert avg_cycles["RMM_Lite"] < 0.1  # paper: ~0.01
    # TLB_Lite barely hurts cycles relative to THP.
    assert avg_cycles["TLB_Lite"] - avg_cycles["THP"] < 0.12

    # --- RMM_Lite kills L1-miss cycles (paper: -99% vs THP) -------------
    l1_ratio = average_ratio(
        [
            results[(n, "RMM_Lite")].cycles.l1_miss_cycles
            / max(results[(n, "THP")].cycles.l1_miss_cycles, 1)
            for n in names
        ]
    )
    assert l1_ratio < 0.15
