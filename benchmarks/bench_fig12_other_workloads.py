"""Figure 12: dynamic-energy reduction for the remaining workloads.

The rest of SPEC 2006 (top/middle) and PARSEC (bottom) stress the TLBs
far less than the Table 4 set; the paper reports similar savings:
TLB_Lite −26% / −20% (SPEC / PARSEC) and RMM_Lite −72% / −66% vs THP.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_matrix
from repro.analysis.normalize import average_ratio
from repro.analysis.report import render_table
from repro.workloads.registry import other_workloads

SETTINGS = ExperimentSettings(trace_accesses=max(BENCH_ACCESSES // 3, 100_000))
CONFIGS = ("THP", "TLB_Lite", "RMM_Lite")


def run_suite(suite):
    workloads = other_workloads(suite)
    return workloads, run_matrix(workloads, CONFIGS, SETTINGS)


def test_fig12_other_workloads(benchmark):
    def run_all():
        return {suite: run_suite(suite) for suite in ("SPEC 2006", "PARSEC")}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    blocks = []
    suite_means = {}
    for suite, (workloads, results) in data.items():
        rows = []
        lite_ratios = []
        rmm_ratios = []
        for workload in workloads:
            thp = results[(workload.name, "THP")].total_energy_pj
            lite = results[(workload.name, "TLB_Lite")].total_energy_pj / thp
            rmm = results[(workload.name, "RMM_Lite")].total_energy_pj / thp
            lite_ratios.append(lite)
            rmm_ratios.append(rmm)
            rows.append(
                [
                    workload.name,
                    f"{workload.footprint_mb:.0f} MB",
                    results[(workload.name, "THP")].l1_mpki,
                    lite,
                    rmm,
                ]
            )
        rows.append(
            ["average", "", float("nan"), average_ratio(lite_ratios), average_ratio(rmm_ratios)]
        )
        suite_means[suite] = (average_ratio(lite_ratios), average_ratio(rmm_ratios))
        blocks.append(
            render_table(
                ["workload", "memory", "L1 MPKI@THP", "TLB_Lite/THP", "RMM_Lite/THP"],
                rows,
                title=f"Figure 12 — {suite} (energy vs THP)",
            )
        )
    emit("fig12_other_workloads", "\n\n".join(blocks))

    for suite, (lite_mean, rmm_mean) in suite_means.items():
        assert lite_mean < 0.95, suite  # paper: 0.74-0.80
        assert rmm_mean < 0.55, suite  # paper: 0.28-0.34
        assert rmm_mean < lite_mean, suite
