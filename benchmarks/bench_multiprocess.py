"""Extension: multi-programmed TLBs and context-switch cost.

Two TLB-intensive workloads time-share one core.  Sweeping the scheduling
quantum under untagged TLBs (flush per switch) versus PCID-tagged TLBs
shows how the paper's designs behave under context pressure: paging must
re-walk every hot page after each flush, while RMM's range translations
refill the whole address space with a couple of background range walks —
so RMM_Lite's advantage *grows* as switches get more frequent.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.report import render_table
from repro.core.multiprocess import TimeSharingConfig, run_time_shared
from repro.workloads.registry import get_workload

ACCESSES = max(BENCH_ACCESSES // 6, 50_000)
QUANTA = (50_000, 10_000, 2_000)
CONFIGS = ("THP", "RMM_Lite")


def run_all():
    workloads = [get_workload("astar"), get_workload("mummer")]
    out = {}
    for config in CONFIGS:
        for quantum in QUANTA:
            for pcid in (True, False):
                sharing = TimeSharingConfig(
                    quantum_accesses=quantum,
                    accesses_per_process=ACCESSES,
                    pcid=pcid,
                )
                out[(config, quantum, pcid)] = run_time_shared(
                    workloads, config, sharing
                )
    return out


def test_multiprocess_context_switching(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for config in CONFIGS:
        for quantum in QUANTA:
            tagged = data[(config, quantum, True)]
            flushed = data[(config, quantum, False)]
            rows.append(
                [
                    config,
                    quantum,
                    tagged.l2_mpki,
                    flushed.l2_mpki,
                    tagged.miss_cycles,
                    flushed.miss_cycles,
                    flushed.energy_per_access_pj,
                ]
            )
    emit(
        "multiprocess",
        render_table(
            [
                "config",
                "quantum",
                "L2 MPKI (PCID)",
                "L2 MPKI (flush)",
                "cycles (PCID)",
                "cycles (flush)",
                "pJ/acc (flush)",
            ],
            rows,
            title=(
                "Extension — two processes time-sharing the TLBs "
                "(astar + mummer); PCID-tagged vs flush-per-switch"
            ),
        ),
    )

    for config in CONFIGS:
        # Faster switching hurts when TLBs flush...
        assert (
            data[(config, 2_000, False)].miss_cycles
            >= data[(config, 50_000, False)].miss_cycles
        )
        # ...with PCID only capacity contention remains, so the
        # degradation is much smaller than under flushing.
        tagged_cost = (
            data[(config, 2_000, True)].miss_cycles
            - data[(config, 50_000, True)].miss_cycles
        )
        flushed_cost = (
            data[(config, 2_000, False)].miss_cycles
            - data[(config, 50_000, False)].miss_cycles
        )
        assert tagged_cost < flushed_cost
    # Range translations soften the flush cost: at the fastest switch
    # rate RMM_Lite keeps far fewer walk cycles than THP.
    assert (
        data[("RMM_Lite", 2_000, False)].cycles.l2_miss_cycles
        < 0.3 * data[("THP", 2_000, False)].cycles.l2_miss_cycles
    )
