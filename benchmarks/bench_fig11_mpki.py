"""Figure 11: L1 and L2 TLB misses per thousand instructions.

Per workload and configuration, the raw MPKI numbers behind Figure 10's
cycle results.  Checked shapes: every workload is TLB-intensive at 4 KB
pages (the paper's >5 L1 MPKI selection criterion); THP slashes both
miss classes; RMM and RMM_Lite drive L2 misses to ~zero.
"""

from conftest import emit, intensive_names, main_matrix

from repro.analysis.report import render_table
from repro.core.organizations import CONFIG_NAMES


def test_fig11_mpki(benchmark):
    results = benchmark.pedantic(main_matrix, rounds=1, iterations=1)
    names = intensive_names()

    l1_rows = [
        [name] + [results[(name, config)].l1_mpki for config in CONFIG_NAMES]
        for name in names
    ]
    l2_rows = [
        [name] + [results[(name, config)].l2_mpki for config in CONFIG_NAMES]
        for name in names
    ]
    emit(
        "fig11_mpki",
        render_table(
            ["workload"] + list(CONFIG_NAMES),
            l1_rows,
            title="Figure 11 (top) — L1 TLB MPKI",
        )
        + "\n\n"
        + render_table(
            ["workload"] + list(CONFIG_NAMES),
            l2_rows,
            title="Figure 11 (bottom) — L2 TLB MPKI",
        ),
    )

    for name in names:
        # Selection criterion: TLB-intensive at 4 KB pages.
        assert results[(name, "4KB")].l1_mpki > 5, name
        # THP reduces L1 misses.
        assert results[(name, "THP")].l1_mpki < results[(name, "4KB")].l1_mpki
        # Range translations eliminate L2 misses (near-zero walks).
        assert results[(name, "RMM")].l2_mpki < 0.05, name
        assert results[(name, "RMM_Lite")].l2_mpki < 0.05, name
        # RMM_Lite's L1-range TLB nearly eliminates L1 misses too.
        assert (
            results[(name, "RMM_Lite")].l1_mpki
            < 0.5 * results[(name, "THP")].l1_mpki + 0.1
        ), name
