"""Ablation: Lite's ε threshold style and magnitude (Section 4.2.2 / 6.2).

The paper chooses a 12.5% *relative* ε for TLB_Lite and a 0.1-MPKI
*absolute* ε for RMM_Lite, noting that the right style depends on the
reference MPKI.  This ablation sweeps both styles over both organizations
and reports the energy/performance trade-off, making the paper's choice
visible: absolute thresholds are too permissive when the reference MPKI
is high (TLB_Lite), relative thresholds too conservative when it is near
zero (RMM_Lite).
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.analysis.report import render_table
from repro.core.params import LiteParams
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=max(BENCH_ACCESSES // 2, 100_000))
WORKLOADS = ("astar", "mcf", "omnetpp")

VARIANTS = {
    "rel 5%": ("relative", 0.05, 0.0),
    "rel 12.5%": ("relative", 0.125, 0.0),
    "rel 50%": ("relative", 0.5, 0.0),
    "abs 0.1": ("absolute", 0.0, 0.1),
    "abs 1.0": ("absolute", 0.0, 1.0),
}


def run_all():
    interval = SETTINGS.scaled_lite_interval()
    out = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        baselines = {
            "TLB_Lite": run_workload_config(workload, "THP", SETTINGS),
            "RMM_Lite": run_workload_config(workload, "RMM", SETTINGS),
        }
        for config in ("TLB_Lite", "RMM_Lite"):
            for label, (mode, rel, absolute) in VARIANTS.items():
                params = LiteParams(
                    interval_instructions=interval,
                    threshold_mode=mode,
                    epsilon_relative=rel,
                    epsilon_absolute=absolute,
                )
                result = run_workload_config(workload, config, SETTINGS, lite_params=params)
                base = baselines[config]
                out[(config, label, name)] = (
                    result.total_energy_pj / base.total_energy_pj,
                    result.l1_mpki - base.l1_mpki,
                )
    return out


def test_ablation_threshold(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    means = {}
    for config in ("TLB_Lite", "RMM_Lite"):
        for label in VARIANTS:
            ratios = [data[(config, label, name)][0] for name in WORKLOADS]
            deltas = [data[(config, label, name)][1] for name in WORKLOADS]
            means[(config, label)] = sum(ratios) / len(ratios)
            rows.append(
                [
                    config,
                    label,
                    sum(ratios) / len(ratios),
                    sum(deltas) / len(deltas),
                ]
            )
    emit(
        "ablation_threshold",
        render_table(
            ["organization", "epsilon", "energy vs no-Lite base", "extra L1 MPKI"],
            rows,
            title="Ablation — Lite threshold style/magnitude (means over "
            + ", ".join(WORKLOADS)
            + "; base = THP for TLB_Lite, RMM for RMM_Lite)",
        ),
    )

    # Looser thresholds never *increase* energy use.
    assert means[("TLB_Lite", "rel 50%")] <= means[("TLB_Lite", "rel 5%")] + 0.02
    # For RMM_Lite (near-zero reference MPKI) the absolute threshold
    # unlocks the downsizing a relative one forbids — the paper's choice.
    assert means[("RMM_Lite", "abs 0.1")] <= means[("RMM_Lite", "rel 5%")] + 0.01
