"""Ablation: L1-range TLB size (the paper picks 4 entries).

Section 4.3 argues a 4-entry fully-associative L1-range TLB meets L1
timing while serving the bulk of hits.  This sweep varies the entry count
and reports the L1 MPKI and dynamic energy of RMM_Lite, showing the
diminishing returns beyond a handful of entries (each entry maps an
arbitrarily large range, so a few cover every hot VMA).
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.analysis.report import render_table
from repro.core.params import HierarchyParams
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=max(BENCH_ACCESSES // 2, 100_000))
WORKLOADS = ("astar", "mcf", "omnetpp", "GemsFDTD")
SIZES = (1, 2, 4, 8, 16)


def run_all():
    out = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        for entries in SIZES:
            params = HierarchyParams(l1_range_entries=entries)
            result = run_workload_config(
                workload, "RMM_Lite", SETTINGS, hierarchy_params=params
            )
            out[(name, entries)] = result
    return out


def test_ablation_l1_range_size(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in WORKLOADS:
        row = [name]
        for entries in SIZES:
            result = data[(name, entries)]
            row.append(result.l1_mpki)
        rows.append(row)
    energy_rows = []
    for name in WORKLOADS:
        energy_rows.append(
            [name]
            + [data[(name, entries)].energy_per_access_pj for entries in SIZES]
        )
    emit(
        "ablation_range_tlb",
        render_table(
            ["workload"] + [f"{n}e" for n in SIZES],
            rows,
            title="Ablation — RMM_Lite L1 MPKI vs L1-range TLB entries",
        )
        + "\n\n"
        + render_table(
            ["workload"] + [f"{n}e" for n in SIZES],
            energy_rows,
            title="Ablation — RMM_Lite pJ/access vs L1-range TLB entries",
        ),
    )

    for name in WORKLOADS:
        mpki = [data[(name, entries)].l1_mpki for entries in SIZES]
        # More range entries never hurt the miss rate materially...
        assert mpki[-1] <= mpki[0] + 0.1
        # ...and the paper's 4 entries already get within 0.5 MPKI of 16.
        assert data[(name, 4)].l1_mpki <= data[(name, 16)].l1_mpki + 0.5
