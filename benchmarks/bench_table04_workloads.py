"""Table 4: workload inventory (suite, footprint, description).

Also measures trace-generation throughput, the substitution for the
paper's Pin instrumentation.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.workloads.registry import get_workload, tlb_intensive_workloads


def test_table04_workloads(benchmark):
    workloads = tlb_intensive_workloads()

    def generate_all_traces():
        return [workload.trace(100_000, seed=42) for workload in workloads]

    traces = benchmark.pedantic(generate_all_traces, rounds=3, iterations=1)
    assert all(len(trace) == 100_000 for trace in traces)

    rows = [
        [
            workload.name,
            workload.suite,
            f"{workload.footprint_mb:.0f} MB",
            len(workload.vma_specs),
            workload.description,
        ]
        for workload in workloads
    ]
    emit(
        "table04_workloads",
        render_table(
            ["workload", "suite", "memory", "VMAs", "model"],
            rows,
            title="Table 4 — TLB-intensive workloads (footprints match the paper)",
        ),
    )
    # Paper footprints, sanity-pinned.
    assert abs(get_workload("mcf").footprint_mb - 1700) < 100
    assert abs(get_workload("omnetpp").footprint_mb - 165) < 10
