"""Figure 4: L1 TLB MPKI over time with fixed smaller L1-4KB TLBs.

Four configurations per workload, as in the paper:

* Base — 4 KB pages only (the Section 3 "4KB" configuration),
* 64   — THP with the stock 64-entry 4-way L1-4KB TLB,
* 32   — THP with a 32-entry 2-way L1-4KB TLB,
* 16   — THP with a 16-entry direct-mapped L1-4KB TLB.

The windowed aggregate-L1-MPKI series shows (i) most workloads tolerate
smaller L1-4KB TLBs once huge pages serve the bulk of translations, and
(ii) no single size is best for all workloads or all phases — the
motivation for Lite's dynamic resizing.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.analysis.report import render_series, render_table
from repro.core.params import HierarchyParams, SimulationParams
from repro.workloads.registry import tlb_intensive_workloads

SETTINGS = ExperimentSettings(
    trace_accesses=max(BENCH_ACCESSES // 2, 100_000),
    sim_params=SimulationParams(timeline_windows=20),
)

VARIANTS = {
    "Base": ("4KB", HierarchyParams()),
    "64": ("THP", HierarchyParams()),
    "32": ("THP", HierarchyParams().with_l1_4kb(32, 2)),
    "16": ("THP", HierarchyParams().with_l1_4kb(16, 1)),
}


def run_all():
    series = {}
    for workload in tlb_intensive_workloads():
        for label, (config, params) in VARIANTS.items():
            result = run_workload_config(
                workload, config, SETTINGS, hierarchy_params=params
            )
            series[(workload.name, label)] = result
    return series


def test_fig04_timeline(benchmark):
    series = benchmark.pedantic(run_all, rounds=1, iterations=1)

    blocks = []
    summary_rows = []
    for workload in tlb_intensive_workloads():
        name = workload.name
        lines = [f"-- {name} --"]
        for label in VARIANTS:
            result = series[(name, label)]
            points = [
                (f"{sample.instructions // 1000}k", sample.l1_mpki)
                for sample in result.timeline[::2]
            ]
            lines.append(render_series(f"  {label:>4s}", points, float_format="{:.2f}"))
        blocks.append("\n".join(lines))
        summary_rows.append(
            [name] + [series[(name, label)].l1_mpki for label in VARIANTS]
        )
    table = render_table(
        ["workload"] + list(VARIANTS),
        summary_rows,
        title="Figure 4 (summary) — mean aggregate L1 MPKI per configuration",
    )
    emit("fig04_fixed_sizes", table + "\n\n" + "\n\n".join(blocks))

    # Shapes: huge pages make every THP variant far better than Base, and
    # shrinking the L1-4KB TLB monotonically (weakly) increases MPKI.
    for workload in tlb_intensive_workloads():
        name = workload.name
        base = series[(name, "Base")].l1_mpki
        full = series[(name, "64")].l1_mpki
        assert full < base, name
        assert series[(name, "16")].l1_mpki >= full * 0.95, name

    # "No single configuration is optimal": the extra MPKI that the 16-entry
    # TLB costs over 64 entries varies strongly across workloads.
    penalties = {
        name.name: series[(name.name, "16")].l1_mpki - series[(name.name, "64")].l1_mpki
        for name in tlb_intensive_workloads()
    }
    assert max(penalties.values()) > 4 * max(min(penalties.values()), 0.05)
