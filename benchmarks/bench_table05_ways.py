"""Table 5: Lite way activity and L1 hit attribution.

Left half: percentage of lookups executed with 4/2/1 active ways in the
L1-page TLBs, for TLB_Lite (4KB and 2MB TLBs) and RMM_Lite (4KB TLB).
Right half: percentage of L1 hits served by each structure.

Paper shapes checked: RMM_Lite downsizes the L1-4KB TLB far more
aggressively than TLB_Lite (63.7% of lookups at 1 way, thanks to the
L1-range TLB's 84.1% hit share); omnetpp and canneal pin 4 ways.
"""

from conftest import emit, intensive_names, main_matrix

from repro.analysis.report import render_table


def shares_row(result, structure):
    shares = result.way_lookup_shares(structure)
    return [shares.get(4, 0.0) * 100, shares.get(2, 0.0) * 100, shares.get(1, 0.0) * 100]


def test_table05_way_activity_and_hit_shares(benchmark):
    results = benchmark.pedantic(main_matrix, rounds=1, iterations=1)
    names = intensive_names()

    rows = []
    for name in names:
        tlb_lite = results[(name, "TLB_Lite")]
        rmm_lite = results[(name, "RMM_Lite")]
        hits_lite = tlb_lite.hit_shares()
        hits_rmm = rmm_lite.hit_shares()
        rows.append(
            [name]
            + shares_row(tlb_lite, "L1-4KB")
            + shares_row(tlb_lite, "L1-2MB")
            + shares_row(rmm_lite, "L1-4KB")
            + [
                hits_lite.get("L1-4KB", 0.0) * 100,
                hits_lite.get("L1-2MB", 0.0) * 100,
                hits_rmm.get("L1-4KB", 0.0) * 100,
                hits_rmm.get("L1-range", 0.0) * 100,
            ]
        )
    averages = ["average"] + [
        sum(row[column] for row in rows) / len(rows) for column in range(1, len(rows[0]))
    ]
    rows.append(averages)
    emit(
        "table05_ways",
        render_table(
            [
                "workload",
                "Lite4K:4w", "2w", "1w",
                "Lite2M:4w", "2w", "1w",
                "RMM4K:4w", "2w", "1w",
                "hits:4K%", "2M%",
                "rmm:4K%", "range%",
            ],
            rows,
            title="Table 5 — % lookups per active-way count, and L1 hit shares",
            float_format="{:.1f}",
        ),
    )

    averages_by_name = dict(zip([r[0] for r in rows], rows))
    avg = averages_by_name["average"]
    # RMM_Lite runs 1-way much more than TLB_Lite (paper: 63.7% vs 15.9%).
    rmm_lite_1w = avg[9]
    tlb_lite_1w = avg[3]
    assert rmm_lite_1w > 40
    assert rmm_lite_1w > tlb_lite_1w + 20
    # The L1-range TLB dominates RMM_Lite hits (paper: 84.1%).
    assert avg[13] > 70
    # omnetpp and canneal keep all 4 ways under TLB_Lite (paper: 100%).
    for pinned in ("omnetpp", "canneal"):
        assert averages_by_name[pinned][1] > 90, pinned
