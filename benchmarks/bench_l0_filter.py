"""Related-work baseline: TLB filtering (paper Section 7) vs Lite.

The paper's related work cites TLB filters (Xue et al.'s L0 TLB and the
banked/filtering line) as an alternative way to cut L1 probe energy, and
argues Lite is orthogonal to them.  This bench quantifies both claims on
our workloads:

* an 8-entry L0 filter dramatically cuts dynamic energy on workloads
  with tight bursty hot sets, but helps least where probe energy is not
  the bottleneck (canneal keeps its THP-resistant walks);
* combining Lite with the filter is possible, but behind an *effective*
  filter the L1 probes are already rare, so Lite's extra misses can cost
  more L2 energy than the remaining probe energy it saves — orthogonal,
  not automatically synergistic.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.analysis.report import render_table
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=max(BENCH_ACCESSES // 3, 100_000))
WORKLOADS = ("cactusADM", "omnetpp", "mummer", "canneal")
CONFIGS = ("THP", "TLB_Lite", "Banked", "Semantic", "L0_Filter", "L0_Lite")


def run_all():
    return {
        (name, config): run_workload_config(get_workload(name), config, SETTINGS)
        for name in WORKLOADS
        for config in CONFIGS
    }


def test_l0_filter_baseline(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in WORKLOADS:
        thp = data[(name, "THP")].total_energy_pj
        l0_share = data[(name, "L0_Filter")].hit_shares().get("L0-filter", 0.0)
        rows.append(
            [name]
            + [data[(name, config)].total_energy_pj / thp for config in CONFIGS[1:]]
            + [l0_share * 100]
        )
    emit(
        "l0_filter",
        render_table(
            ["workload", "TLB_Lite", "Banked", "Semantic", "L0_Filter", "L0_Lite", "L0 hit share %"],
            rows,
            title="Related-work baselines — energy vs THP (4-bank / semantic-partitioned L1-4KB; 8-entry L0 filter)",
        ),
    )

    for name in WORKLOADS:
        thp = data[(name, "THP")]
        banked = data[(name, "Banked")]
        # Banking trades a cheaper probe for bounded conflict pressure.
        assert banked.total_energy_pj < thp.total_energy_pj, name
        assert banked.l1_mpki < thp.l1_mpki * 2 + 1, name
        filtered = data[(name, "L0_Filter")]
        # Filtering barely changes the miss behaviour (hits served by the
        # L0 stop refreshing L1 recency, so eviction order shifts
        # slightly), while the energy drops a lot.
        assert filtered.l2_misses <= thp.l2_misses * 1.15 + 10, name
        assert filtered.total_energy_pj < thp.total_energy_pj, name
    # The filter helps least where probe energy is not the bottleneck:
    # canneal keeps its THP-resistant walks, so its ratio is the worst.
    ratios = {
        name: data[(name, "L0_Filter")].total_energy_pj
        / data[(name, "THP")].total_energy_pj
        for name in WORKLOADS
    }
    assert ratios["canneal"] == max(ratios.values())
