"""Section 6.2 sensitivity analysis: interval size and random probability.

The paper sweeps Lite's interval from 1 M to 10 M instructions and the
full-reactivation probability from 1/8 to 1/128, finding that shorter
intervals and lower probabilities perform slightly better in both energy
and performance.  Intervals here are scaled to the trace length the same
way the default experiments scale them.
"""

from conftest import BENCH_ACCESSES, emit

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.analysis.report import render_table
from repro.core.params import LiteParams
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=max(BENCH_ACCESSES // 2, 100_000))
WORKLOADS = ("astar", "mcf", "canneal")

BASE_INTERVAL = SETTINGS.scaled_lite_interval()
INTERVALS = {"1x": BASE_INTERVAL, "3x": BASE_INTERVAL * 3, "10x": BASE_INTERVAL * 10}
PROBABILITIES = {"1/8": 1 / 8, "1/32": 1 / 32, "1/128": 1 / 128}


def run_sweep():
    out = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        thp = run_workload_config(workload, "THP", SETTINGS)
        for ilabel, interval in INTERVALS.items():
            for plabel, probability in PROBABILITIES.items():
                params = LiteParams(
                    interval_instructions=interval,
                    threshold_mode="relative",
                    epsilon_relative=0.125,
                    reactivate_probability=probability,
                )
                result = run_workload_config(
                    workload, "TLB_Lite", SETTINGS, lite_params=params
                )
                out[(name, ilabel, plabel)] = (
                    result.total_energy_pj / thp.total_energy_pj,
                    result.miss_cycles / max(thp.miss_cycles, 1),
                )
    return out


def test_sensitivity_interval_and_probability(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for ilabel in INTERVALS:
        for plabel in PROBABILITIES:
            energies = [sweep[(name, ilabel, plabel)][0] for name in WORKLOADS]
            cycles = [sweep[(name, ilabel, plabel)][1] for name in WORKLOADS]
            rows.append(
                [
                    ilabel,
                    plabel,
                    sum(energies) / len(energies),
                    sum(cycles) / len(cycles),
                ]
            )
    emit(
        "sensitivity_lite",
        render_table(
            ["interval", "probability", "energy vs THP", "cycles vs THP"],
            rows,
            title=(
                "Section 6.2 — Lite sensitivity (means over "
                + ", ".join(WORKLOADS)
                + "; interval 1x = paper-equivalent scaling)"
            ),
        ),
    )

    by_key = {(row[0], row[1]): (row[2], row[3]) for row in rows}
    # Lite always saves energy vs THP across the whole sweep.
    assert all(value[0] < 1.0 for value in by_key.values())
    # Paper: lower reactivation probability saves more energy (fewer
    # forced full-power intervals) at the short interval.
    assert by_key[("1x", "1/128")][0] <= by_key[("1x", "1/8")][0] + 0.02
