"""Figure 3: sensitivity of 4KB-page dynamic energy to page-walk locality.

The paper's default model optimistically sends every page-walk memory
reference to the L1 data cache; this sweep re-prices the walk references
as the L1 hit ratio drops from 100% to 0% (misses hit the L2 cache).
mcf — the walk-dominated workload — shows the largest increase (paper:
up to +91%).

The walk-reference *counts* come from the shared 4KB simulations; only
the energy pricing changes, so the sweep is a post-processing pass, as in
the paper's model.
"""

from conftest import emit, intensive_names, main_matrix

from repro.analysis.report import render_table
from repro.energy.model import EnergyModel

RATIOS = (1.0, 0.75, 0.5, 0.25, 0.0)


def reprice(result, ratio: float) -> float:
    """Total energy with walk references priced at the given L1 hit ratio."""
    model = EnergyModel(walk_l1_hit_ratio=ratio)
    base = result.energy
    non_walk = base.total_pj - base.by_component["page_walk"] - base.by_component["range_walk"]
    return non_walk + (result.page_walk_refs + result.range_walk_refs) * model.walk_ref_pj


def test_fig03_walk_locality(benchmark):
    results = benchmark.pedantic(main_matrix, rounds=1, iterations=1)
    names = intensive_names()

    rows = []
    increase_by_name = {}
    for name in names:
        result = results[(name, "4KB")]
        baseline = reprice(result, 1.0)
        series = [reprice(result, ratio) / baseline for ratio in RATIOS]
        increase_by_name[name] = series[-1]
        rows.append([name] + series)
    emit(
        "fig03_walk_locality",
        render_table(
            ["workload"] + [f"{int(r * 100)}% L1" for r in RATIOS],
            rows,
            title=(
                "Figure 3 — 4KB dynamic energy vs page-walk L1-cache hit "
                "ratio (normalised to the 100% column)"
            ),
        ),
    )

    # Shape: energy grows monotonically as locality degrades, most for mcf.
    for name in names:
        result = results[(name, "4KB")]
        base = reprice(result, 1.0)
        assert all(
            reprice(result, hi) <= reprice(result, lo) + 1e-9
            for hi, lo in zip(RATIOS, RATIOS[1:])
        )
        assert reprice(result, 0.0) >= base
    assert increase_by_name["mcf"] == max(increase_by_name.values())
    assert increase_by_name["mcf"] > 1.4  # paper: up to +91% for mcf
