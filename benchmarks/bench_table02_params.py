"""Table 2 + Figure 9: energy parameters and configuration inventory.

Prints the Cacti-derived per-structure energies the simulator uses
(verbatim from the paper's Table 2, plus documented analytic extensions)
and the six simulated configurations.  The timed section measures
organization construction, the fixed cost every experiment pays.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.core.organizations import CONFIG_NAMES, build_organization, paging_policy_for
from repro.energy.cacti import (
    L1_CACHE,
    L2_CACHE_READ_PJ,
    MMU_CACHE_PDE,
    TABLE2_FULLY_ASSOC,
    TABLE2_PAGE_TLB,
    TABLE2_RANGE_TLB,
)
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB


def test_table02_energy_parameters(benchmark):
    def build_everything():
        organizations = []
        for name in CONFIG_NAMES:
            process = Process(PhysicalMemory(1 << 30, seed=1), paging_policy_for(name))
            process.mmap(PAGES_PER_2MB * 2, name="heap")
            organizations.append(build_organization(name, process))
        return organizations

    organizations = benchmark.pedantic(build_everything, rounds=3, iterations=1)

    rows = []
    for (entries, ways), params in sorted(TABLE2_PAGE_TLB.items()):
        rows.append(
            [f"page TLB {entries}e/{ways}w", params.read_pj, params.write_pj, params.leakage_mw]
        )
    for entries, params in sorted(TABLE2_FULLY_ASSOC.items()):
        rows.append([f"fully assoc {entries}e", params.read_pj, params.write_pj, params.leakage_mw])
    for entries, params in sorted(TABLE2_RANGE_TLB.items()):
        rows.append([f"range TLB {entries}e", params.read_pj, params.write_pj, params.leakage_mw])
    rows.append(["MMU-cache PDE 32e/2w", MMU_CACHE_PDE.read_pj, MMU_CACHE_PDE.write_pj, MMU_CACHE_PDE.leakage_mw])
    rows.append(["L1 cache 32KB/8w", L1_CACHE.read_pj, L1_CACHE.write_pj, L1_CACHE.leakage_mw])
    rows.append(["L2 cache (derived)", L2_CACHE_READ_PJ, float("nan"), float("nan")])
    table = render_table(
        ["structure", "read pJ", "write pJ", "leak mW"],
        rows,
        title="Table 2 — per-access dynamic energy (32nm Cacti, paper values)",
    )

    summaries = "\n\n".join(org.summary.render() for org in organizations)
    emit("table02_params", table + "\n\nFigure 9 — simulated configurations\n" + summaries)
    assert len(organizations) == 6
