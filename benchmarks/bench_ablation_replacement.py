"""Ablation: true LRU vs tree-PLRU replacement in the L1-4KB TLB.

The paper's TLBs (and Lite's exactness argument) assume true LRU; real
hardware sometimes ships tree-PLRU.  This ablation drives the workloads'
reference streams through both replacement policies at every Lite way
configuration and compares hit ratios — quantifying how much headroom the
LRU assumption is worth.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.tlb.replacement import PLRUSetAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.workloads.registry import get_workload

WORKLOADS = ("astar", "omnetpp", "canneal")
GEOMETRIES = ((64, 4), (32, 2), (16, 1))
ACCESSES = 150_000


def run_pair(trace, entries, ways):
    lru = SetAssociativeTLB("lru", entries, ways)
    plru = PLRUSetAssociativeTLB("plru", entries, ways)
    for vpn in trace:
        if lru.lookup(vpn) is None:
            lru.fill(vpn, vpn)
        if plru.lookup(vpn) is None:
            plru.fill(vpn, vpn)
    lru.sync_stats()
    plru.sync_stats()
    return lru.stats.hit_ratio, plru.stats.hit_ratio


def run_all():
    out = {}
    for name in WORKLOADS:
        trace = get_workload(name).trace(ACCESSES, seed=11).tolist()
        for entries, ways in GEOMETRIES:
            out[(name, entries, ways)] = run_pair(trace, entries, ways)
    return out


def test_ablation_replacement_policy(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, entries, ways), (lru, plru) in data.items():
        rows.append([f"{name} {entries}e/{ways}w", lru * 100, plru * 100, (lru - plru) * 100])
    emit(
        "ablation_replacement",
        render_table(
            ["tlb", "LRU hit %", "PLRU hit %", "delta pp"],
            rows,
            title="Ablation — LRU vs tree-PLRU hit ratios (L1-4KB geometry sweep)",
            float_format="{:.2f}",
        ),
    )

    for (name, entries, ways), (lru, plru) in data.items():
        # Direct-mapped has no policy; elsewhere PLRU approximates LRU.
        if ways == 1:
            assert abs(lru - plru) < 1e-9
        else:
            assert abs(lru - plru) < 0.05, (name, entries, ways)
