"""How much does TLB_PP's perfect predictor hide?  (Paper Section 6.1.)

The paper evaluates TLB_Pred [41] as TLB_PP — "a perfect predictor with
no energy overhead" — and explicitly notes the results "under report its
true costs".  This bench runs the same mixed hierarchy with a realistic
direct-mapped last-size predictor and reports the gap: misprediction
rate, extra probe energy, and retry cycles.

Finding: with the stable page-size layouts THP produces, the last-size
predictor is >99.8 % accurate and the idealisation hides almost nothing
on the *probe* side — the unmodelled costs of TLB_Pred are the predictor
structure's own lookup energy and design complexity (which neither
variant charges, matching the paper's accounting).
"""

from conftest import MAIN_SETTINGS, emit, intensive_names, main_matrix

from repro.analysis.experiments import run_workload_config_with_org
from repro.analysis.report import render_table
from repro.workloads.registry import get_workload


def run_all():
    matrix = main_matrix()
    realistic = {}
    for name in intensive_names():
        result, org = run_workload_config_with_org(
            get_workload(name), "TLB_Pred", MAIN_SETTINGS
        )
        realistic[name] = (result, org.hierarchy.misprediction_rate)
    return matrix, realistic


def test_tlb_pred_vs_perfect(benchmark):
    matrix, realistic = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in intensive_names():
        perfect = matrix[(name, "TLB_PP")]
        result, mispredict_rate = realistic[name]
        rows.append(
            [
                name,
                mispredict_rate * 100,
                result.total_energy_pj / perfect.total_energy_pj,
                result.miss_cycles / max(perfect.miss_cycles, 1),
            ]
        )
    emit(
        "tlb_pred",
        render_table(
            ["workload", "mispredict %", "energy vs TLB_PP", "cycles vs TLB_PP"],
            rows,
            title=(
                "TLB_Pred with a realistic 512-entry last-size predictor, "
                "relative to the paper's idealised TLB_PP"
            ),
        ),
    )

    for name in intensive_names():
        perfect = matrix[(name, "TLB_PP")]
        result, rate = realistic[name]
        # The realistic predictor never beats the perfect one...
        assert result.total_energy_pj >= perfect.total_energy_pj * 0.995, name
        assert result.miss_cycles >= perfect.miss_cycles * 0.995, name
        # ...but with stable page-size layouts it stays close: the
        # idealisation hides little on these workloads (<15% energy).
        assert result.total_energy_pj <= perfect.total_energy_pj * 1.15, name
        assert rate < 0.1, name
