"""Tests for the multi-programmed (time-shared TLB) extension."""

import numpy as np
import pytest

from repro.core.multiprocess import (
    MAX_PROCESSES,
    NAMESPACE_STRIDE,
    TimeSharingConfig,
    _interleave,
    build_system,
    run_time_shared,
)
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf


def small_workload(tag: str, pages: int = 12) -> Workload:
    return Workload(
        f"mp-{tag}",
        "TEST",
        [VMASpec("heap", pages), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 40), alpha=1.1, burst=3),
        instructions_per_access=3.0,
    )


SHARING = TimeSharingConfig(
    quantum_accesses=2_000, accesses_per_process=10_000, physical_bytes=1 << 29
)


class TestBuildSystem:
    def test_namespaces_disjoint(self):
        workloads = [small_workload("a"), small_workload("b")]
        _org, trace, _events, _ipa = build_system(workloads, "THP", SHARING)
        first = trace[trace < NAMESPACE_STRIDE]
        second = trace[trace >= NAMESPACE_STRIDE]
        assert len(first) == len(second) == 10_000

    def test_every_page_translatable(self):
        workloads = [small_workload("a"), small_workload("b")]
        org, trace, _events, _ipa = build_system(workloads, "THP", SHARING)
        table = org.hierarchy.walker.page_table
        for vpn in np.unique(trace)[::7]:
            table.walk(int(vpn))

    def test_pcid_has_no_events(self):
        _org, _trace, events, _ipa = build_system(
            [small_workload("a"), small_workload("b")], "THP", SHARING
        )
        assert events == []

    def test_no_pcid_schedules_flushes(self):
        sharing = TimeSharingConfig(
            quantum_accesses=2_000,
            accesses_per_process=10_000,
            pcid=False,
            physical_bytes=1 << 29,
        )
        _org, trace, events, _ipa = build_system(
            [small_workload("a"), small_workload("b")], "THP", sharing
        )
        assert len(events) == len(trace) // 2_000 - 1

    def test_process_count_limits(self):
        with pytest.raises(ValueError):
            build_system([], "THP", SHARING)
        with pytest.raises(ValueError):
            build_system(
                [small_workload(str(i)) for i in range(MAX_PROCESSES + 1)],
                "THP",
                SHARING,
            )

    def test_invalid_sharing_config(self):
        with pytest.raises(ValueError):
            TimeSharingConfig(quantum_accesses=0)


class TestInterleave:
    def test_round_robin_order(self):
        a = np.array([1, 1, 1, 1])
        b = np.array([2, 2, 2, 2])
        merged = _interleave([a, b], quantum=2)
        assert merged.tolist() == [1, 1, 2, 2, 1, 1, 2, 2]

    def test_uneven_lengths(self):
        a = np.array([1, 1, 1, 1, 1])
        b = np.array([2])
        merged = _interleave([a, b], quantum=2)
        assert merged.tolist() == [1, 1, 2, 1, 1, 1]
        assert len(merged) == 6


class TestRunTimeShared:
    @pytest.fixture(scope="class")
    def workloads(self):
        return [small_workload("a"), small_workload("b")]

    def test_runs_all_configs(self, workloads):
        for config in ("4KB", "THP", "RMM_Lite"):
            result = run_time_shared(workloads, config, SHARING)
            assert result.accesses == 18_000  # 20k minus 10% warm-up
            assert result.total_energy_pj > 0

    def test_flushing_costs_misses(self, workloads):
        """Without PCID every switch refills the TLBs: more misses."""
        tagged = run_time_shared(workloads, "THP", SHARING)
        flushed = run_time_shared(
            workloads,
            "THP",
            TimeSharingConfig(
                quantum_accesses=2_000,
                accesses_per_process=10_000,
                pcid=False,
                physical_bytes=1 << 29,
            ),
        )
        assert flushed.l1_misses > 2 * tagged.l1_misses
        assert flushed.l2_misses > tagged.l2_misses

    def test_ranges_soften_flush_cost(self):
        """Post-flush refill is cheap with ranges: one entry per VMA
        versus one walk per hot *huge page* — RMM_Lite's advantage grows
        with the switch rate when the hot set spans many huge pages."""
        from repro.workloads.patterns import StridedSet

        def spread_workload(tag):
            # 64 hot pages, each in a different 2 MB page (stride 750).
            return Workload(
                f"spread-{tag}",
                "TEST",
                [VMASpec("heap", 200), VMASpec("stack", 1, thp_eligible=False)],
                lambda regions: StridedSet(
                    regions["heap"], num_pages=64, stride_pages=750, burst=3
                ),
                instructions_per_access=3.0,
            )

        workloads = [spread_workload("a"), spread_workload("b")]
        sharing = TimeSharingConfig(
            quantum_accesses=1_000,
            accesses_per_process=10_000,
            pcid=False,
            physical_bytes=1 << 30,
        )
        thp = run_time_shared(workloads, "THP", sharing)
        rmm_lite = run_time_shared(workloads, "RMM_Lite", sharing)
        assert rmm_lite.l2_misses < 0.2 * thp.l2_misses
        assert rmm_lite.miss_cycles < 0.7 * thp.miss_cycles

    def test_deterministic(self, workloads):
        first = run_time_shared(workloads, "THP", SHARING)
        second = run_time_shared(workloads, "THP", SHARING)
        assert first.l1_misses == second.l1_misses
        assert first.total_energy_pj == second.total_energy_pj
