"""Unit tests for VMAs and the address-space map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.vma import VMA, AddressSpace
from repro.mmu.translation import PAGES_PER_2MB


class TestVMA:
    def test_basic_properties(self):
        vma = VMA(100, 50, name="heap")
        assert vma.end_vpn == 150
        assert vma.bytes == 50 * 4096
        assert vma.contains(100) and vma.contains(149)
        assert not vma.contains(150)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            VMA(0, 0)
        with pytest.raises(ValueError):
            VMA(-1, 5)

    def test_overlap(self):
        a = VMA(0, 10)
        assert a.overlaps(VMA(9, 5))
        assert not a.overlaps(VMA(10, 5))


class TestAddressSpace:
    def test_auto_placement_is_2mb_aligned(self):
        space = AddressSpace()
        first = space.mmap(100)
        second = space.mmap(100)
        assert first.start_vpn % PAGES_PER_2MB == 0
        assert second.start_vpn % PAGES_PER_2MB == 0
        assert second.start_vpn >= first.end_vpn + PAGES_PER_2MB

    def test_deterministic_placement(self):
        layout_a = [AddressSpace().mmap(n).start_vpn for n in (10, 600, 3)]
        # Recreate in the same order -> identical layout.
        space = AddressSpace()
        layout_b = [space.mmap(n).start_vpn for n in (10,)]
        assert layout_a[0] == layout_b[0]

    def test_fixed_placement(self):
        space = AddressSpace()
        vma = space.mmap(10, at_vpn=0x123450)
        assert vma.start_vpn == 0x123450

    def test_overlapping_fixed_rejected(self):
        space = AddressSpace()
        space.mmap(100, at_vpn=1000)
        with pytest.raises(ValueError):
            space.mmap(10, at_vpn=1050)

    def test_find(self):
        space = AddressSpace()
        a = space.mmap(100)
        b = space.mmap(50)
        assert space.find(a.start_vpn + 5) == a
        assert space.find(b.start_vpn) == b
        assert space.find(a.end_vpn + 1) is None
        assert space.find(0) is None

    def test_munmap(self):
        space = AddressSpace()
        a = space.mmap(100)
        space.munmap(a)
        assert space.find(a.start_vpn) is None
        assert len(space) == 0
        with pytest.raises(KeyError):
            space.munmap(a)

    def test_mapped_pages(self):
        space = AddressSpace()
        space.mmap(100)
        space.mmap(28)
        assert space.mapped_pages == 128

    def test_iteration_sorted(self):
        space = AddressSpace()
        space.mmap(100, at_vpn=50_000)
        space.mmap(100, at_vpn=10_000)
        assert [v.start_vpn for v in space] == [10_000, 50_000]


@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=20))
def test_auto_placements_never_overlap(sizes):
    space = AddressSpace()
    vmas = [space.mmap(size) for size in sizes]
    for i, a in enumerate(vmas):
        for b in vmas[i + 1 :]:
            assert not a.overlaps(b)
    for vma in vmas:
        # Every interior page resolves to its VMA.
        assert space.find(vma.start_vpn) == vma
        assert space.find(vma.end_vpn - 1) == vma
