"""Differential inertness suite for the observability layer.

The observability layer (:mod:`repro.observability`) is only allowed to
exist because it is *provably inert*:

* **disabled** — a simulator given a disabled (or no) hub runs the bare
  code path: ``Observability.resolve`` normalizes both to ``None``, and
  the fast engine's generated drains contain no probe instructions
  (asserted against the compiled source itself);
* **enabled** — every per-boundary state digest and the final
  ``SimulationResult`` are byte-identical to a bare run, across all
  hierarchy organizations and both engines, even while exporting
  Prometheus text *during* the run;
* **sweeps** — a ``metrics=True`` sweep's journal is byte-identical to a
  metrics-off sweep's; telemetry lands only in the
  ``<journal>.metrics.json`` sidecar.

The digest harness is shared with the engine-equivalence suite
(:mod:`tests.fastpath_helpers`).
"""

import json

import pytest

from repro.analysis.experiments import ExperimentSettings, prepare_run
from repro.core.fastpath import ENGINES, FastEngine, _generate_drain
from repro.core.organizations import (
    EXTENDED_CONFIG_NAMES,
    build_organization,
    paging_policy_for,
)
from repro.errors import ObservabilityError
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB
from repro.observability import (
    METRICS_SIDECAR_VERSION,
    FastPathProbe,
    MetricsRegistry,
    Observability,
    SpanRecorder,
    aggregate_cell_metrics,
    merge_snapshots,
    metrics_sidecar_path,
    read_metrics_sidecar,
    render_prometheus,
    render_totals_prometheus,
    write_metrics_sidecar,
)
from repro.resilience.bisect import (
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
    record_resumed_trail,
)
from repro.resilience.checkpoint import SimulationCheckpointer
from repro.resilience.sweep import run_resilient_sweep
from repro.workloads.tracefile import as_vpn_array
from tests.fastpath_helpers import (
    SETTINGS,
    run_with_digests,
    small_workload,
    streaky_trace,
)


def natural_trace():
    """The workload's own reference stream (config-independent)."""
    return as_vpn_array(prepare_run(small_workload(), "4KB", SETTINGS).trace)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.boundaries")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["sim.boundaries"] == 5

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("sim.boundaries")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("run.accesses")
        gauge.set(10)
        gauge.set(3)
        assert registry.snapshot()["gauges"]["run.accesses"] == 3

    def test_registration_is_idempotent_per_kind(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("a.b")

    @pytest.mark.parametrize(
        "bad", ["", "Sim.x", "sim..x", "1sim.x", "sim.x-y", "sim x"]
    )
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ObservabilityError, match="invalid metric name"):
            MetricsRegistry().counter(bad)

    def test_scope_prefixes_and_nests(self):
        registry = MetricsRegistry()
        scope = registry.scope("sim").scope("lite")
        scope.counter("resizes").inc()
        assert registry.snapshot()["counters"]["sim.lite.resizes"] == 1

    def test_histogram_buckets_are_cumulative_in_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t.seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            hist.observe(value)
        snap = registry.snapshot()["histograms"]["t.seconds"]
        assert snap["bounds"] == [0.1, 1.0]
        assert snap["buckets"] == [1, 3, 4]  # cumulative, +Inf last
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(3.05)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ObservabilityError, match="ascending"):
            MetricsRegistry().histogram("t.seconds", bounds=(1.0, 0.5))

    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        counter = registry.counter("c.n")
        hist = registry.histogram("h.s", bounds=(1.0,))
        gauge = registry.gauge("g.v")
        counter.inc(3)
        hist.observe(0.5)
        before = registry.snapshot()
        counter.inc(2)
        hist.observe(2.0)
        gauge.set(9)
        delta = registry.delta(before)
        assert delta["counters"]["c.n"] == 2
        assert delta["histograms"]["h.s"]["count"] == 1
        assert delta["histograms"]["h.s"]["buckets"] == [0, 1]
        assert delta["gauges"]["g.v"] == 9  # gauges report current value

    def test_merge_snapshots_sums_and_drops_gauges(self):
        a = MetricsRegistry()
        a.counter("c.n").inc(2)
        a.gauge("g.v").set(5)
        a.histogram("h.s", bounds=(1.0,)).observe(0.5)
        total = merge_snapshots({}, a.snapshot())
        total = merge_snapshots(total, a.snapshot())
        assert total["counters"]["c.n"] == 4
        assert "gauges" not in total
        assert total["histograms"]["h.s"]["count"] == 2
        assert total["histograms"]["h.s"]["buckets"] == [2, 2]

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("sim.boundaries").inc(7)
        registry.gauge("run.accesses").set(100)
        hist = registry.histogram("sim.drain_seconds", bounds=(0.1,))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_sim_boundaries counter\nrepro_sim_boundaries 7" in text
        assert "# TYPE repro_run_accesses gauge\nrepro_run_accesses 100" in text
        assert 'repro_sim_drain_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_sim_drain_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_sim_drain_seconds_count 2" in text
        assert text.endswith("\n")

    def test_render_prometheus_works_on_plain_snapshots(self):
        text = render_prometheus({"counters": {"a.b": 1}}, namespace="x")
        assert text == "# TYPE x_a_b counter\nx_a_b 1\n"


# ----------------------------------------------------------------------
# Span recorder
# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_begin_end_records_duration_and_depth(self):
        recorder = SpanRecorder()
        outer = recorder.begin("run")
        inner = recorder.begin("measured", phase=2)
        recorder.end(inner)
        recorder.end(outer)
        assert [span.name for span in recorder.events] == ["measured", "run"]
        assert recorder.events[0].depth == 1
        assert recorder.events[1].depth == 0
        assert all(span.duration >= 0.0 for span in recorder.events)
        assert recorder.events[0].attrs == {"phase": 2}

    def test_context_manager_and_instant(self):
        recorder = SpanRecorder()
        with recorder.span("checkpoint", boundary=3):
            recorder.instant("lite.resize", before=4, after=2)
        names = [span.name for span in recorder.events]
        assert names == ["lite.resize", "checkpoint"]
        assert recorder.events[0].duration == 0.0

    def test_max_events_caps_and_counts_drops(self):
        recorder = SpanRecorder(max_events=2)
        for index in range(4):
            recorder.instant("tick", index=index)
        assert len(recorder.events) == 2
        assert recorder.dropped == 2

    def test_total_seconds_sums_by_name(self):
        recorder = SpanRecorder()
        with recorder.span("drain"):
            pass
        with recorder.span("drain"):
            pass
        assert recorder.total_seconds("drain") == pytest.approx(
            sum(span.duration for span in recorder.events)
        )

    def test_chrome_trace_document_shape(self):
        recorder = SpanRecorder()
        with recorder.span("measured", accesses=100):
            pass
        document = recorder.chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "measured"
        assert event["args"] == {"accesses": 100}
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0


# ----------------------------------------------------------------------
# The hub
# ----------------------------------------------------------------------
class TestObservabilityHub:
    def test_resolve_normalizes_disabled_to_none(self):
        assert Observability.resolve(None) is None
        assert Observability.resolve(Observability(enabled=False)) is None
        hub = Observability()
        assert Observability.resolve(hub) is hub

    def test_span_methods_are_noops_without_recorder(self):
        hub = Observability(record_spans=False)
        assert hub.begin("x") is None
        hub.end(None)
        hub.instant("x")
        with hub.span("x") as span:
            assert span is None

    def test_chrome_trace_requires_spans(self, tmp_path):
        hub = Observability(record_spans=False)
        with pytest.raises(ObservabilityError, match="span recording is off"):
            hub.write_chrome_trace(tmp_path / "trace.json")

    def test_to_json_carries_version_metrics_and_spans(self):
        hub = Observability()
        hub.registry.counter("a.b").inc()
        with hub.span("run"):
            pass
        document = hub.to_json()
        assert document["metrics_version"] == METRICS_SIDECAR_VERSION
        assert document["metrics"]["counters"] == {"a.b": 1}
        assert [span["name"] for span in document["spans"]] == ["run"]
        assert document["spans_dropped"] == 0


# ----------------------------------------------------------------------
# Compiled-out proof: disabled telemetry is absent from fastpath codegen
# ----------------------------------------------------------------------
class TestCompiledOutCodegen:
    def _hierarchy(self):
        process = Process(PhysicalMemory(1 << 30, seed=0), paging_policy_for("4KB"))
        process.mmap(PAGES_PER_2MB * 2, name="heap")
        return build_organization("4KB", process).hierarchy

    def test_uninstrumented_drain_has_no_probe_code(self):
        drain = _generate_drain(self._hierarchy())
        assert drain is not None
        assert "probe" not in drain.__repro_source__

    def test_instrumented_drain_bumps_probe(self):
        drain = _generate_drain(self._hierarchy(), probe=FastPathProbe())
        assert drain is not None
        assert "probe.coalesced_accesses" in drain.__repro_source__
        assert "probe.drained_segments" in drain.__repro_source__

    def test_fast_engine_defaults_to_no_probe(self):
        prepared = prepare_run(small_workload(), "4KB", SETTINGS, engine="fast")
        engine = FastEngine(
            prepared.organization.hierarchy, as_vpn_array(prepared.trace)
        )
        engine.drain(0, 200)
        drain = engine._drain_for_shape()
        assert drain is not None
        assert "probe" not in drain.__repro_source__


# ----------------------------------------------------------------------
# Differential inertness: off / on / on+export, all configs, both engines
# ----------------------------------------------------------------------
class TestInertness:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("config_name", EXTENDED_CONFIG_NAMES)
    def test_digests_identical_off_on_and_exporting(self, config_name, engine):
        """The tentpole guarantee, one (config, engine) cell at a time.

        Three runs over the same trace: bare, hub enabled, and hub
        enabled while rendering Prometheus text at every interval
        boundary.  All three must agree on every per-boundary state
        digest and on the final result.
        """
        trace = natural_trace()
        bare_trail, bare_result = run_with_digests(config_name, trace, engine)

        hub = Observability()
        on_trail, on_result = run_with_digests(
            config_name, trace, engine, observability=hub
        )

        exporting = Observability()
        exports = []
        exp_trail, exp_result = run_with_digests(
            config_name,
            trace,
            engine,
            observability=exporting,
            on_boundary=lambda boundary: exports.append(
                exporting.render_prometheus()
            ),
        )

        for label, trail, result in (
            ("enabled", on_trail, on_result),
            ("enabled+export", exp_trail, exp_result),
        ):
            divergence = bisect_divergence(bare_trail, trail)
            assert divergence is None, f"{label}: {describe_divergence(divergence)}"
            assert result == bare_result, label

        counters = hub.snapshot()["counters"]
        assert counters["sim.accesses_drained"] == SETTINGS.trace_accesses
        assert counters["sim.boundaries"] == len(on_trail.boundaries)
        assert exports and exports[-1].startswith("# TYPE")
        if engine == "fast":
            assert (
                counters["fastpath.coalesced_accesses"]
                + counters["fastpath.replayed_accesses"]
                == SETTINGS.trace_accesses
            )

    def test_disabled_hub_is_structurally_bare(self):
        prepared = prepare_run(
            small_workload(),
            "4KB",
            SETTINGS,
            observability=Observability(enabled=False),
        )
        assert prepared.simulator.observability is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_streak_splitting_unperturbed_by_telemetry(self, engine):
        """Mid-streak boundary splits under the hub match the bare run."""
        trace = streaky_trace()
        bare_trail, bare_result = run_with_digests(
            "TLB_Lite", trace, engine, events_at=(3_350,)
        )
        on_trail, on_result = run_with_digests(
            "TLB_Lite",
            trace,
            engine,
            events_at=(3_350,),
            observability=Observability(),
        )
        divergence = bisect_divergence(bare_trail, on_trail)
        assert divergence is None, describe_divergence(divergence)
        assert on_result == bare_result

    def test_run_gauges_match_result(self):
        hub = Observability()
        trail = record_digest_trail(
            small_workload(), "TLB_Lite", SETTINGS, engine="fast", observability=hub
        )
        gauges = hub.snapshot()["gauges"]
        assert gauges["run.accesses"] == trail.result.accesses
        assert gauges["run.l1_misses"] == trail.result.l1_misses
        assert gauges["run.page_walks"] == trail.result.page_walks
        names = {span.name for span in hub.spans.events}
        assert {"run", "fast-forward", "measured"} <= names


# ----------------------------------------------------------------------
# Kill-and-resume with the hub attached
# ----------------------------------------------------------------------
class TestResumeInertness:
    @pytest.mark.parametrize("config_name", ("TLB_Lite", "Banked"))
    def test_resumed_run_with_hub_matches_fresh_bare(self, config_name, tmp_path):
        fresh = record_digest_trail(small_workload(), config_name, SETTINGS)
        resumed = record_resumed_trail(
            small_workload(),
            config_name,
            SETTINGS,
            abort_after=4,
            snapshot_path=tmp_path / "cell.ckpt",
            engine="fast",
            observability=Observability(),
        )
        divergence = bisect_divergence(fresh.trail, resumed.trail)
        assert divergence is None, describe_divergence(divergence)
        assert resumed.result == fresh.result

    def test_checkpoint_counters_track_boundaries(self):
        hub = Observability()
        prepared = prepare_run(
            small_workload(), "4KB", SETTINGS, observability=hub
        )
        checkpointer = SimulationCheckpointer(
            prepared.simulator, prepared.process, digest_every=1, observability=hub
        )
        prepared.run(checkpoint_hook=checkpointer)
        counters = hub.snapshot()["counters"]
        assert counters["checkpoint.digests"] == checkpointer.boundaries_seen
        assert counters["checkpoint.snapshots"] == 0
        hist = hub.snapshot()["histograms"]["checkpoint.seconds"]
        assert hist["count"] == checkpointer.boundaries_seen


# ----------------------------------------------------------------------
# Sweep integration: journal byte-identity and the metrics sidecar
# ----------------------------------------------------------------------
SWEEP_CONFIGS = ("4KB", "TLB_Lite")


def _journal_body(path):
    """Journal rows minus the header line, order-normalized."""
    return sorted(path.read_text().splitlines()[1:])


class TestSweepMetrics:
    def test_in_process_sweep_journal_is_byte_identical(self, tmp_path):
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        report = run_resilient_sweep(
            [small_workload()], SWEEP_CONFIGS, SETTINGS, journal_path=on, metrics=True
        )
        bare = run_resilient_sweep(
            [small_workload()], SWEEP_CONFIGS, SETTINGS, journal_path=off
        )
        assert _journal_body(on) == _journal_body(off)
        assert [cell.row for cell in report.cells] == [
            cell.row for cell in bare.cells
        ]
        assert bare.metrics is None
        assert not metrics_sidecar_path(off).exists()

    def test_sidecar_carries_cells_and_totals(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        report = run_resilient_sweep(
            [small_workload()],
            SWEEP_CONFIGS,
            SETTINGS,
            journal_path=journal,
            metrics=True,
        )
        document = read_metrics_sidecar(metrics_sidecar_path(journal))
        assert document["metrics_version"] == METRICS_SIDECAR_VERSION
        assert sorted(document["cells"]) == [
            f"fastpath|{config}" for config in SWEEP_CONFIGS
        ]
        totals = document["totals"]
        assert totals["counters"]["sim.accesses_drained"] == SETTINGS.trace_accesses * len(
            SWEEP_CONFIGS
        )
        assert report.metrics["totals"] == totals
        assert render_totals_prometheus(document).startswith("# TYPE")

    def test_resumed_sweep_merges_prior_sidecar(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = run_resilient_sweep(
            [small_workload()],
            SWEEP_CONFIGS,
            SETTINGS,
            journal_path=journal,
            metrics=True,
            max_cells=1,
        )
        assert first.interrupted
        second = run_resilient_sweep(
            [small_workload()],
            SWEEP_CONFIGS,
            SETTINGS,
            journal_path=journal,
            resume=True,
            metrics=True,
        )
        # The resumed cell never re-ran, so its metrics come from the
        # first run's sidecar; both cells must be present in the merge.
        assert sorted(second.metrics["cells"]) == [
            f"fastpath|{config}" for config in SWEEP_CONFIGS
        ]
        assert second.metrics["totals"]["counters"][
            "sim.accesses_drained"
        ] == SETTINGS.trace_accesses * len(SWEEP_CONFIGS)

    def test_supervised_sweep_reports_worker_metrics(self, tmp_path):
        # Worker processes rebuild their cell from the registry, so this
        # test needs a *registered* workload (not the local fixture).
        from repro.workloads.registry import get_workload

        settings = ExperimentSettings(
            trace_accesses=4_000, seed=7, physical_bytes=4 << 30
        )
        journal = tmp_path / "sup.jsonl"
        report = run_resilient_sweep(
            [get_workload("mcf")],
            SWEEP_CONFIGS,
            settings,
            journal_path=journal,
            workers=1,
            metrics=True,
        )
        assert [cell.status for cell in report.cells] == ["ok", "ok"]
        assert all(cell.metrics is not None for cell in report.cells)
        document = read_metrics_sidecar(metrics_sidecar_path(journal))
        assert document["totals"]["counters"][
            "sim.accesses_drained"
        ] == settings.trace_accesses * len(SWEEP_CONFIGS)

    def test_aggregate_overlays_fresh_over_existing(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        registry = MetricsRegistry()
        registry.counter("c.n").inc(5)
        write_metrics_sidecar(
            journal,
            aggregate_cell_metrics({"wl|A": registry.snapshot()}),
        )
        fresh_registry = MetricsRegistry()
        fresh_registry.counter("c.n").inc(1)
        merged = aggregate_cell_metrics(
            {"wl|B": fresh_registry.snapshot()},
            existing_path=metrics_sidecar_path(journal),
        )
        assert sorted(merged["cells"]) == ["wl|A", "wl|B"]
        assert merged["totals"]["counters"]["c.n"] == 6

    def test_read_sidecar_rejects_missing_and_bad_version(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no metrics sidecar"):
            read_metrics_sidecar(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"metrics_version": 999}))
        with pytest.raises(ObservabilityError, match="version"):
            read_metrics_sidecar(bad)


# ----------------------------------------------------------------------
# CLI: python -m repro metrics / sweep --metrics
# ----------------------------------------------------------------------
class TestMetricsCLI:
    def test_text_table(self, capsys):
        from repro.__main__ import main

        code = main(
            ["metrics", "mcf", "--config", "4KB", "--accesses", "4000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sim.boundaries" in out
        assert "counter" in out

    def test_prometheus_and_json_formats(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "metrics",
                    "mcf",
                    "--config",
                    "4KB",
                    "--accesses",
                    "4000",
                    "--format",
                    "prometheus",
                ]
            )
            == 0
        )
        prom = capsys.readouterr().out
        assert prom.startswith("# TYPE repro_")

        assert (
            main(
                [
                    "metrics",
                    "mcf",
                    "--config",
                    "4KB",
                    "--accesses",
                    "4000",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["metrics_version"] == METRICS_SIDECAR_VERSION
        assert "sim.boundaries" in document["metrics"]["counters"]

    def test_chrome_trace_export(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "metrics",
                "mcf",
                "--config",
                "4KB",
                "--accesses",
                "4000",
                "--chrome-trace",
                str(trace_path),
            ]
        )
        assert code == 0
        document = json.loads(trace_path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert {"run", "measured"} <= names

    def test_journal_mode_reads_sidecar(self, tmp_path, capsys):
        from repro.__main__ import main

        journal = tmp_path / "sweep.jsonl"
        run_resilient_sweep(
            [small_workload()],
            SWEEP_CONFIGS,
            SETTINGS,
            journal_path=journal,
            metrics=True,
        )
        capsys.readouterr()
        assert main(["metrics", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "aggregated over 2 cells" in out
        assert "sim.accesses_drained" in out

    def test_requires_workload_or_journal(self, capsys):
        from repro.__main__ import main

        assert main(["metrics"]) == 2
        assert "workload is required" in capsys.readouterr().err

    def test_sweep_metrics_flag_writes_sidecar(self, tmp_path, capsys):
        from repro.__main__ import main

        journal = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep",
                "mcf",
                "--accesses",
                "4000",
                "--journal",
                str(journal),
                "--metrics",
                "--workers",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics: 6 cells" in out
        assert metrics_sidecar_path(journal).exists()
