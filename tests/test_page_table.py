"""Unit tests for the four-level radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mmu.page_table import PageFault, PageTable
from repro.mmu.translation import PAGES_PER_2MB, PageSize, Translation


class TestMapping:
    def test_map_and_lookup_4kb(self):
        pt = PageTable()
        pt.map(Translation(42, 99, PageSize.SIZE_4KB))
        leaf = pt.lookup(42)
        assert leaf.pfn == 99
        assert pt.lookup(43) is None

    def test_map_and_lookup_2mb(self):
        pt = PageTable()
        pt.map(Translation(512, 1024, PageSize.SIZE_2MB))
        assert pt.lookup(512).page_size is PageSize.SIZE_2MB
        assert pt.lookup(1023) is pt.lookup(512)
        assert pt.lookup(1024) is None

    def test_map_and_lookup_1gb(self):
        pt = PageTable()
        size = PageSize.SIZE_1GB
        pt.map(Translation(int(size), 0, size))
        assert pt.lookup(int(size) + 12345).page_size is size

    def test_translate(self):
        pt = PageTable()
        pt.map(Translation(512, 2048, PageSize.SIZE_2MB))
        assert pt.translate(600) == 2048 + 88

    def test_double_map_rejected(self):
        pt = PageTable()
        pt.map(Translation(7, 1, PageSize.SIZE_4KB))
        with pytest.raises(ValueError):
            pt.map(Translation(7, 2, PageSize.SIZE_4KB))

    def test_4kb_under_huge_page_rejected(self):
        pt = PageTable()
        pt.map(Translation(0, 0, PageSize.SIZE_2MB))
        with pytest.raises(ValueError):
            pt.map(Translation(5, 1, PageSize.SIZE_4KB))

    def test_huge_page_over_4kb_rejected(self):
        pt = PageTable()
        pt.map(Translation(5, 1, PageSize.SIZE_4KB))
        with pytest.raises(ValueError):
            pt.map(Translation(0, 0, PageSize.SIZE_2MB))

    def test_walk_raises_on_unmapped(self):
        pt = PageTable()
        with pytest.raises(PageFault) as excinfo:
            pt.walk(1234)
        assert excinfo.value.vpn4k == 1234


class TestUnmapping:
    def test_unmap_returns_leaf(self):
        pt = PageTable()
        pt.map(Translation(42, 99, PageSize.SIZE_4KB))
        leaf = pt.unmap(42)
        assert leaf.pfn == 99
        assert pt.lookup(42) is None

    def test_unmap_huge_by_interior_page(self):
        pt = PageTable()
        pt.map(Translation(512, 1024, PageSize.SIZE_2MB))
        leaf = pt.unmap(700)  # any page inside works
        assert leaf.page_size is PageSize.SIZE_2MB
        assert pt.lookup(512) is None

    def test_unmap_unmapped_raises(self):
        pt = PageTable()
        with pytest.raises(PageFault):
            pt.unmap(1)

    def test_mapped_bytes_accounting(self):
        pt = PageTable()
        pt.map(Translation(0, 0, PageSize.SIZE_2MB))
        pt.map(Translation(PAGES_PER_2MB, 600, PageSize.SIZE_4KB))
        assert pt.mapped_bytes == (2 << 20) + 4096
        pt.unmap(0)
        assert pt.mapped_bytes == 4096


class TestIntrospection:
    def test_iter_translations_in_address_order(self):
        pt = PageTable()
        pt.map(Translation(1024, 4096, PageSize.SIZE_2MB))
        pt.map(Translation(5, 1, PageSize.SIZE_4KB))
        pt.map(Translation(3, 2, PageSize.SIZE_4KB))
        vpns = [t.vpn for t in pt.iter_translations()]
        assert vpns == [3, 5, 1024]

    def test_count_nodes(self):
        pt = PageTable()
        pt.map(Translation(0, 0, PageSize.SIZE_4KB))
        counts = pt.count_nodes()
        assert counts == {4: 1, 3: 1, 2: 1, 1: 1}
        pt.map(Translation(PAGES_PER_2MB, 512, PageSize.SIZE_2MB))
        counts = pt.count_nodes()
        assert counts[1] == 1  # 2MB leaf lives at level 2, no new PT node


@settings(max_examples=40, deadline=None)
@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=60, unique=True
    )
)
def test_map_lookup_unmap_roundtrip(vpns):
    pt = PageTable()
    for index, vpn in enumerate(vpns):
        pt.map(Translation(vpn, index * 2, PageSize.SIZE_4KB))
    for index, vpn in enumerate(vpns):
        assert pt.translate(vpn) == index * 2
    assert sorted(t.vpn for t in pt.iter_translations()) == sorted(vpns)
    for vpn in vpns:
        pt.unmap(vpn)
    assert pt.mapped_bytes == 0


@settings(max_examples=30, deadline=None)
@given(chunks=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=30, unique=True))
def test_mixed_sizes_cover_disjoint_pages(chunks):
    """Alternating 2MB/4KB mappings translate consistently."""
    pt = PageTable()
    expected = {}
    for index, chunk in enumerate(chunks):
        base = chunk * PAGES_PER_2MB
        if index % 2 == 0:
            pt.map(Translation(base, base + PAGES_PER_2MB, PageSize.SIZE_2MB))
            expected[base + 37] = base + PAGES_PER_2MB + 37
        else:
            pt.map(Translation(base + 3, 7 * index, PageSize.SIZE_4KB))
            expected[base + 3] = 7 * index
    for vpn, pfn in expected.items():
        assert pt.translate(vpn) == pfn
