"""Tests for trace file I/O and replaying saved traces."""

import json

import numpy as np
import pytest

from repro.core.organizations import build_organization, paging_policy_for
from repro.core.simulator import Simulator
from repro.errors import TraceError, TraceIOError
from repro.mem.physical import PhysicalMemory
from repro.workloads.registry import get_workload
from repro.workloads.tracefile import (
    TraceMetadata,
    export_workload_trace,
    load_trace,
    save_trace,
    workload_from_metadata,
)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = np.arange(100, dtype=np.int64)
        metadata = TraceMetadata(workload="toy", instructions_per_access=2.5, seed=7)
        save_trace(tmp_path / "toy", trace, metadata)
        loaded, meta = load_trace(tmp_path / "toy")
        assert np.array_equal(loaded, trace)
        assert meta.workload == "toy"
        assert meta.instructions_per_access == 2.5
        assert meta.seed == 7

    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nothing")

    def test_invalid_trace_rejected(self, tmp_path):
        metadata = TraceMetadata(workload="x", instructions_per_access=1.0)
        with pytest.raises(ValueError):
            save_trace(tmp_path / "bad", [], metadata)
        with pytest.raises(ValueError):
            save_trace(tmp_path / "bad", [-1], metadata)

    def test_version_check(self, tmp_path):
        trace = np.arange(10, dtype=np.int64)
        save_trace(tmp_path / "v", trace, TraceMetadata("x", 1.0))
        payload = json.loads((tmp_path / "v.json").read_text())
        payload["format_version"] = 999
        (tmp_path / "v.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_trace(tmp_path / "v")


class TestCorruptionRoundTrip:
    """Every corruption of an on-disk trace maps to a TraceError, never a
    raw numpy/json traceback."""

    @pytest.fixture
    def saved(self, tmp_path):
        trace = np.arange(64, dtype=np.int64)
        save_trace(tmp_path / "t", trace, TraceMetadata("toy", 2.0, seed=1))
        return tmp_path / "t"

    def test_missing_sidecar_names_the_file(self, saved):
        saved.with_suffix(".json").unlink()
        with pytest.raises(TraceIOError) as excinfo:
            load_trace(saved)
        assert ".json" in str(excinfo.value)
        assert isinstance(excinfo.value, FileNotFoundError)

    def test_truncated_npy_rejected(self, saved):
        npy = saved.with_suffix(".npy")
        npy.write_bytes(npy.read_bytes()[:20])
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_garbage_npy_rejected(self, saved):
        saved.with_suffix(".npy").write_bytes(b"\x00" * 64)
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_wrong_dtype_rejected(self, saved):
        np.save(saved.with_suffix(".npy"), np.linspace(0.0, 1.0, 16))
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_wrong_shape_rejected(self, saved):
        np.save(saved.with_suffix(".npy"), np.zeros((4, 4), dtype=np.int64))
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_negative_page_numbers_rejected(self, saved):
        np.save(saved.with_suffix(".npy"), np.array([3, -1, 5], dtype=np.int64))
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_unparsable_json_rejected(self, saved):
        saved.with_suffix(".json").write_text("{not json")
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_missing_metadata_key_rejected(self, saved):
        payload = json.loads(saved.with_suffix(".json").read_text())
        del payload["instructions_per_access"]
        saved.with_suffix(".json").write_text(json.dumps(payload))
        with pytest.raises(TraceError):
            load_trace(saved)

    def test_bad_ipa_rejected(self, saved):
        payload = json.loads(saved.with_suffix(".json").read_text())
        for bad in (0, -2.5, True, "fast"):
            payload["instructions_per_access"] = bad
            saved.with_suffix(".json").write_text(json.dumps(payload))
            with pytest.raises(TraceError):
                load_trace(saved)

    def test_errors_stay_valueerrors(self, saved):
        """Backward compatibility: TraceError subclasses ValueError."""
        saved.with_suffix(".json").write_text("{not json")
        with pytest.raises(ValueError):
            load_trace(saved)


class TestWorkloadExport:
    def test_export_records_layout(self, tmp_path):
        workload = get_workload("povray")
        export_workload_trace(workload, 2_000, tmp_path / "povray", seed=3)
        trace, metadata = load_trace(tmp_path / "povray")
        assert len(trace) == 2_000
        names = {vma["name"] for vma in metadata.vmas}
        assert names == {"heap", "stack"}

    def test_replay_matches_direct_simulation(self, tmp_path):
        """Saving + replaying a trace reproduces the direct run exactly."""
        workload = get_workload("povray")
        export_workload_trace(workload, 5_000, tmp_path / "w", seed=5)
        trace, metadata = load_trace(tmp_path / "w")

        def simulate(wl, trc):
            process = wl.build_process(
                paging_policy_for("THP"), PhysicalMemory(1 << 28, seed=1)
            )
            org = build_organization("THP", process)
            sim = Simulator(
                org, instructions_per_access=wl.instructions_per_access
            )
            return sim.run(trc, fast_forward_accesses=500)

        direct = simulate(workload, workload.trace(5_000, seed=5))
        replay = simulate(workload_from_metadata(metadata), trace)
        assert direct.l1_misses == replay.l1_misses
        assert direct.l2_misses == replay.l2_misses
        assert direct.total_energy_pj == pytest.approx(replay.total_energy_pj)

    def test_loaded_workload_cannot_regenerate(self, tmp_path):
        workload = get_workload("povray")
        export_workload_trace(workload, 1_000, tmp_path / "w")
        _, metadata = load_trace(tmp_path / "w")
        loaded = workload_from_metadata(metadata)
        with pytest.raises(TypeError):
            loaded.trace(10)

    def test_metadata_without_layout_rejected(self):
        with pytest.raises(ValueError):
            workload_from_metadata(TraceMetadata("x", 1.0))
