"""Tests for trace file I/O and replaying saved traces."""

import json

import numpy as np
import pytest

from repro.core.organizations import build_organization, paging_policy_for
from repro.core.simulator import Simulator
from repro.mem.physical import PhysicalMemory
from repro.workloads.registry import get_workload
from repro.workloads.tracefile import (
    TraceMetadata,
    export_workload_trace,
    load_trace,
    save_trace,
    workload_from_metadata,
)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = np.arange(100, dtype=np.int64)
        metadata = TraceMetadata(workload="toy", instructions_per_access=2.5, seed=7)
        save_trace(tmp_path / "toy", trace, metadata)
        loaded, meta = load_trace(tmp_path / "toy")
        assert np.array_equal(loaded, trace)
        assert meta.workload == "toy"
        assert meta.instructions_per_access == 2.5
        assert meta.seed == 7

    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nothing")

    def test_invalid_trace_rejected(self, tmp_path):
        metadata = TraceMetadata(workload="x", instructions_per_access=1.0)
        with pytest.raises(ValueError):
            save_trace(tmp_path / "bad", [], metadata)
        with pytest.raises(ValueError):
            save_trace(tmp_path / "bad", [-1], metadata)

    def test_version_check(self, tmp_path):
        trace = np.arange(10, dtype=np.int64)
        save_trace(tmp_path / "v", trace, TraceMetadata("x", 1.0))
        payload = json.loads((tmp_path / "v.json").read_text())
        payload["format_version"] = 999
        (tmp_path / "v.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_trace(tmp_path / "v")


class TestWorkloadExport:
    def test_export_records_layout(self, tmp_path):
        workload = get_workload("povray")
        export_workload_trace(workload, 2_000, tmp_path / "povray", seed=3)
        trace, metadata = load_trace(tmp_path / "povray")
        assert len(trace) == 2_000
        names = {vma["name"] for vma in metadata.vmas}
        assert names == {"heap", "stack"}

    def test_replay_matches_direct_simulation(self, tmp_path):
        """Saving + replaying a trace reproduces the direct run exactly."""
        workload = get_workload("povray")
        export_workload_trace(workload, 5_000, tmp_path / "w", seed=5)
        trace, metadata = load_trace(tmp_path / "w")

        def simulate(wl, trc):
            process = wl.build_process(
                paging_policy_for("THP"), PhysicalMemory(1 << 28, seed=1)
            )
            org = build_organization("THP", process)
            sim = Simulator(
                org, instructions_per_access=wl.instructions_per_access
            )
            return sim.run(trc, fast_forward_accesses=500)

        direct = simulate(workload, workload.trace(5_000, seed=5))
        replay = simulate(workload_from_metadata(metadata), trace)
        assert direct.l1_misses == replay.l1_misses
        assert direct.l2_misses == replay.l2_misses
        assert direct.total_energy_pj == pytest.approx(replay.total_energy_pj)

    def test_loaded_workload_cannot_regenerate(self, tmp_path):
        workload = get_workload("povray")
        export_workload_trace(workload, 1_000, tmp_path / "w")
        _, metadata = load_trace(tmp_path / "w")
        loaded = workload_from_metadata(metadata)
        with pytest.raises(TypeError):
            loaded.trace(10)

    def test_metadata_without_layout_rejected(self):
        with pytest.raises(ValueError):
            workload_from_metadata(TraceMetadata("x", 1.0))
