"""Tests for the six configuration builders and their energy bindings."""

import pytest

from repro.core.organizations import (
    CONFIG_NAMES,
    build_4kb,
    build_organization,
    build_rmm,
    build_rmm_lite,
    build_thp,
    build_tlb_lite,
    build_tlb_pp,
    paging_policy_for,
)
from repro.core.params import HierarchyParams, LiteParams
from repro.energy.cacti import TABLE2_PAGE_TLB
from repro.mem.paging import DemandPaging, EagerPaging, TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB


def make_process(policy):
    process = Process(PhysicalMemory(1 << 30, seed=3), policy)
    process.mmap(PAGES_PER_2MB * 2 + 64, name="heap")
    process.mmap(64, name="stack", thp_eligible=False)
    return process


class TestBuilders:
    def test_4kb_structures(self):
        org = build_4kb(make_process(DemandPaging()))
        names = {s.name for s in org.hierarchy.all_structures()}
        assert {"L1-4KB", "L1-2MB", "L1-1GB", "L2-4KB"} <= names
        assert org.lite is None
        assert org.hierarchy.l2_range is None

    def test_thp_same_structures_as_4kb(self):
        org = build_thp(make_process(TransparentHugePaging()))
        assert org.name == "THP"
        assert org.hierarchy.l1_range is None

    def test_tlb_lite_monitors_all_l1_page_tlbs(self):
        """Paper Section 4.2.2: Lite resizes the 4KB, 2MB, *and* 1GB TLBs."""
        org = build_tlb_lite(make_process(TransparentHugePaging()))
        monitored = {unit.name for unit in org.lite.units}
        assert monitored == {"L1-4KB", "L1-2MB", "L1-1GB"}

    def test_rmm_has_l2_range_only(self):
        org = build_rmm(make_process(EagerPaging("thp")))
        assert org.hierarchy.l2_range is not None
        assert org.hierarchy.l1_range is None

    def test_rmm_requires_ranges(self):
        with pytest.raises(ValueError):
            build_rmm(make_process(DemandPaging()))

    def test_rmm_lite_shape(self):
        org = build_rmm_lite(make_process(EagerPaging("4kb")))
        assert org.hierarchy.l1_range is not None
        assert org.hierarchy.l1_range.entries == 4
        assert org.hierarchy.l2_range.entries == 32
        # The huge-page L1 TLBs are replaced by the L1-range TLB.
        assert len(org.hierarchy.l1_slots) == 1
        assert org.lite is not None
        assert org.lite.params.threshold_mode == "absolute"

    def test_tlb_pp_oracle_covers_huge_chunks(self):
        process = make_process(TransparentHugePaging())
        org = build_tlb_pp(process)
        heap = next(iter(process.address_space))
        assert (heap.start_vpn >> 9) in org.hierarchy._huge_chunks
        assert org.hierarchy.l1_mixed.entries == 64

    def test_custom_hierarchy_params(self):
        params = HierarchyParams().with_l1_4kb(16, 1)
        org = build_thp(make_process(TransparentHugePaging()), params)
        l1 = org.hierarchy.l1_slots[0].tlb
        assert l1.entries == 16
        assert l1.ways == 1

    def test_build_organization_dispatch(self):
        for name in CONFIG_NAMES:
            policy = paging_policy_for(name)
            org = build_organization(name, make_process(policy))
            assert org.name == name
        with pytest.raises(KeyError):
            build_organization("bogus", make_process(DemandPaging()))

    def test_summary_renders(self):
        org = build_rmm_lite(make_process(EagerPaging("4kb")))
        text = org.summary.render()
        assert "L1-range" in text
        assert "Lite" in text


class TestPolicies:
    def test_policy_mapping(self):
        assert isinstance(paging_policy_for("4KB"), DemandPaging)
        assert isinstance(paging_policy_for("THP"), TransparentHugePaging)
        assert isinstance(paging_policy_for("TLB_Lite"), TransparentHugePaging)
        assert isinstance(paging_policy_for("TLB_PP"), TransparentHugePaging)
        rmm = paging_policy_for("RMM")
        assert isinstance(rmm, EagerPaging) and rmm.page_layout == "thp"
        rmm_lite = paging_policy_for("RMM_Lite")
        assert isinstance(rmm_lite, EagerPaging) and rmm_lite.page_layout == "4kb"
        with pytest.raises(KeyError):
            paging_policy_for("nope")

    def test_thp_coverage_forwarded(self):
        policy = paging_policy_for("THP", thp_coverage=0.5)
        assert policy.coverage == 0.5


class TestEnergyBindings:
    def test_every_structure_has_a_binding(self):
        org = build_rmm_lite(make_process(EagerPaging("4kb")))
        bound = {binding.name for binding in org.bindings}
        structures = {s.name for s in org.hierarchy.all_structures()}
        assert bound == structures

    def test_l1_4kb_binding_follows_table2(self):
        org = build_thp(make_process(TransparentHugePaging()))
        binding = next(b for b in org.bindings if b.name == "L1-4KB")
        for ways, key in ((4, (64, 4)), (2, (32, 2)), (1, (16, 1))):
            assert binding.params_for_ways(ways) == TABLE2_PAGE_TLB[key]

    def test_l1_2mb_binding_follows_table2(self):
        org = build_thp(make_process(TransparentHugePaging()))
        binding = next(b for b in org.bindings if b.name == "L1-2MB")
        assert binding.params_for_ways(4) == TABLE2_PAGE_TLB[(32, 4)]
        assert binding.params_for_ways(1) == TABLE2_PAGE_TLB[(8, 1)]

    def test_components_labelled(self):
        org = build_rmm_lite(make_process(EagerPaging("4kb")))
        components = {binding.component for binding in org.bindings}
        assert {"l1_page_tlbs", "l1_range_tlb", "l2_page_tlb", "l2_range_tlb", "mmu_cache"} == components

    def test_lite_params_override(self):
        lite_params = LiteParams(interval_instructions=5_000, seed=9)
        org = build_tlb_lite(make_process(TransparentHugePaging()), lite_params=lite_params)
        assert org.lite.params.interval_instructions == 5_000
