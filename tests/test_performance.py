"""Tests for the Table 3 cycle model."""

import pytest

from repro.energy.performance import (
    L2_LOOKUP_CYCLES,
    PAGE_WALK_CYCLES,
    miss_cycles,
    mpki,
)


class TestCycleModel:
    def test_constants_match_paper(self):
        assert L2_LOOKUP_CYCLES == 7
        assert PAGE_WALK_CYCLES == 50

    def test_miss_cycles(self):
        breakdown = miss_cycles(l1_misses=10, l2_misses=3, instructions=1000)
        assert breakdown.l1_miss_cycles == 70
        assert breakdown.l2_miss_cycles == 150
        assert breakdown.total_cycles == 220

    def test_l1_hits_cost_nothing(self):
        breakdown = miss_cycles(l1_misses=0, l2_misses=0, instructions=1000)
        assert breakdown.total_cycles == 0

    def test_cycles_per_kilo_instruction(self):
        breakdown = miss_cycles(l1_misses=100, l2_misses=0, instructions=10_000)
        assert breakdown.cycles_per_kilo_instruction == pytest.approx(70.0)

    def test_zero_instructions(self):
        breakdown = miss_cycles(l1_misses=5, l2_misses=5, instructions=0)
        assert breakdown.cycles_per_kilo_instruction == 0.0


class TestMPKI:
    def test_basic(self):
        assert mpki(50, 10_000) == pytest.approx(5.0)

    def test_zero_instructions(self):
        assert mpki(50, 0) == 0.0

    def test_zero_events(self):
        assert mpki(0, 1000) == 0.0
