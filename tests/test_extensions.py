"""Tests for the extension configurations: FA_Lite and RMM_PP_Lite.

FA_Lite implements the paper's Section 4.4 discussion (single fully-
associative mixed L1 TLB, Lite resizing its capacity); RMM_PP_Lite the
Section 6.1 combined future-work design (TLB_PP pages + L1-range TLB +
Lite).
"""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.core.organizations import (
    EXTENDED_CONFIG_NAMES,
    build_fa_lite,
    build_organization,
    build_rmm_pp_lite,
    paging_policy_for,
)
from repro.mem.paging import EagerPaging, TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Mixture, UniformRandom, Zipf


def make_process(policy):
    process = Process(PhysicalMemory(1 << 30, seed=3), policy)
    process.mmap(PAGES_PER_2MB * 2 + 64, name="heap")
    process.mmap(64, name="stack", thp_eligible=False)
    return process


def tiny_workload():
    def pattern(regions):
        return Mixture(
            [
                (Zipf(regions["heap"].subregion(0, 48), alpha=1.2, burst=4), 0.7),
                (UniformRandom(regions["heap"], burst=3), 0.3),
            ]
        )

    return Workload(
        "tiny-ext",
        "TEST",
        [VMASpec("heap", 24), VMASpec("stack", 1, thp_eligible=False)],
        pattern,
        instructions_per_access=3.0,
    )


SETTINGS = ExperimentSettings(trace_accesses=25_000, physical_bytes=1 << 28)


class TestFALite:
    def test_structures(self):
        org = build_fa_lite(make_process(TransparentHugePaging()))
        names = {s.name for s in org.hierarchy.all_structures()}
        assert "L1-FA" in names and "L2-4KB" in names
        assert org.lite is not None
        assert org.lite.units[0].max_units == 64

    def test_single_l1_probe_per_access(self):
        result = run_workload_config(tiny_workload(), "FA_Lite", SETTINGS)
        assert result.structure_stats["L1-FA"].lookups == result.accesses

    def test_holds_both_page_sizes(self):
        org = build_fa_lite(make_process(TransparentHugePaging()))
        h = org.hierarchy
        process_heap_vpn = 0x10000  # first auto-placed VMA
        h.access(process_heap_vpn)  # 2MB page
        entry = h.l1_fa.peek(process_heap_vpn)
        assert entry is not None and int(entry.page_size) == PAGES_PER_2MB

    def test_registered_in_dispatch(self):
        assert "FA_Lite" in EXTENDED_CONFIG_NAMES
        policy = paging_policy_for("FA_Lite")
        assert isinstance(policy, TransparentHugePaging)
        org = build_organization("FA_Lite", make_process(policy))
        assert org.name == "FA_Lite"

    def test_saves_energy_vs_thp(self):
        workload = tiny_workload()
        thp = run_workload_config(workload, "THP", SETTINGS)
        fa = run_workload_config(workload, "FA_Lite", SETTINGS)
        # One (pricier) structure vs two structures probed per access —
        # plus Lite resizing: the FA organization costs less here.
        assert fa.total_energy_pj < thp.total_energy_pj


class TestRMMPPLite:
    def test_structures(self):
        org = build_rmm_pp_lite(make_process(EagerPaging("thp")))
        names = {s.name for s in org.hierarchy.all_structures()}
        assert {"L1-mixed", "L2-mixed", "L1-range", "L2-range"} <= names
        assert org.lite is not None

    def test_requires_ranges(self):
        with pytest.raises(ValueError):
            build_rmm_pp_lite(make_process(TransparentHugePaging()))

    def test_range_tlb_serves_hits(self):
        result = run_workload_config(tiny_workload(), "RMM_PP_Lite", SETTINGS)
        shares = result.hit_shares()
        assert shares.get("L1-range", 0) > 0.5
        assert result.l2_mpki < 0.1

    def test_beats_tlb_pp_and_matches_rmm_lite(self):
        workload = tiny_workload()
        pp = run_workload_config(workload, "TLB_PP", SETTINGS)
        rmm_lite = run_workload_config(workload, "RMM_Lite", SETTINGS)
        combined = run_workload_config(workload, "RMM_PP_Lite", SETTINGS)
        assert combined.total_energy_pj < pp.total_energy_pj
        # The combined design lands in RMM_Lite's energy ballpark.
        assert combined.total_energy_pj < 1.3 * rmm_lite.total_energy_pj

    def test_mixed_l1_downsizes_under_range_cover(self):
        result = run_workload_config(tiny_workload(), "RMM_PP_Lite", SETTINGS)
        shares = result.way_lookup_shares("L1-mixed")
        assert shares.get(1, 0) > 0.5


class TestExtendedDispatch:
    def test_all_extended_configs_run(self):
        workload = tiny_workload()
        for config in EXTENDED_CONFIG_NAMES:
            result = run_workload_config(workload, config, SETTINGS)
            assert result.total_energy_pj > 0, config
