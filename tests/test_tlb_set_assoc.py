"""Unit tests for the set-associative, true-LRU, way-disabling TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb.set_assoc import SetAssociativeTLB


def make_tlb(entries=16, ways=4):
    return SetAssociativeTLB("t", entries, ways)


class TestConstruction:
    def test_geometry(self):
        tlb = make_tlb(64, 4)
        assert tlb.num_sets == 16
        assert tlb.active_ways == 4

    def test_entries_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB("t", 10, 4)

    def test_non_power_of_two_ways_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB("t", 12, 3)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB("t", 24, 2)  # 12 sets

    def test_direct_mapped_allowed(self):
        tlb = SetAssociativeTLB("t", 16, 1)
        assert tlb.num_sets == 16


class TestLookupAndFill:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(5) is None
        tlb.fill(5, "v5")
        assert tlb.lookup(5) == "v5"

    def test_hits_and_misses_counted(self):
        tlb = make_tlb()
        tlb.lookup(1)
        tlb.fill(1, "a")
        tlb.lookup(1)
        tlb.sync_stats()
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1
        assert tlb.stats.fills == 1

    def test_keys_map_to_sets_by_low_bits(self):
        tlb = make_tlb(16, 4)  # 4 sets
        tlb.fill(0, "a")
        tlb.fill(4, "b")  # same set as 0
        assert set(tlb.set_contents(0)) == {0, 4}

    def test_eviction_is_lru(self):
        tlb = make_tlb(16, 4)  # 4 sets, keys k*4 share set 0
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.lookup(0)  # refresh key 0
        tlb.fill(16, 16)  # evicts LRU = 4
        assert tlb.peek(4) is None
        assert tlb.peek(0) == 0

    def test_fill_refreshes_existing_key(self):
        tlb = make_tlb(16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.fill(0, "new")  # move 0 to MRU, update value
        tlb.fill(16, 16)  # evicts 4, not 0
        assert tlb.peek(0) == "new"
        assert tlb.peek(4) is None

    def test_occupancy_capped_by_active_ways(self):
        tlb = make_tlb(16, 4)
        for key in range(32):
            tlb.fill(key, key)
        assert tlb.occupancy() == 16

    def test_peek_does_not_touch_lru_or_stats(self):
        tlb = make_tlb(16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.peek(0)  # no recency change
        tlb.fill(16, 16)  # LRU is still 0
        assert tlb.peek(0) is None
        tlb.sync_stats()
        assert tlb.stats.lookups == 0


class TestLRUOrder:
    def test_hit_moves_to_mru(self):
        tlb = make_tlb(16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        assert tlb.set_contents(0) == [12, 8, 4, 0]
        tlb.lookup(4)
        assert tlb.set_contents(0) == [4, 12, 8, 0]

    def test_rank_counters_grouped_by_bit_length(self):
        tlb = make_tlb(32, 8)  # 4 sets, 8 ways
        counters = [0] * 4
        tlb.hit_rank_counters = counters
        for key in range(0, 32, 4):  # fill set 0 with 8 keys
            tlb.fill(key, key)
        # MRU order: 28 24 20 16 12 8 4 0; hit rank 0 -> group 0
        tlb.lookup(28)
        assert counters == [1, 0, 0, 0]
        tlb.lookup(24)  # now at rank 1 -> group 1
        assert counters == [1, 1, 0, 0]
        tlb.lookup(16)  # rank 3 -> group 2 (ranks 2-3)
        assert counters == [1, 1, 1, 0]
        tlb.lookup(0)  # rank 7 -> group 3 (ranks 4-7)
        assert counters == [1, 1, 1, 1]


class TestWayDisabling:
    def test_downsize_truncates_lru_entries(self):
        tlb = make_tlb(16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.set_active_ways(2)
        # Only the two most recent survive.
        assert tlb.set_contents(0) == [12, 8]

    def test_downsize_then_upsize_has_no_stale_entries(self):
        tlb = make_tlb(16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.set_active_ways(1)
        tlb.set_active_ways(4)
        assert tlb.peek(8) is None
        assert tlb.peek(12) == 12

    def test_capacity_respected_after_downsize(self):
        tlb = make_tlb(16, 4)
        tlb.set_active_ways(2)
        for key in range(0, 40, 4):
            tlb.fill(key, key)
        assert len(tlb.set_contents(0)) == 2

    def test_upsizing_above_max_rejected(self):
        tlb = make_tlb(16, 4)
        with pytest.raises(ValueError):
            tlb.set_active_ways(8)

    def test_non_power_of_two_rejected(self):
        tlb = make_tlb(16, 4)
        with pytest.raises(ValueError):
            tlb.set_active_ways(3)

    def test_lookups_histogrammed_by_ways_at_access_time(self):
        tlb = make_tlb(16, 4)
        tlb.lookup(1)
        tlb.lookup(2)
        tlb.set_active_ways(2)
        tlb.lookup(3)
        tlb.sync_stats()
        assert tlb.stats.lookups_by_ways == {4: 2, 2: 1}

    def test_fills_histogrammed_by_ways(self):
        tlb = make_tlb(16, 4)
        tlb.fill(1, 1)
        tlb.set_active_ways(1)
        tlb.fill(2, 2)
        tlb.fill(3, 3)
        tlb.sync_stats()
        assert tlb.stats.fills_by_ways == {4: 1, 1: 2}


class TestMaintenance:
    def test_invalidate(self):
        tlb = make_tlb()
        tlb.fill(7, 7)
        assert tlb.invalidate(7) is True
        assert tlb.invalidate(7) is False
        assert tlb.peek(7) is None

    def test_flush_clears_everything(self):
        tlb = make_tlb()
        for key in range(16):
            tlb.fill(key, key)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_resident_keys(self):
        tlb = make_tlb()
        tlb.fill(3, 3)
        tlb.fill(9, 9)
        assert tlb.resident_keys() == {3, 9}

    def test_interval_misses_resets_on_sync(self):
        tlb = make_tlb()
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.interval_misses == 2
        tlb.sync_stats()
        assert tlb.interval_misses == 0
        assert tlb.stats.misses == 2


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4, 8]),
)
def test_matches_reference_lru_model(keys, ways):
    """The TLB behaves exactly like a per-set LRU stack model."""
    tlb = SetAssociativeTLB("t", 8 * ways, ways)  # 8 sets
    reference: dict[int, list[int]] = {s: [] for s in range(8)}
    for key in keys:
        stack = reference[key % 8]
        expect_hit = key in stack
        got = tlb.lookup(key)
        assert (got is not None) == expect_hit
        if expect_hit:
            stack.remove(key)
            stack.insert(0, key)
        else:
            tlb.fill(key, key)
            stack.insert(0, key)
            del stack[ways:]
    for s in range(8):
        assert tlb.set_contents(s) == reference[s]


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
    schedule=st.lists(st.sampled_from([1, 2, 4]), min_size=1, max_size=8),
)
def test_stats_conserved_across_resizes(keys, schedule):
    """hits + misses == lookups and histograms sum correctly under resizing."""
    tlb = SetAssociativeTLB("t", 16, 4)
    resize_every = max(1, len(keys) // (len(schedule) + 1))
    step = 0
    for index, key in enumerate(keys):
        if index and index % resize_every == 0 and step < len(schedule):
            tlb.set_active_ways(schedule[step])
            step += 1
        if tlb.lookup(key) is None:
            tlb.fill(key, key)
    tlb.sync_stats()
    stats = tlb.stats
    assert stats.hits + stats.misses == stats.lookups
    assert sum(stats.lookups_by_ways.values()) == stats.lookups
    assert sum(stats.fills_by_ways.values()) == stats.fills
    assert stats.fills == stats.misses  # we fill exactly on each miss
