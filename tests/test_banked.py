"""Tests for the banked TLB baseline."""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.core.organizations import build_banked, build_organization, paging_policy_for
from repro.mem.paging import TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB
from repro.tlb.banked import BankedSetAssociativeTLB
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf


class TestBankedStructure:
    def test_geometry(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        assert tlb.bank_entries == 16
        assert len(tlb.banks) == 4

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BankedSetAssociativeTLB("b", 64, 4, 3)
        with pytest.raises(ValueError):
            BankedSetAssociativeTLB("b", 60, 4, 4)

    def test_basic_hit_miss(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        assert tlb.lookup(5) is None
        tlb.fill(5, "v")
        assert tlb.lookup(5) == "v"
        assert tlb.peek(5) == "v"

    def test_keys_route_to_fixed_banks(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        key = 123
        tlb.fill(key, key)
        bank = tlb._bank_for(key)
        assert bank.peek(key) == key
        for other in tlb.banks:
            if other is not bank:
                assert other.peek(key) is None

    def test_bank_conflicts_limit_capacity(self):
        """Keys mapping to one bank only enjoy that bank's capacity."""
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        # Same bank AND same set within the bank: stride of
        # sets_per_bank * banks = 4 * 4 = 16... choose keys with equal
        # set index and equal bank bits: stride 64.
        keys = [i * 64 for i in range(8)]
        for key in keys:
            tlb.fill(key, key)
        assert tlb.occupancy() <= 4  # one set of one bank

    def test_stats_aggregate_at_bank_geometry(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        tlb.lookup(1)
        tlb.fill(1, 1)
        tlb.lookup(1)
        tlb.sync_stats()
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.lookups_by_ways == {4: 2}  # priced per bank probe

    def test_reset_stats_propagates_to_banks(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        tlb.lookup(1)
        tlb.reset_stats()
        tlb.lookup(2)
        tlb.sync_stats()
        assert tlb.stats.lookups == 1  # pre-reset probe is gone

    def test_flush_and_invalidate(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 4)
        tlb.fill(7, 7)
        assert tlb.invalidate(7)
        assert not tlb.invalidate(7)
        tlb.fill(9, 9)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_bank_occupancies(self):
        tlb = BankedSetAssociativeTLB("b", 64, 4, 2)
        for key in range(16):
            tlb.fill(key, key)
        assert sum(tlb.bank_occupancies()) == 16


class TestBankedConfig:
    def make_process(self):
        process = Process(PhysicalMemory(1 << 30, seed=3), TransparentHugePaging())
        process.mmap(PAGES_PER_2MB * 2, name="heap")
        process.mmap(64, name="stack", thp_eligible=False)
        return process

    def test_builder(self):
        org = build_banked(self.make_process(), banks=4)
        assert org.name == "Banked"
        assert isinstance(org.hierarchy.l1_slots[0].tlb, BankedSetAssociativeTLB)
        assert org.lite is None

    def test_dispatch(self):
        assert isinstance(paging_policy_for("Banked"), TransparentHugePaging)
        org = build_organization("Banked", self.make_process())
        assert org.name == "Banked"

    def test_probe_priced_as_bank(self):
        org = build_banked(self.make_process(), banks=4)
        binding = next(b for b in org.bindings if b.name == "L1-4KB")
        # One probe = one 16-entry 4-way access, cheaper than the 64e/4w.
        from repro.energy.cacti import page_tlb_params

        assert binding.params_for_ways(4).read_pj < page_tlb_params(64, 4).read_pj

    def test_saves_energy_at_similar_misses(self):
        workload = Workload(
            "banked-test",
            "TEST",
            [VMASpec("heap", 8), VMASpec("stack", 1, thp_eligible=False)],
            lambda regions: Zipf(regions["heap"].subregion(0, 96), alpha=0.8, burst=3),
            instructions_per_access=3.0,
        )
        settings = ExperimentSettings(trace_accesses=25_000, physical_bytes=1 << 28)
        thp = run_workload_config(workload, "THP", settings)
        banked = run_workload_config(workload, "Banked", settings)
        assert banked.total_energy_pj < thp.total_energy_pj
        assert banked.l1_mpki < thp.l1_mpki * 2 + 1  # conflicts stay bounded
