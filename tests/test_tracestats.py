"""Tests for the trace-statistics module (reuse distances, footprints)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tracestats import (
    COLD,
    footprint_curve,
    hit_ratio_curve,
    lru_hit_ratio,
    page_touch_counts,
    reuse_distance_histogram,
    summarize_trace,
)
from repro.tlb.fully_assoc import FullyAssociativeTLB


class TestReuseDistance:
    def test_all_cold(self):
        histogram = reuse_distance_histogram([1, 2, 3, 4])
        assert histogram == Counter({COLD: 4})

    def test_immediate_reuse_is_distance_zero(self):
        histogram = reuse_distance_histogram([7, 7, 7])
        assert histogram == Counter({COLD: 1, 0: 2})

    def test_classic_example(self):
        # a b c a : the second 'a' saw 2 distinct pages in between.
        histogram = reuse_distance_histogram([1, 2, 3, 1])
        assert histogram == Counter({COLD: 3, 2: 1})

    def test_repeated_interleave(self):
        # a b a b: each reuse sees exactly one distinct page.
        histogram = reuse_distance_histogram([1, 2, 1, 2, 1, 2])
        assert histogram == Counter({COLD: 2, 1: 4})

    def test_duplicates_between_do_not_double_count(self):
        # a b b a : the second 'a' saw ONE distinct page.
        histogram = reuse_distance_histogram([1, 2, 2, 1])
        assert histogram == Counter({COLD: 2, 0: 1, 1: 1})

    def test_granularity_coarsens(self):
        # Pages 0 and 511 share a 2 MB chunk.
        histogram = reuse_distance_histogram([0, 511, 0], granularity_pages=512)
        assert histogram == Counter({COLD: 1, 0: 2})

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            reuse_distance_histogram([1], granularity_pages=0)


class TestHitRatioPredictions:
    def test_mattson_property_against_real_lru(self):
        """distance < capacity ⇔ hit in a fully-associative LRU cache."""
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 40, size=3000).tolist()
        histogram = reuse_distance_histogram(trace)
        for entries in (1, 2, 8, 16, 64):
            tlb = FullyAssociativeTLB("t", entries)
            for page in trace:
                if tlb.lookup(page) is None:
                    tlb.fill(page, page)
            tlb.sync_stats()
            assert lru_hit_ratio(histogram, entries) == pytest.approx(
                tlb.stats.hit_ratio
            ), entries

    def test_curve_monotone(self):
        rng = np.random.default_rng(5)
        trace = rng.integers(0, 200, size=2000)
        histogram = reuse_distance_histogram(trace)
        curve = hit_ratio_curve(histogram, [1, 4, 16, 64, 256])
        values = list(curve.values())
        assert values == sorted(values)

    def test_empty_histogram(self):
        assert lru_hit_ratio(Counter(), 8) == 0.0

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            lru_hit_ratio(Counter({0: 1}), 0)


class TestSummaries:
    def test_summarize(self):
        trace = [0, 1, 0, 1, 600]
        summary = summarize_trace(trace)
        assert summary.accesses == 5
        assert summary.distinct_pages == 3
        assert summary.distinct_huge_pages == 2
        assert "pages" in summary.render()

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace([])

    def test_footprint_curve(self):
        trace = [1, 1, 1, 1, 2, 3, 4, 5]
        assert footprint_curve(trace, windows=2) == [1, 4]
        with pytest.raises(ValueError):
            footprint_curve(trace, windows=0)

    def test_page_touch_counts(self):
        counts = page_touch_counts([5, 5, 9])
        assert counts == Counter({5: 2, 9: 1})


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
    entries=st.integers(min_value=1, max_value=32),
)
def test_prediction_matches_simulation_property(trace, entries):
    histogram = reuse_distance_histogram(trace)
    tlb = FullyAssociativeTLB("t", entries)
    hits = 0
    for page in trace:
        if tlb.lookup(page) is None:
            tlb.fill(page, page)
        else:
            hits += 1
    assert lru_hit_ratio(histogram, entries) == pytest.approx(hits / len(trace))


def test_workload_summaries_are_plausible():
    """The intensive workloads' own statistics match their design."""
    from repro.workloads.registry import get_workload

    mcf = summarize_trace(get_workload("mcf").trace(30_000, seed=1))
    omnetpp = summarize_trace(get_workload("omnetpp").trace(30_000, seed=1))
    # mcf touches far more huge pages than omnetpp (its chase defeats THP).
    assert mcf.distinct_huge_pages > 3 * omnetpp.distinct_huge_pages
    # Both have strong L1-scale locality (hot tiers).
    assert mcf.l1_page_hit_estimate > 0.5
    assert omnetpp.l1_page_hit_estimate > 0.5


class TestRegionBreakdown:
    def test_summarize_by_region(self):
        from repro.analysis.tracestats import summarize_by_region
        from repro.workloads.patterns import Region

        regions = {"a": Region(0, 10), "b": Region(100, 10)}
        trace = [0, 1, 1, 105, 999]
        out = summarize_by_region(trace, regions)
        assert out["a"]["accesses"] == 3
        assert out["a"]["distinct_pages"] == 2
        assert out["a"]["touched_fraction"] == 0.2
        assert out["b"]["share"] == 0.2
        assert out["<unmapped>"]["accesses"] == 1

    def test_workload_tier_structure_visible(self):
        """The stack tier dominates accesses but touches few pages."""
        from repro.analysis.tracestats import summarize_by_region
        from repro.workloads.registry import get_workload

        workload = get_workload("cactusADM")
        out = summarize_by_region(workload.trace(20_000, seed=1), workload.regions())
        assert out["<unmapped>"]["accesses"] == 0
        assert out["stack"]["share"] > 0.5  # hot tier
        assert out["stack"]["distinct_pages"] < 64
        # The grids stream: low share, many distinct pages.
        assert out["grid_a"]["distinct_pages"] > out["stack"]["distinct_pages"]

    def test_empty_trace_rejected(self):
        from repro.analysis.tracestats import summarize_by_region

        with pytest.raises(ValueError):
            summarize_by_region([], {})
