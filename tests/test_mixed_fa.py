"""Tests for the fully-associative mixed-page-size TLB (Section 4.4)."""

import pytest

from repro.mmu.translation import PAGES_PER_2MB, PageSize, Translation
from repro.tlb.mixed_fa import MixedFullyAssociativeTLB


def t4k(vpn, pfn=None):
    return Translation(vpn, pfn if pfn is not None else vpn + 1000, PageSize.SIZE_4KB)


def t2m(chunk, pfn_chunk=None):
    return Translation(
        chunk * PAGES_PER_2MB,
        (pfn_chunk if pfn_chunk is not None else chunk + 8) * PAGES_PER_2MB,
        PageSize.SIZE_2MB,
    )


class TestMaskedLookup:
    def test_4kb_hit(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        tlb.fill(t4k(5))
        assert tlb.lookup(5) is not None
        assert tlb.lookup(6) is None

    def test_2mb_entry_covers_whole_page(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        tlb.fill(t2m(3))
        base = 3 * PAGES_PER_2MB
        assert tlb.lookup(base) is not None
        assert tlb.lookup(base + 511) is not None
        assert tlb.lookup(base + 512) is None

    def test_mixed_residency(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        tlb.fill(t4k(5))
        tlb.fill(t2m(3))
        assert tlb.lookup(5) is not None
        assert tlb.lookup(3 * PAGES_PER_2MB + 7) is not None
        assert tlb.occupancy() == 2

    def test_lru_eviction(self):
        tlb = MixedFullyAssociativeTLB("fa", 2)
        tlb.fill(t4k(1))
        tlb.fill(t4k(2))
        tlb.lookup(1)
        tlb.fill(t4k(3))  # evicts 2
        assert tlb.peek(2) is None
        assert tlb.peek(1) is not None

    def test_overlapping_fill_replaces(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        tlb.fill(t4k(PAGES_PER_2MB + 3))
        tlb.fill(t2m(1))  # huge page covering the same region
        assert tlb.occupancy() == 1
        assert tlb.lookup(PAGES_PER_2MB + 3).page_size is PageSize.SIZE_2MB

    def test_rank_counters(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        counters = [0] * 3
        tlb.hit_rank_counters = counters
        for vpn in range(4):
            tlb.fill(t4k(vpn))
        tlb.lookup(3)  # rank 0
        tlb.lookup(0)  # rank 3 -> group 2
        assert counters == [1, 0, 1]

    def test_resize(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        for vpn in range(4):
            tlb.fill(t4k(vpn))
        tlb.set_active_entries(2)
        assert tlb.occupancy() == 2
        with pytest.raises(ValueError):
            tlb.set_active_entries(0)

    def test_stats(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        tlb.lookup(1)
        tlb.fill(t4k(1))
        tlb.lookup(1)
        tlb.sync_stats()
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.lookups_by_ways == {4: 2}

    def test_flush(self):
        tlb = MixedFullyAssociativeTLB("fa", 4)
        tlb.fill(t4k(1))
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            MixedFullyAssociativeTLB("fa", 0)
