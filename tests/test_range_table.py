"""Unit and property tests for the software range table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.range_table import BTREE_FANOUT, RangeTable, RangeTableError
from repro.mmu.translation import RangeTranslation


def rng(base, limit):
    return RangeTranslation(base, limit, base + 10_000)


class TestInsertLookup:
    def test_lookup_hit_and_miss(self):
        table = RangeTable()
        table.insert(rng(100, 200))
        assert table.lookup(150).base_vpn == 100
        assert table.lookup(200) is None
        assert table.lookup(99) is None

    def test_overlap_rejected(self):
        table = RangeTable()
        table.insert(rng(100, 200))
        with pytest.raises(RangeTableError):
            table.insert(rng(150, 250))
        with pytest.raises(RangeTableError):
            table.insert(rng(50, 101))

    def test_adjacent_allowed(self):
        table = RangeTable()
        table.insert(rng(100, 200))
        table.insert(rng(200, 300))
        assert len(table) == 2

    def test_remove(self):
        table = RangeTable()
        entry = rng(100, 200)
        table.insert(entry)
        table.remove(entry)
        assert table.lookup(150) is None
        with pytest.raises(RangeTableError):
            table.remove(entry)

    def test_iteration_sorted(self):
        table = RangeTable()
        table.insert(rng(500, 600))
        table.insert(rng(100, 200))
        assert [r.base_vpn for r in table] == [100, 500]

    def test_total_pages(self):
        table = RangeTable()
        table.insert(rng(0, 10))
        table.insert(rng(20, 25))
        assert table.total_pages() == 15


class TestWalkCost:
    def test_empty_and_single_cost_one(self):
        table = RangeTable()
        assert table.walk_memory_refs() == 1
        table.insert(rng(0, 10))
        assert table.walk_memory_refs() == 1

    def test_cost_grows_logarithmically(self):
        table = RangeTable()
        for index in range(BTREE_FANOUT**2):
            table.insert(rng(index * 100, index * 100 + 10))
        assert table.walk_memory_refs() == 3  # 1 + ceil(log_4(16))

    def test_cost_monotone_in_size(self):
        table = RangeTable()
        last = 0
        for index in range(64):
            table.insert(rng(index * 100, index * 100 + 10))
            cost = table.walk_memory_refs()
            assert cost >= last
            last = cost


@settings(max_examples=50, deadline=None)
@given(
    spans=st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 8)), min_size=1, max_size=25
    ),
    queries=st.lists(st.integers(0, 600), max_size=50),
)
def test_lookup_matches_bruteforce(spans, queries):
    """Binary-search lookup agrees with a linear scan, overlaps rejected."""
    table = RangeTable()
    accepted: list[RangeTranslation] = []
    for slot, length in spans:
        candidate = rng(slot * 10, slot * 10 + length)
        try:
            table.insert(candidate)
            accepted.append(candidate)
        except RangeTableError:
            assert any(candidate.overlaps(existing) for existing in accepted)
    for query in queries:
        expected = next((r for r in accepted if r.covers(query)), None)
        assert table.lookup(query) == expected
