"""End-to-end tests of the 1 GB page path (hugetlbfs-style backing).

The paper's baseline hierarchy (Figure 1) includes a 4-entry fully-
associative L1-1GB TLB that none of the evaluated workloads exercise;
these tests drive it end to end: OS backing, two-reference walks, static
enabling, hit attribution, energy accounting, and Lite's capacity
resizing of the fully-associative structure.
"""

import pytest

from repro.core.organizations import build_thp, build_tlb_lite
from repro.core.params import LiteParams
from repro.core.simulator import Simulator
from repro.mem.paging import HugeTLBFSPaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_1GB, PAGES_PER_2MB, PageSize

GB = PAGES_PER_1GB


def giant_process(gigabytes=2):
    process = Process(PhysicalMemory(8 << 30, seed=5), HugeTLBFSPaging())
    process.mmap(GB * gigabytes, name="pool", alignment=GB)
    return process


class TestHugeTLBFSPolicy:
    def test_1gb_backing(self):
        process = giant_process(2)
        histogram = process.page_size_histogram()
        assert histogram[PageSize.SIZE_1GB] == 2
        assert histogram[PageSize.SIZE_2MB] == 0

    def test_tail_cascades_to_smaller_sizes(self):
        process = Process(PhysicalMemory(8 << 30, seed=5), HugeTLBFSPaging())
        process.mmap(GB + PAGES_PER_2MB + 3, name="pool", alignment=GB)
        histogram = process.page_size_histogram()
        assert histogram[PageSize.SIZE_1GB] == 1
        assert histogram[PageSize.SIZE_2MB] == 1
        assert histogram[PageSize.SIZE_4KB] == 3

    def test_2mb_variant(self):
        process = Process(
            PhysicalMemory(1 << 30, seed=5), HugeTLBFSPaging(PageSize.SIZE_2MB)
        )
        process.mmap(PAGES_PER_2MB * 3, name="pool")
        assert process.page_size_histogram()[PageSize.SIZE_2MB] == 3

    def test_misaligned_vma_rejected(self):
        process = Process(PhysicalMemory(8 << 30, seed=5), HugeTLBFSPaging())
        with pytest.raises(ValueError):
            process.mmap(GB, name="pool")  # default 2MB alignment

    def test_4kb_policy_rejected(self):
        with pytest.raises(ValueError):
            HugeTLBFSPaging(PageSize.SIZE_4KB)

    def test_frames_1gb_aligned(self):
        process = giant_process(1)
        leaf = process.leaf_for(next(iter(process.address_space)).start_vpn)
        assert leaf.pfn % GB == 0


class TestHierarchy1GBPath:
    def test_walk_costs_two_refs_cold_one_warm(self):
        process = giant_process(1)
        org = build_thp(process)
        base = next(iter(process.address_space)).start_vpn
        walker = org.hierarchy.walker
        result = walker.walk(base)
        assert result.memory_refs == 2
        assert walker.walk(base + 12345).memory_refs == 1  # PML4E cached

    def test_l1_1gb_slot_enables_and_hits(self):
        process = giant_process(1)
        org = build_thp(process)
        h = org.hierarchy
        base = next(iter(process.address_space)).start_vpn
        slot_1gb = h.l1_slots[2]
        assert not slot_1gb.enabled
        h.access(base)  # walk returns a 1GB leaf -> slot enables
        assert slot_1gb.enabled
        h.access(base + 200_000)  # same 1GB page -> L1-1GB hit
        assert h.hit_attribution()["L1-1GB"] == 1
        assert h.l1_misses == 1

    def test_1gb_entries_never_enter_l2(self):
        process = giant_process(1)
        org = build_thp(process)
        base = next(iter(process.address_space)).start_vpn
        org.hierarchy.access(base)
        org.hierarchy.sync_stats()
        assert org.hierarchy.l2_page.stats.fills == 0

    def test_energy_charged_to_1gb_tlb(self):
        process = giant_process(1)
        org = build_thp(process)
        base = next(iter(process.address_space)).start_vpn
        trace = [base + i * 100 for i in range(2000)]
        result = Simulator(org).run(trace, fast_forward_accesses=100)
        assert result.energy.by_structure["L1-1GB"] > 0
        assert result.structure_stats["L1-1GB"].hit_ratio > 0.99

    def test_lite_resizes_the_fa_1gb_tlb(self):
        """One hot 1GB page: Lite shrinks the 4-entry FA TLB to 1 entry."""
        process = giant_process(1)
        lite_params = LiteParams(interval_instructions=1500, reactivate_probability=0.0)
        org = build_tlb_lite(process, lite_params=lite_params)
        base = next(iter(process.address_space)).start_vpn
        trace = [base + (i % 997) * 200 for i in range(30_000)]
        result = Simulator(org, instructions_per_access=3.0).run(
            trace, fast_forward_accesses=3_000
        )
        shares = result.way_lookup_shares("L1-1GB")
        assert shares.get(1, 0) > 0.8
        # ...at essentially no miss cost (it is one giant page).
        assert result.l1_mpki < 0.5
