"""Cross-cutting invariants of the full simulation pipeline.

These properties tie the layers together: counter conservation between
the hierarchy levels, energy-accounting reconstruction, and attribution
completeness — for every configuration, over randomised workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import ExperimentSettings, run_workload_config_with_org
from repro.core.organizations import EXTENDED_CONFIG_NAMES
from repro.energy.model import EnergyModel
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Mixture, SequentialScan, UniformRandom, Zipf


def small_workload(seed: int) -> Workload:
    def pattern(regions):
        heap = regions["heap"]
        return Mixture(
            [
                (Zipf(heap.subregion(0, 40), alpha=1.1, burst=3), 0.5),
                (UniformRandom(heap, burst=2), 0.3),
                (SequentialScan(heap, stride_pages=1, burst=8), 0.2),
            ]
        )

    return Workload(
        f"inv-{seed}",
        "TEST",
        [VMASpec("heap", 20), VMASpec("stack", 1, thp_eligible=False)],
        pattern,
        instructions_per_access=3.0,
    )


def run(config, seed):
    settings_ = ExperimentSettings(
        trace_accesses=12_000, seed=seed, physical_bytes=1 << 28
    )
    return run_workload_config_with_org(small_workload(seed), config, settings_)


@settings(max_examples=10, deadline=None)
@given(
    config=st.sampled_from(EXTENDED_CONFIG_NAMES),
    seed=st.integers(min_value=0, max_value=50),
)
def test_pipeline_invariants(config, seed):
    result, organization = run(config, seed)
    hierarchy = organization.hierarchy
    stats = result.structure_stats

    # --- miss-counter conservation across levels ------------------------
    # Every L1 miss triggers exactly one L2 page-TLB probe.
    l2_name = next(name for name in stats if name.startswith("L2-") and "range" not in name)
    assert stats[l2_name].lookups == result.l1_misses
    # Every full L2 miss triggers exactly one walk.
    assert result.page_walks == result.l2_misses
    # MMU caches are probed once per walk, in parallel.
    assert stats["MMU-cache-PDE"].lookups == result.l2_misses
    assert stats["MMU-cache-PML4"].lookups == result.l2_misses
    # Walk references: 1..4 memory reads per walk.
    assert result.l2_misses <= result.page_walk_refs <= 4 * result.l2_misses

    # --- attribution completeness ---------------------------------------
    assert sum(result.hit_attribution.values()) == result.accesses - result.l1_misses

    # --- energy reconstruction -------------------------------------------
    # Recomputing from the recorded per-structure stats reproduces the
    # reported breakdown exactly.
    model = EnergyModel()
    recomputed = model.compute(
        organization.bindings,
        page_walk_refs=result.page_walk_refs,
        range_walk_refs=result.range_walk_refs,
    )
    assert recomputed.total_pj == pytest.approx(result.total_energy_pj)

    # --- cycle model -----------------------------------------------------
    assert result.miss_cycles == 7 * result.l1_misses + 50 * result.l2_misses

    # --- timeline reconciliation ------------------------------------------
    if result.timeline:
        window = result.accesses // len(result.timeline)
        window_instr = round(window * 3.0)
        from_timeline = sum(s.l1_mpki * window_instr / 1000 for s in result.timeline)
        assert from_timeline == pytest.approx(result.l1_misses, abs=1.0)

    # --- range configurations ---------------------------------------------
    if config in ("RMM", "RMM_Lite", "RMM_PP_Lite"):
        # Background range walks happen on every full L2 miss.
        assert result.range_walk_refs >= result.l2_misses
    else:
        assert result.range_walk_refs == 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30))
def test_l1_probe_energy_charged_every_access(seed):
    """Enabled L1 structures are probed on *every* access (no early exit)."""
    result, organization = run("THP", seed)
    stats = result.structure_stats
    assert stats["L1-4KB"].lookups == result.accesses
    # The 2MB TLB enables at its first huge-page walk (during warm-up
    # here), after which it is probed every access too.
    assert stats["L1-2MB"].lookups == result.accesses
    # The 1GB TLB never enables: zero lookups, zero energy.
    assert stats["L1-1GB"].lookups == 0
    assert result.energy.by_structure["L1-1GB"] == 0.0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30))
def test_determinism_across_runs(seed):
    """Identical settings produce bit-identical results."""
    first, _ = run("RMM_Lite", seed)
    second, _ = run("RMM_Lite", seed)
    assert first.l1_misses == second.l1_misses
    assert first.l2_misses == second.l2_misses
    assert first.total_energy_pj == second.total_energy_pj
    assert first.hit_attribution == second.hit_attribution
