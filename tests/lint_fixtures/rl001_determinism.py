"""Fixture: RL001 determinism violations (do not import; parsed by reprolint)."""

import random
import time

import numpy as np


def unseeded_module_rng():
    return random.random() + random.randint(0, 10)  # 2 findings


def unseeded_constructor():
    rng = random.Random()  # finding: unseeded
    return rng


def time_seeded():
    rng = random.Random(int(time.time()))  # finding: time-derived seed
    return rng


def numpy_legacy():
    np.random.seed(0)  # finding: global numpy state
    return np.random.rand(4)  # finding: global numpy state


def numpy_unseeded():
    return np.random.default_rng()  # finding: unseeded generator


def seed_from_clock():
    seed = time.time_ns()  # finding: wall-clock seed material
    return seed


def stream_helper_without_seed():
    from repro.resilience.fuzz import rng_stream

    return rng_stream()  # finding: stream helper with no seed material


def stream_helper_time_seeded():
    from repro.resilience import fuzz

    return fuzz.rng_stream(time.time_ns(), "case")  # finding: time-derived


def fine(seed: int):
    # the blessed idioms: explicit seed threaded from the caller
    from repro.resilience.fuzz import rng_stream

    return random.Random(seed), np.random.default_rng(seed), rng_stream(seed, "case", 0)
