"""RL010 fixture: re-raises inside except blocks without ``from``."""


class FixtureError(Exception):
    pass


def unchained_reraise(path):
    try:
        return open(path).read()
    except OSError:
        raise FixtureError(f"cannot read {path}")


def unchained_nested(value):
    try:
        return int(value)
    except ValueError as err:
        if value:
            raise FixtureError("bad value")
        raise err


def chained_ok(path):
    """Compliant: the cause is threaded through."""
    try:
        return open(path).read()
    except OSError as err:
        raise FixtureError(f"cannot read {path}") from err


def suppressed_ok(value):
    """Compliant: deliberate context suppression."""
    try:
        return int(value)
    except ValueError:
        raise FixtureError("bad value") from None


def bare_reraise_ok(value):
    """Compliant: bare raise re-raises the active exception."""
    try:
        return int(value)
    except ValueError:
        raise
