"""Fixture: RL002 exception-taxonomy violations."""


def raw_value_error(x):
    if x < 0:
        raise ValueError("negative")  # finding


def raw_key_error(mapping, key):
    if key not in mapping:
        raise KeyError(key)  # finding
    return mapping[key]


def raw_runtime_error():
    raise RuntimeError("boom")  # finding


def uninstantiated():
    raise ValueError  # finding: raised class, not instance


def fine():
    raise NotImplementedError  # abstract-method idiom stays legal
