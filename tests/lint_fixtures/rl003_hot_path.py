"""Fixture: RL003 hot-path purity violations."""

import logging
import time

logger = logging.getLogger(__name__)


class BadTLB:
    def __init__(self):
        self.entries = {}

    def lookup(self, key):
        try:
            values = [v for v in self.entries.values()]  # finding: ListComp
            return sorted(values)  # finding: allocation-heavy call
        except Exception:  # finding: broad handler
            logging.warning("lookup failed")  # finding: logging
            return None

    def fill(self, key, value):
        print("filling", key)  # finding: printing
        self.entries[key] = value

    def access(self, key):
        data = {k: v for k, v in self.entries.items()}  # finding: DictComp
        return data.get(key)

    def insert(self, key, value):
        started = time.perf_counter()  # finding: telemetry (timer)
        self.obs.instant("insert", key=key)  # finding: telemetry (hub call)
        self.entries[key] = value
        return started

    def cold_report(self):
        # not a hot-path method name: comprehensions are fine here
        return [k for k in self.entries]
