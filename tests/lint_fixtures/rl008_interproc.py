"""RL008 fixture: impurity hiding one frame below a hot method."""

import functools


def _module_helper(entries):
    # allocation-heavy call inside a helper reached from lookup()
    return sorted(entries)


def _logged_helper(value):
    print(value)  # I/O reached from the hot path
    return value


class HidingTLB:
    def __init__(self):
        self.entries = []

    def lookup(self, vpn):
        return self._pick(vpn)

    def access(self, vpn):
        return _module_helper(self.entries)

    def fill(self, vpn):
        handler = functools.partial(_logged_helper, vpn)
        return handler()

    def _pick(self, vpn):
        # comprehension one frame below lookup()
        candidates = [entry for entry in self.entries if entry == vpn]
        return candidates[0] if candidates else None


class CleanTLB:
    """Compliant: the helper does constant-time work only."""

    def __init__(self):
        self.entries = {}

    def lookup(self, vpn):
        return self._probe(vpn)

    def _probe(self, vpn):
        return self.entries.get(vpn)
