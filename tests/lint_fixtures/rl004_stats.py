"""Fixture: RL004 stats-discipline violations."""


class Stats:
    def __init__(self):
        self.hits = 0
        self.misses = 0

    def reset(self):
        self.hits = 0
        self.misses = 0


class BadStructure:
    def __init__(self):
        self.stats = Stats()  # fine: binding the object, not a counter
        self._pending = 0

    def lookup(self, key):
        self.stats.hits += 1  # finding: counter bumped outside sync
        return key

    def record_elsewhere(self, other):
        other.stats.misses = 5  # finding: foreign stats write

    def sync_stats(self):
        self.stats.hits += self._pending  # fine: the owning sync method
        self._pending = 0
