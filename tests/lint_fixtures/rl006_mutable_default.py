"""Fixture: RL006 mutable-default-argument violations."""


def bad_list(values=[]):  # finding
    return values


def bad_dict(mapping={}):  # finding
    return mapping


def bad_call(entries=list()):  # finding
    return entries


def fine(values=None, flag=True, count=0, name="x"):
    return values if values is not None else []
