"""RL007 fixture: checkpoint-coverage violations (never imported)."""


class LeakyCounter:
    """Mutable attribute ``total`` is missing from both protocol sides."""

    def __init__(self):
        self.count = 0
        self.total = 0

    def bump(self):
        self.count += 1
        self.total += 1

    def state_dict(self):
        return {"count": self.count}

    def load_state_dict(self, state):
        self.count = state["count"]


class KeyDrift:
    """Key sets of the two protocol sides disagree."""

    def __init__(self):
        self.a = 0
        self.b = 0

    def tick(self):
        self.a += 1
        self.b += 1

    def state_dict(self):
        return {"a": self.a, "b": self.b, "epoch": 1}

    def load_state_dict(self, state):
        self.a = state["a"]
        self.b = state["b"]
        self.stamp = state["format"]


class ForgottenRestore:
    """Serialized but never written back on load."""

    def __init__(self):
        self.hits = 0

    def record(self):
        self.hits += 1

    def state_dict(self):
        return {"hits": self.hits}

    def load_state_dict(self, state):
        _ = state["hits"]


class CleanRoundTrip:
    """Compliant: every mutable attribute round-trips symmetrically."""

    def __init__(self):
        self.entries = []

    def fill_entry(self, value):
        self.entries.append(value)

    def state_dict(self):
        return {"entries": list(self.entries)}

    def load_state_dict(self, state):
        self.entries = list(state["entries"])


class DerivedCache:
    """Compliant: a declared derived cache rebuilt on load."""

    _CHECKPOINT_DERIVED = ("_total",)

    def __init__(self):
        self.values = []
        self._total = 0

    def push(self, value):
        self.values.append(value)
        self._total += value

    def state_dict(self):
        return {"values": list(self.values)}

    def load_state_dict(self, state):
        self.values = list(state["values"])
        self._total = sum(self.values)
