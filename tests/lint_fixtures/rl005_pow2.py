"""Fixture: RL005 power-of-two guard violations."""


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class UnguardedTLB:
    def __init__(self, entries: int, ways: int, banks: int):
        # findings: neither ways nor banks is ever validated
        self.entries = entries
        self.ways = ways
        self.banks = banks


class GuardedTLB:
    def __init__(self, entries: int, ways: int, banks: int):
        if not _is_power_of_two(ways):
            raise AssertionError("ways")
        assert _is_power_of_two(banks)
        self.entries = entries
        self.ways = ways
        self.banks = banks
