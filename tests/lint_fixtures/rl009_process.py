"""RL009 fixture: unpicklable payloads crossing process boundaries."""

import multiprocessing
import threading


def _worker(task):
    return task


def spawn_with_lambda():
    process = multiprocessing.Process(target=_worker, args=(lambda: 1,))
    process.start()


def spawn_through_context():
    ctx = multiprocessing.get_context("spawn")
    process = ctx.Process(target=_worker, args=(open("/tmp/x"),))
    process.start()


def send_generator(result_conn):
    result_conn.send((value for value in range(4)))


def send_lock(task_queue):
    task_queue.put(threading.Lock())


def spawn_nested_closure():
    state = []

    def closure_worker():
        state.append(1)

    process = multiprocessing.Process(target=closure_worker)
    process.start()


def clean_spawn(payload):
    """Compliant: module-level target, plain-data args."""
    process = multiprocessing.Process(target=_worker, args=(payload,))
    process.start()
