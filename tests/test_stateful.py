"""Stateful property tests (hypothesis RuleBasedStateMachine).

Long random interleavings of operations against a model, catching the
bugs example-based tests miss: buddy-allocator accounting drift, overlap
leaks, page-table/`break_huge_page` interactions.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.mem.physical import OutOfMemoryError, PhysicalMemory
from repro.mmu.page_table import PageFault, PageTable
from repro.mmu.translation import PAGES_PER_2MB, PageSize, Translation


class BuddyAllocatorMachine(RuleBasedStateMachine):
    """The buddy allocator never double-allocates and conserves frames."""

    def __init__(self) -> None:
        super().__init__()
        self.memory = PhysicalMemory(1 << 24, seed=3)  # 4096 frames
        self.live: dict[int, tuple[str, int]] = {}  # pfn -> (kind, npages)
        self.claimed: set[int] = set()

    def _claim(self, pfn: int, npages: int, kind: str) -> None:
        span = set(range(pfn, pfn + npages))
        assert not (span & self.claimed), "allocator handed out a live frame"
        self.claimed |= span
        self.live[pfn] = (kind, npages)

    @rule(order=st.integers(min_value=0, max_value=6))
    def alloc_block(self, order: int) -> None:
        try:
            pfn = self.memory.alloc_block(order)
        except OutOfMemoryError:
            return
        assert pfn % (1 << order) == 0, "block not naturally aligned"
        self._claim(pfn, 1 << order, "block")

    @rule(npages=st.integers(min_value=1, max_value=300))
    def alloc_contiguous(self, npages: int) -> None:
        try:
            pfn = self.memory.alloc_contiguous(npages)
        except OutOfMemoryError:
            return
        self._claim(pfn, npages, "contig")

    @rule()
    def alloc_frame(self) -> None:
        try:
            pfn = self.memory.alloc_frame()
        except OutOfMemoryError:
            return
        self._claim(pfn, 1, "frame")

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_something(self, data) -> None:
        pfn = data.draw(st.sampled_from(sorted(self.live)))
        kind, npages = self.live.pop(pfn)
        self.claimed -= set(range(pfn, pfn + npages))
        if kind == "block":
            self.memory.free_block(pfn, npages.bit_length() - 1)
        elif kind == "contig":
            self.memory.free_contiguous(pfn, npages)
        else:
            self.memory.free_frame(pfn)

    @invariant()
    def frames_conserved(self) -> None:
        live_frames = sum(npages for _, npages in self.live.values())
        accounted = (
            self.memory.frames_free
            + self.memory.scatter_pool_frames
            + live_frames
        )
        assert accounted == self.memory.total_frames

    @invariant()
    def free_count_sane(self) -> None:
        assert 0 <= self.memory.frames_free <= self.memory.total_frames


class PageTableMachine(RuleBasedStateMachine):
    """Map/unmap/demote interleavings agree with a dict model."""

    CHUNKS = 12  # operate within 12 distinct 2MB chunks

    def __init__(self) -> None:
        super().__init__()
        self.table = PageTable()
        self.model: dict[int, int] = {}  # vpn -> pfn (4KB granularity)
        self.huge: set[int] = set()  # chunk indices mapped as one 2MB page

    def _chunk_base(self, chunk: int) -> int:
        return chunk * PAGES_PER_2MB

    @rule(
        chunk=st.integers(min_value=0, max_value=CHUNKS - 1),
        offset=st.integers(min_value=0, max_value=PAGES_PER_2MB - 1),
    )
    def map_4kb(self, chunk: int, offset: int) -> None:
        vpn = self._chunk_base(chunk) + offset
        pfn = 1_000_000 + vpn
        if vpn in self.model or chunk in self.huge:
            return  # the real table would reject; covered by unit tests
        self.table.map(Translation(vpn, pfn, PageSize.SIZE_4KB))
        self.model[vpn] = pfn

    @rule(chunk=st.integers(min_value=0, max_value=CHUNKS - 1))
    def map_2mb(self, chunk: int) -> None:
        base = self._chunk_base(chunk)
        if chunk in self.huge or any(
            base <= vpn < base + PAGES_PER_2MB for vpn in self.model
        ):
            return
        pfn = (8_192 + chunk) * PAGES_PER_2MB  # 2MB-aligned frame
        self.table.map(Translation(base, pfn, PageSize.SIZE_2MB))
        self.huge.add(chunk)
        for offset in range(PAGES_PER_2MB):
            self.model[base + offset] = pfn + offset

    @precondition(lambda self: self.huge)
    @rule(data=st.data())
    def demote_2mb(self, data) -> None:
        chunk = data.draw(st.sampled_from(sorted(self.huge)))
        base = self._chunk_base(chunk)
        leaf = self.table.unmap(base)
        for offset in range(PAGES_PER_2MB):
            self.table.map(
                Translation(base + offset, leaf.pfn + offset, PageSize.SIZE_4KB)
            )
        self.huge.remove(chunk)
        # Model unchanged: demotion preserves every translation.

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def unmap_some_4kb(self, data) -> None:
        candidates = sorted(
            vpn for vpn in self.model if (vpn // PAGES_PER_2MB) not in self.huge
        )
        if not candidates:
            return
        vpn = data.draw(st.sampled_from(candidates))
        self.table.unmap(vpn)
        del self.model[vpn]

    @invariant()
    def translations_match_model(self) -> None:
        # Spot-check a handful of pages per step (full sweep is too slow).
        for vpn in list(self.model)[:5]:
            assert self.table.translate(vpn) == self.model[vpn]
        probe = self.CHUNKS * PAGES_PER_2MB + 7
        try:
            self.table.translate(probe)
            assert False, "unmapped page translated"
        except PageFault:
            pass


TestBuddyAllocatorStateful = BuddyAllocatorMachine.TestCase
TestBuddyAllocatorStateful.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)

TestPageTableStateful = PageTableMachine.TestCase
TestPageTableStateful.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None
)
