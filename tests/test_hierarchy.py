"""Tests for the TLB hierarchy translation paths and static enabling."""

import pytest

from repro.core.hierarchy import ConfigurationError, L1Slot, MixedTLBHierarchy, TLBHierarchy
from repro.mem.range_table import RangeTable
from repro.mmu.page_table import PageTable
from repro.mmu.translation import (
    PAGES_PER_2MB,
    PageSize,
    RangeTranslation,
    Translation,
)
from repro.mmu.walker import PageWalker
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.range_tlb import RangeTLB
from repro.tlb.set_assoc import SetAssociativeTLB


def build_page_table():
    pt = PageTable()
    for vpn in range(0, 64):
        pt.map(Translation(vpn, 10_000 + vpn, PageSize.SIZE_4KB))
    pt.map(Translation(PAGES_PER_2MB, 20_480, PageSize.SIZE_2MB))
    return pt


def build_hierarchy(pt=None, with_ranges=False, with_l1_range=False, range_table=None):
    pt = pt or build_page_table()
    slots = [
        L1Slot(SetAssociativeTLB("L1-4KB", 64, 4), PageSize.SIZE_4KB),
        L1Slot(SetAssociativeTLB("L1-2MB", 32, 4), PageSize.SIZE_2MB),
        L1Slot(FullyAssociativeTLB("L1-1GB", 4), PageSize.SIZE_1GB),
    ]
    kwargs = {}
    if with_ranges:
        kwargs["l2_range"] = RangeTLB("L2-range", 32)
        kwargs["range_table"] = range_table
        if with_l1_range:
            kwargs["l1_range"] = RangeTLB("L1-range", 4)
    return TLBHierarchy(
        slots, SetAssociativeTLB("L2-4KB", 512, 4), PageWalker(pt), **kwargs
    )


class TestBasicFlow:
    def test_cold_access_misses_everywhere_and_walks(self):
        h = build_hierarchy()
        h.access(0)
        assert h.l1_misses == 1
        assert h.l2_misses == 1
        assert h.walker.stats.walks == 1

    def test_second_access_hits_l1(self):
        h = build_hierarchy()
        h.access(0)
        h.access(0)
        assert h.l1_misses == 1
        assert h.accesses == 2

    def test_l2_hit_after_l1_eviction(self):
        h = build_hierarchy()
        # Fill set 0 of the L1-4KB TLB (keys 0,16,32,48) plus one more.
        for vpn in (0, 16, 32, 48):
            h.access(vpn)
        h.access(0)  # refresh
        # Evict 16 from L1 by touching a 5th key in set 0... need key%16==0
        # beyond 48: not mapped; instead touch 0,32,48 then a new set-0 key.
        h.access(16)
        assert h.l2_misses == 4  # only the four compulsory walks

    def test_2mb_page_enables_its_slot(self):
        h = build_hierarchy()
        slot_2mb = h.l1_slots[1]
        assert not slot_2mb.enabled
        h.access(PAGES_PER_2MB + 3)  # walk returns a 2MB leaf
        assert slot_2mb.enabled
        h.access(PAGES_PER_2MB + 7)  # now hits the L1-2MB TLB
        assert h.l1_misses == 1

    def test_disabled_slots_burn_no_lookups(self):
        h = build_hierarchy()
        for vpn in range(8):
            h.access(vpn)
        h.sync_stats()
        assert h.l1_slots[1].tlb.stats.lookups == 0
        assert h.l1_slots[2].tlb.stats.lookups == 0

    def test_2mb_translations_never_enter_l2(self):
        h = build_hierarchy()
        h.access(PAGES_PER_2MB)
        h.access(PAGES_PER_2MB)
        h.sync_stats()
        assert h.l2_page.stats.fills == 0

    def test_4kb_miss_in_l2_fills_l1_from_l2(self):
        h = build_hierarchy()
        h.access(0)
        # Evict vpn 0 from L1 set 0 with 4 other set-0 keys (16,32,48 + ...).
        for vpn in (16, 32, 48):
            h.access(vpn)
        h.access(PAGES_PER_2MB)  # unrelated
        # Push vpn 0 out of L1: one more set-0 fill needed; reuse eviction
        # by downsizing instead (invalidate).
        h.l1_slots[0].tlb.set_active_ways(1)
        h.l1_slots[0].tlb.set_active_ways(4)
        walks_before = h.walker.stats.walks
        h.access(16)  # L1 miss (invalidated), L2 hit -> no walk
        assert h.walker.stats.walks == walks_before

    def test_missing_4kb_slot_rejected(self):
        slots = [L1Slot(SetAssociativeTLB("L1-2MB", 32, 4), PageSize.SIZE_2MB)]
        with pytest.raises(ConfigurationError):
            TLBHierarchy(slots, SetAssociativeTLB("L2", 512, 4), PageWalker(PageTable()))

    def test_walk_size_without_slot_rejected(self):
        pt = build_page_table()
        slots = [L1Slot(SetAssociativeTLB("L1-4KB", 64, 4), PageSize.SIZE_4KB)]
        h = TLBHierarchy(slots, SetAssociativeTLB("L2", 512, 4), PageWalker(pt))
        with pytest.raises(ConfigurationError):
            h.access(PAGES_PER_2MB)  # 2MB leaf, no 2MB slot


class TestAttribution:
    def test_page_hits_attributed_per_slot(self):
        h = build_hierarchy()
        h.access(0)
        h.access(0)
        h.access(PAGES_PER_2MB)
        h.access(PAGES_PER_2MB + 1)
        attribution = h.hit_attribution()
        assert attribution["L1-4KB"] == 1
        assert attribution["L1-2MB"] == 1

    def test_reset_measurement_clears_counters_keeps_contents(self):
        h = build_hierarchy()
        h.access(0)
        h.access(0)
        h.reset_measurement()
        assert h.l1_misses == 0
        assert h.hit_attribution()["L1-4KB"] == 0
        h.access(0)  # still resident -> hit, no walk
        assert h.l1_misses == 0
        assert h.walker.stats.walks == 0


class TestRangePath:
    def build_with_ranges(self, l1=False):
        pt = PageTable()
        table = RangeTable()
        base = 0
        for vpn in range(64):
            pt.map(Translation(vpn, 5000 + vpn, PageSize.SIZE_4KB))
        table.insert(RangeTranslation(0, 64, 5000))
        return build_hierarchy(pt, with_ranges=True, with_l1_range=l1, range_table=table)

    def test_range_walk_fills_l2_range(self):
        h = self.build_with_ranges()
        h.access(5)  # walk + background range walk
        assert h.range_walk_refs >= 1
        assert h.l2_range.occupancy() == 1

    def test_l2_range_hit_avoids_walk(self):
        h = self.build_with_ranges()
        h.access(5)
        # Invalidate L1 so the next access reaches L2.
        h.l1_slots[0].tlb.flush()
        h.l2_page.flush()
        walks_before = h.walker.stats.walks
        h.access(6)
        assert h.walker.stats.walks == walks_before  # L2-range hit
        assert h.l2_misses == 1  # only the first access

    def test_l2_range_hit_synthesizes_l1_4kb_entry(self):
        h = self.build_with_ranges()
        h.access(5)
        h.l1_slots[0].tlb.flush()
        h.l2_page.flush()
        h.access(6)
        entry = h.l1_slots[0].tlb.peek(6)
        assert entry is not None
        assert entry.translate(6) == 5006

    def test_l1_range_filled_from_l2_range_hit(self):
        h = self.build_with_ranges(l1=True)
        h.access(5)  # walk; fills L2-range
        assert h.l1_range.occupancy() == 0  # not yet promoted
        h.l1_slots[0].tlb.flush()
        h.access(6)  # L1 miss -> L2-range hit -> promote to L1-range
        assert h.l1_range.occupancy() == 1
        h.access(7)  # L1-range hit now
        assert h.hit_attribution()["L1-range"] == 1

    def test_range_hit_takes_attribution_precedence(self):
        h = self.build_with_ranges(l1=True)
        h.access(5)
        h.l1_slots[0].tlb.flush()
        h.access(6)  # promotes range to L1
        h.access(6)  # hits both L1-4KB (synth) and L1-range
        assert h.hit_attribution()["L1-range"] == 1

    def test_l1_range_requires_l2_range(self):
        with pytest.raises(ConfigurationError):
            TLBHierarchy(
                [L1Slot(SetAssociativeTLB("L1-4KB", 64, 4), PageSize.SIZE_4KB)],
                SetAssociativeTLB("L2", 512, 4),
                PageWalker(PageTable()),
                l1_range=RangeTLB("L1-range", 4),
            )

    def test_range_tlbs_require_range_table(self):
        with pytest.raises(ConfigurationError):
            TLBHierarchy(
                [L1Slot(SetAssociativeTLB("L1-4KB", 64, 4), PageSize.SIZE_4KB)],
                SetAssociativeTLB("L2", 512, 4),
                PageWalker(PageTable()),
                l2_range=RangeTLB("L2-range", 32),
            )


class TestMixedHierarchy:
    def build_mixed(self):
        pt = build_page_table()
        huge_chunks = frozenset({PAGES_PER_2MB >> 9})
        return MixedTLBHierarchy(
            SetAssociativeTLB("L1-mixed", 64, 4),
            SetAssociativeTLB("L2-mixed", 512, 4),
            PageWalker(pt),
            huge_chunks,
        )

    def test_4kb_and_2mb_keys_do_not_alias(self):
        key_4k = MixedTLBHierarchy.oracle_key(512, False)
        key_2m = MixedTLBHierarchy.oracle_key(512, True)
        assert key_4k != key_2m

    def test_mixed_hits_by_size(self):
        h = self.build_mixed()
        h.access(3)
        h.access(3)
        h.access(PAGES_PER_2MB + 1)
        h.access(PAGES_PER_2MB + 2)  # same huge page -> hit
        assert h.attributed_hits_4kb == 1
        assert h.attributed_hits_2mb == 1

    def test_2mb_entries_cached_in_mixed_l2(self):
        h = self.build_mixed()
        h.access(PAGES_PER_2MB)
        h.l1_mixed.flush()
        walks_before = h.walker.stats.walks
        h.access(PAGES_PER_2MB + 9)  # L2-mixed hit
        assert h.walker.stats.walks == walks_before

    def test_structures_listed(self):
        h = self.build_mixed()
        names = {s.name for s in h.all_structures()}
        assert {"L1-mixed", "L2-mixed"} <= names

    def test_reset_measurement(self):
        h = self.build_mixed()
        h.access(3)
        h.access(3)
        h.reset_measurement()
        assert h.attributed_hits_4kb == 0
        assert h.l1_misses == 0
