"""Unit tests for the range TLB (containment hits, LRU, overlap handling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mmu.translation import RangeTranslation
from repro.tlb.range_tlb import RangeTLB


def rng(base, limit, pfn=None):
    return RangeTranslation(base, limit, pfn if pfn is not None else base + 1000)


class TestContainment:
    def test_hit_inside_range(self):
        tlb = RangeTLB("r", 4)
        tlb.fill(rng(100, 200))
        assert tlb.lookup(100) is not None
        assert tlb.lookup(199) is not None

    def test_limit_is_exclusive(self):
        tlb = RangeTLB("r", 4)
        tlb.fill(rng(100, 200))
        assert tlb.lookup(200) is None
        assert tlb.lookup(99) is None

    def test_translation_offset(self):
        tlb = RangeTLB("r", 4)
        tlb.fill(RangeTranslation(100, 200, 5000))
        entry = tlb.lookup(150)
        assert entry.translate(150) == 5050

    def test_miss_counts(self):
        tlb = RangeTLB("r", 4)
        tlb.lookup(1)
        tlb.fill(rng(0, 10))
        tlb.lookup(5)
        tlb.sync_stats()
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1


class TestReplacement:
    def test_lru_eviction(self):
        tlb = RangeTLB("r", 2)
        a, b, c = rng(0, 10), rng(20, 30), rng(40, 50)
        tlb.fill(a)
        tlb.fill(b)
        tlb.lookup(5)  # refresh a
        tlb.fill(c)  # evicts b
        assert tlb.peek(25) is None
        assert tlb.peek(5) is not None

    def test_hit_moves_to_mru(self):
        tlb = RangeTLB("r", 3)
        parts = [rng(i * 100, i * 100 + 10) for i in range(3)]
        for part in parts:
            tlb.fill(part)
        tlb.lookup(5)  # range 0 to MRU
        assert tlb.resident_ranges()[0] == parts[0]

    def test_fill_invalidates_overlapping(self):
        tlb = RangeTLB("r", 4)
        tlb.fill(rng(100, 200))
        tlb.fill(rng(150, 250, 9000))  # overlaps -> old dropped
        assert tlb.occupancy() == 1
        assert tlb.lookup(120) is None or tlb.lookup(120).base_pfn == 9000

    def test_invalidate_overlap(self):
        tlb = RangeTLB("r", 4)
        tlb.fill(rng(0, 10))
        tlb.fill(rng(20, 30))
        dropped = tlb.invalidate_overlap(rng(5, 25))
        assert dropped == 2
        assert tlb.occupancy() == 0

    def test_resize(self):
        tlb = RangeTLB("r", 4)
        for i in range(4):
            tlb.fill(rng(i * 100, i * 100 + 10))
        tlb.set_active_entries(2)
        assert tlb.occupancy() == 2
        with pytest.raises(ValueError):
            tlb.set_active_entries(5)

    def test_rank_counters(self):
        tlb = RangeTLB("r", 4)
        counters = [0] * 3
        tlb.hit_rank_counters = counters
        for i in range(4):
            tlb.fill(rng(i * 100, i * 100 + 10))
        tlb.lookup(305)  # MRU, rank 0
        tlb.lookup(5)  # rank 3 -> group 2
        assert counters == [1, 0, 1]


@settings(max_examples=50, deadline=None)
@given(
    queries=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100),
    bases=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=8, unique=True),
)
def test_containment_matches_linear_scan(queries, bases):
    """Lookups agree with a brute-force containment check over residents."""
    tlb = RangeTLB("r", 8)
    for base in bases:
        tlb.fill(rng(base * 100, base * 100 + 60))
    for query in queries:
        resident = tlb.resident_ranges()
        expected = next((r for r in resident if r.covers(query)), None)
        assert tlb.peek(query) == expected
